//! # parblast
//!
//! Facade crate for the `parblast` workspace: a reproduction of
//! *"A Case Study of Parallel I/O for Biological Sequence Search on Linux
//! Clusters"* (Zhu, Jiang, Qin, Swanson — CLUSTER 2003).
//!
//! Everything public lives in [`parblast_core`], re-exported here so that
//! examples and downstream users only need one dependency:
//!
//! ```
//! use parblast::prelude::*;
//! ```
//!
//! See the workspace `README.md` for the architecture overview, `DESIGN.md`
//! for the system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every figure.

pub use parblast_core::*;
