//! `pb-formatdb` — format a FASTA file into searchable database volumes,
//! the workspace's analogue of NCBI's `formatdb` plus mpiBLAST's
//! `mpiformatdb` segmentation.
//!
//! ```sh
//! pb-formatdb --in db.fa --out ./db --name nt --fragments 8 [--protein]
//! pb-formatdb --synthetic 64000000 --out ./db --name nt --fragments 8
//! ```

use parblast::prelude::*;
use parblast::seqdb::encode_aa_seq;

fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(key: &str) -> bool {
    std::env::args().any(|a| a == key)
}

fn main() -> std::io::Result<()> {
    if flag("--help") || std::env::args().len() == 1 {
        eprintln!(
            "usage: pb-formatdb (--in <fasta> | --synthetic <residues>) \
             --out <dir> [--name nt] [--fragments N] [--protein] [--seed S]"
        );
        return Ok(());
    }
    let out = std::path::PathBuf::from(arg("--out").unwrap_or_else(|| ".".into()));
    let name = arg("--name").unwrap_or_else(|| "db".into());
    let fragments: u32 = arg("--fragments").and_then(|v| v.parse().ok()).unwrap_or(1);
    let protein = flag("--protein");
    let seq_type = if protein {
        SeqType::Protein
    } else {
        SeqType::Nucleotide
    };

    let seqs: Vec<(String, Vec<u8>)> = if let Some(n) = arg("--synthetic") {
        assert!(!protein, "--synthetic generates nucleotide databases");
        let total: u64 = n.parse().expect("--synthetic takes a residue count");
        let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(2003);
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: total,
            seed,
            ..Default::default()
        });
        let mut v = Vec::new();
        while let Some(s) = g.next() {
            v.push(s);
        }
        v
    } else {
        let input = arg("--in").expect("--in <fasta> or --synthetic <residues>");
        let records = FastaReader::open(&input)?.read_all()?;
        records
            .into_iter()
            .map(|r| {
                let codes = if protein {
                    encode_aa_seq(&r.seq)
                } else {
                    parblast::seqdb::encode_nt_seq(&r.seq)
                };
                (r.defline(), codes)
            })
            .collect()
    };

    let nseq = seqs.len();
    let residues: u64 = seqs.iter().map(|(_, c)| c.len() as u64).sum();
    let infos = segment_into_fragments(&out, &name, seq_type, fragments, seqs)?;
    println!(
        "formatted {nseq} sequences / {residues} residues into {} fragment(s):",
        infos.len()
    );
    for info in &infos {
        println!(
            "  {}  {} seqs, {} residues, {} bytes",
            info.path.display(),
            info.nseq,
            info.residues,
            info.bytes
        );
    }
    Ok(())
}
