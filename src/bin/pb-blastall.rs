//! `pb-blastall` — search formatted database fragments, the workspace's
//! analogue of NCBI's `blastall` single interface (§2.1 of the paper) with
//! mpiBLAST-style parallel fragment dispatch built in.
//!
//! ```sh
//! pb-blastall -p blastn -d ./db/nt -i query.fa [--workers 8] [--evalue 10]
//! ```
//!
//! `-d` takes the fragment prefix (`<dir>/<name>`); all `<name>.NNN.pdb`
//! volumes beside it are searched. Output is BLAST tabular (`-m 8`).

use parblast::blast::DbStats;
use parblast::prelude::*;
use parblast::seqdb::encode_aa_seq;

fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> std::io::Result<()> {
    let Some(db_prefix) = arg("-d") else {
        eprintln!(
            "usage: pb-blastall -p blastn|blastp|blastx|tblastn|tblastx \
             -d <dir>/<name> -i <query.fa> [--workers N] [--evalue E]"
        );
        return Ok(());
    };
    let program = match arg("-p").as_deref() {
        Some("blastn") | None => Program::Blastn,
        Some("blastp") => Program::Blastp,
        Some("blastx") => Program::Blastx,
        Some("tblastn") => Program::Tblastn,
        Some("tblastx") => Program::Tblastx,
        Some(p) => panic!("unknown program {p}"),
    };
    let query_path = arg("-i").expect("-i <query.fa>");
    let workers: usize = arg("--workers").and_then(|v| v.parse().ok()).unwrap_or(8);

    // Discover fragments: <prefix>.NNN.pdb.
    let prefix = std::path::PathBuf::from(&db_prefix);
    let dir = prefix.parent().unwrap_or(std::path::Path::new("."));
    let name = prefix.file_name().unwrap().to_string_lossy().into_owned();
    let mut fragment_paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|f| f.to_str())
                .map(|f| f.starts_with(&format!("{name}.")) && f.ends_with(".pdb"))
                .unwrap_or(false)
        })
        .collect();
    fragment_paths.sort();
    assert!(
        !fragment_paths.is_empty(),
        "no fragments matching {db_prefix}.NNN.pdb"
    );

    // Whole-database statistics from the volume headers (mpiBLAST
    // semantics: E-values against the full database).
    let mut residues = 0u64;
    let mut nseq = 0u64;
    for p in &fragment_paths {
        let mut f = std::fs::File::open(p)?;
        let h = Volume::read_header(&mut f)?;
        residues += h.residues;
        nseq += h.nseq;
    }
    let db = DbStats { residues, nseq };

    // Queries: translated/protein programs read protein or nucleotide
    // letters as appropriate.
    let records = FastaReader::open(&query_path)?.read_all()?;
    assert!(!records.is_empty(), "no query records in {query_path}");
    let protein_query = matches!(program, Program::Blastp | Program::Tblastn);
    let queries: Vec<(String, Vec<u8>)> = records
        .into_iter()
        .map(|r| {
            let codes = if protein_query {
                encode_aa_seq(&r.seq)
            } else {
                parblast::seqdb::encode_nt_seq(&r.seq)
            };
            (r.id, codes)
        })
        .collect();

    // Stage fragments into a local scheme rooted next to the database.
    let scheme = Scheme::local_at(&dir.join(".pb_work"), workers)?;
    let mut fragments = Vec::new();
    for p in &fragment_paths {
        let bytes = std::fs::read(p)?;
        let frag_name = p.file_name().unwrap().to_string_lossy().into_owned();
        scheme.load_fragment(&frag_name, &bytes)?;
        fragments.push(frag_name);
    }

    let mut params = match program {
        Program::Blastn => SearchParams::blastn(),
        _ => SearchParams::blastp(),
    };
    if let Some(e) = arg("--evalue").and_then(|v| v.parse().ok()) {
        params.evalue = e;
    }

    let job = ParallelBlast {
        program,
        params,
        db,
        fragments,
        workers,
        scheme,
        tracer: Tracer::disabled(),
        parallelization: Parallelization::DatabaseSegmentation,
        prefetch: true,
        list_io: false,
    };
    let batch = job.run_batch(&queries.iter().map(|(_, c)| c.clone()).collect::<Vec<_>>())?;
    for ((qid, _), hits) in queries.iter().zip(&batch.per_query) {
        print!("{}", tabular(qid, hits));
    }
    eprintln!(
        "# {} quer{} vs {} residues in {} sequences, {:.2}s wall",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        residues,
        nseq,
        batch.wall_s
    );
    std::fs::remove_dir_all(dir.join(".pb_work")).ok();
    Ok(())
}
