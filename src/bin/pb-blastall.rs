//! `pb-blastall` — search formatted database fragments, the workspace's
//! analogue of NCBI's `blastall` single interface (§2.1 of the paper) with
//! mpiBLAST-style parallel fragment dispatch built in.
//!
//! ```sh
//! # One-shot batch job (the original mode):
//! pb-blastall -p blastn -d ./db/nt -i query.fa [--workers 8] [--evalue 10]
//!
//! # Long-running daemon serving the same store over TCP:
//! pb-blastall --daemon 0.0.0.0:7878 -p blastn -d ./db/nt \
//!     [--shards 2] [--max-batch 4] [--queue-cap 256] [--quota-qps 50]
//!
//! # Clients against a daemon (many may run concurrently):
//! pb-blastall --connect host:7878 -i query.fa [--tenant 3] [--deadline-us N]
//! pb-blastall --connect host:7878 --stats
//! pb-blastall --connect host:7878 --drain     # graceful shutdown
//! ```
//!
//! `-d` takes the fragment prefix (`<dir>/<name>`); all `<name>.NNN.pdb`
//! volumes beside it are searched. Output is BLAST tabular (`-m 8`).
//! Daemon results are byte-identical to the one-shot mode's (pinned in
//! `tests/determinism.rs`); `--drain` finishes every accepted query
//! before the daemon exits.

use std::sync::Arc;

use parblast::blast::DbStats;
use parblast::net::{BlastRunner, ClientConfig, NetClient, NetServer, QuotaConfig, ServerConfig};
use parblast::prelude::*;
use parblast::seqdb::encode_aa_seq;

fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(key: &str) -> bool {
    std::env::args().any(|a| a == key)
}

fn other_err<E: std::fmt::Display>(e: E) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// Everything the batch mode and the daemon share: fragment discovery,
/// whole-database statistics, and staging into a `pio`-backed scheme.
struct StagedJob {
    job: ParallelBlast,
    residues: u64,
    nseq: u64,
    fragment_bytes: u64,
    work_dir: std::path::PathBuf,
}

fn stage_job(db_prefix: &str, program: Program, workers: usize) -> std::io::Result<StagedJob> {
    // Discover fragments: <prefix>.NNN.pdb.
    let prefix = std::path::PathBuf::from(db_prefix);
    let dir = prefix.parent().unwrap_or(std::path::Path::new("."));
    let name = prefix.file_name().unwrap().to_string_lossy().into_owned();
    let mut fragment_paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|f| f.to_str())
                .map(|f| f.starts_with(&format!("{name}.")) && f.ends_with(".pdb"))
                .unwrap_or(false)
        })
        .collect();
    fragment_paths.sort();
    assert!(
        !fragment_paths.is_empty(),
        "no fragments matching {db_prefix}.NNN.pdb"
    );

    // Whole-database statistics from the volume headers (mpiBLAST
    // semantics: E-values against the full database).
    let mut residues = 0u64;
    let mut nseq = 0u64;
    for p in &fragment_paths {
        let mut f = std::fs::File::open(p)?;
        let h = Volume::read_header(&mut f)?;
        residues += h.residues;
        nseq += h.nseq;
    }
    let db = DbStats { residues, nseq };

    // Stage fragments into a local scheme rooted next to the database.
    let work_dir = dir.join(".pb_work");
    let scheme = Scheme::local_at(&work_dir, workers)?;
    let mut fragments = Vec::new();
    let mut fragment_bytes = 0u64;
    for p in &fragment_paths {
        let bytes = std::fs::read(p)?;
        fragment_bytes += bytes.len() as u64;
        let frag_name = p.file_name().unwrap().to_string_lossy().into_owned();
        scheme.load_fragment(&frag_name, &bytes)?;
        fragments.push(frag_name);
    }

    let mut params = match program {
        Program::Blastn => SearchParams::blastn(),
        _ => SearchParams::blastp(),
    };
    if let Some(e) = arg("--evalue").and_then(|v| v.parse().ok()) {
        params.evalue = e;
    }

    Ok(StagedJob {
        job: ParallelBlast {
            program,
            params,
            db,
            fragments,
            workers,
            scheme,
            tracer: Tracer::disabled(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: true,
            list_io: false,
        },
        residues,
        nseq,
        fragment_bytes,
        work_dir,
    })
}

fn read_queries(query_path: &str, program: Program) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let records = FastaReader::open(query_path)?.read_all()?;
    assert!(!records.is_empty(), "no query records in {query_path}");
    let protein_query = matches!(program, Program::Blastp | Program::Tblastn);
    Ok(records
        .into_iter()
        .map(|r| {
            let codes = if protein_query {
                encode_aa_seq(&r.seq)
            } else {
                parblast::seqdb::encode_nt_seq(&r.seq)
            };
            (r.id, codes)
        })
        .collect())
}

fn parse_program() -> Program {
    match arg("-p").as_deref() {
        Some("blastn") | None => Program::Blastn,
        Some("blastp") => Program::Blastp,
        Some("blastx") => Program::Blastx,
        Some("tblastn") => Program::Tblastn,
        Some("tblastx") => Program::Tblastx,
        Some(p) => panic!("unknown program {p}"),
    }
}

/// `--daemon <addr>`: serve the staged store over TCP until drained.
fn daemon_mode(addr: &str) -> std::io::Result<()> {
    let db_prefix = arg("-d").expect("--daemon requires -d <dir>/<name>");
    let workers: usize = arg("--workers").and_then(|v| v.parse().ok()).unwrap_or(8);
    let staged = stage_job(&db_prefix, parse_program(), workers)?;

    let config = ServerConfig {
        shards: arg("--shards").and_then(|v| v.parse().ok()).unwrap_or(2),
        queue_capacity: arg("--queue-cap")
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
        max_batch: arg("--max-batch").and_then(|v| v.parse().ok()).unwrap_or(4),
        quota: arg("--quota-qps")
            .and_then(|v| v.parse().ok())
            .map(QuotaConfig::per_second),
        read_deadline: arg("--read-deadline-ms")
            .and_then(|v| v.parse().ok())
            .map(std::time::Duration::from_millis)
            .or(ServerConfig::default().read_deadline),
        max_inflight_per_conn: arg("--max-inflight")
            .and_then(|v| v.parse().ok())
            .unwrap_or(ServerConfig::default().max_inflight_per_conn),
    };
    let runner = Arc::new(BlastRunner::new(staged.job, staged.fragment_bytes));
    let handle = NetServer::start(addr, config, runner)?;
    eprintln!(
        "# pb-blastall daemon on {} — {} residues in {} sequences, {} shards, \
         max batch {}, queue cap {}, quota {}",
        handle.addr(),
        staged.residues,
        staged.nseq,
        config.shards,
        config.max_batch,
        config.queue_capacity,
        config
            .quota
            .map(|q| format!("{} qps (burst {})", q.qps, q.burst))
            .unwrap_or_else(|| "off".into()),
    );

    // Blocks until a Drain frame arrives (pb-blastall --connect --drain),
    // then finishes every accepted query before returning.
    let stats = handle.join();
    eprintln!(
        "# drained: {} accepted, {} served, {} batches, sheds {}/{}/{} \
         (queue-full/quota/draining), per-shard {:?}",
        stats.accepted,
        stats.served,
        stats.batches,
        stats.shed_queue_full,
        stats.shed_quota,
        stats.shed_draining,
        stats.per_shard_served,
    );
    std::fs::remove_dir_all(&staged.work_dir).ok();
    Ok(())
}

/// `--connect <addr>`: submit queries (or admin ops) to a daemon.
fn connect_mode(addr: &str) -> std::io::Result<()> {
    let config = ClientConfig {
        tenant: arg("--tenant").and_then(|v| v.parse().ok()).unwrap_or(0),
        deadline_us: arg("--deadline-us")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        ..Default::default()
    };
    let mut client = NetClient::connect_with(addr, config)?;

    if flag("--drain") {
        let queued = client.drain().map_err(other_err)?;
        eprintln!("# drain acknowledged; {queued} queries still in flight");
        return Ok(());
    }
    if flag("--stats") {
        let s = client.stats().map_err(other_err)?;
        println!(
            "submits\t{}\nevicted\t{}\naccepted\t{}\nserved\t{}\nshed_queue_full\t{}\nshed_quota\t{}\n\
             shed_draining\t{}\nexpired\t{}\ncancelled\t{}\nbatches\t{}\n\
             bytes_read\t{}\nper_shard_served\t{:?}",
            s.submits,
            s.evicted,
            s.accepted,
            s.served,
            s.shed_queue_full,
            s.shed_quota,
            s.shed_draining,
            s.expired,
            s.cancelled,
            s.batches,
            s.bytes_read,
            s.per_shard_served,
        );
        return Ok(());
    }

    let query_path = arg("-i").expect("--connect requires -i <query.fa> (or --stats/--drain)");
    let queries = read_queries(&query_path, parse_program())?;
    let t0 = std::time::Instant::now();
    for (qid, codes) in &queries {
        // The daemon renders with the generic "query" id (so its bytes
        // match in-process serving exactly); re-label with the FASTA id.
        let payload = client.query(codes).map_err(other_err)?;
        let text = String::from_utf8_lossy(&payload);
        for line in text.lines() {
            match line.strip_prefix("query\t") {
                Some(rest) => println!("{qid}\t{rest}"),
                None => println!("{line}"),
            }
        }
    }
    eprintln!(
        "# {} quer{} served by {} in {:.2}s",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        addr,
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

fn main() -> std::io::Result<()> {
    if let Some(addr) = arg("--connect") {
        return connect_mode(&addr);
    }
    if let Some(addr) = arg("--daemon") {
        return daemon_mode(&addr);
    }

    let Some(db_prefix) = arg("-d") else {
        eprintln!(
            "usage: pb-blastall -p blastn|blastp|blastx|tblastn|tblastx \
             -d <dir>/<name> -i <query.fa> [--workers N] [--evalue E]\n\
             \x20      pb-blastall --daemon <addr> -d <dir>/<name> [-p PROG] \
             [--shards N] [--max-batch B] [--queue-cap C] [--quota-qps Q]\n\
             \x20      pb-blastall --connect <addr> -i <query.fa> [--tenant T] \
             [--deadline-us D] | --stats | --drain"
        );
        return Ok(());
    };
    let program = parse_program();
    let query_path = arg("-i").expect("-i <query.fa>");
    let workers: usize = arg("--workers").and_then(|v| v.parse().ok()).unwrap_or(8);
    let staged = stage_job(&db_prefix, program, workers)?;
    let queries = read_queries(&query_path, program)?;

    let batch = staged
        .job
        .run_batch(&queries.iter().map(|(_, c)| c.clone()).collect::<Vec<_>>())?;
    for ((qid, _), hits) in queries.iter().zip(&batch.per_query) {
        print!("{}", tabular(qid, hits));
    }
    eprintln!(
        "# {} quer{} vs {} residues in {} sequences, {:.2}s wall",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        staged.residues,
        staged.nseq,
        batch.wall_s
    );
    std::fs::remove_dir_all(&staged.work_dir).ok();
    Ok(())
}
