//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the rand 0.10 API it actually uses:
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded via SplitMix64), the
//! [`Rng`] / [`RngExt`] / [`SeedableRng`] traits, uniform `random()` /
//! `random_range()` sampling, and `fill_bytes`. Determinism is the only
//! hard requirement — every simulation stream in the workspace is seeded —
//! and xoshiro256++ passes the statistical checks the test-suite applies
//! (Box–Muller normals, exponential/lognormal sample means).

#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    pub use crate::xoshiro::StdRng;
}

mod xoshiro {
    /// The workspace's standard RNG: xoshiro256++.
    ///
    /// Not the cryptographic ChaCha generator the real `rand` uses — this
    /// workspace only needs fast deterministic streams for simulation and
    /// synthetic-data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }

        #[inline]
        pub(crate) fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Core generator interface: raw words and byte filling.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }
}

impl Rng for rngs::StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Types samplable uniformly over their full domain (`random()`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u8 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl StandardSample for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}
impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer (and float) types usable with `random_range(lo..hi)`.
pub trait UniformSample: Sized {
    /// Draw uniformly from `[lo, hi)`. Panics when the range is empty.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),+) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi - lo) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // for astronomically large spans is irrelevant here.
                let x = rng.next_u64();
                lo + ((x as u128 * span as u128) >> 64) as $t
            }
        }
    )+};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let x = rng.next_u64();
                let off = ((x as u128 * span as u128) >> 64) as i64;
                ((lo as i64) + off) as $t
            }
        }
    )+};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "random_range: empty range");
        lo + (hi - lo) * <f64 as StandardSample>::sample(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform value over the type's standard domain (`[0,1)` for `f64`,
    /// full range for integers).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    #[inline]
    fn random_range<T: UniformSample>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_mean_half() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = r.random_range(0..4u8);
            seen[v as usize] = true;
            let u = r.random_range(3..10usize);
            assert!((3..10).contains(&u));
            let i = r.random_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
