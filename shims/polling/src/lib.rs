//! Workspace-local stand-in for `polling`.
//!
//! A minimal readiness poller (the subset this workspace uses): register
//! file descriptors under integer keys, wait for read/write readiness with
//! a timeout, and wake a blocked `wait` from another thread with
//! [`Poller::notify`]. Unlike the real `polling` crate this shim is
//! **level-triggered** — a source that stays readable is reported again on
//! the next `wait` — and there is no oneshot re-arming protocol. On Unix
//! it is a thin wrapper over `poll(2)` (via a direct FFI declaration, so
//! no external crate is needed); the notifier is a `UnixStream` self-pipe.

#![warn(missing_docs)]
#![cfg(unix)]

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

/// Readiness interest / readiness state for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source.
    pub key: usize,
    /// Interested in (or ready for) reading.
    pub readable: bool,
    /// Interested in (or ready for) writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }
}

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;
// Peer half-closed its write side (Linux). Requested alongside POLLIN so
// a client that shut down mid-frame surfaces as readable *now* rather
// than on the next data byte — the net daemon's reaper depends on
// seeing the dead connection promptly to release its queue slots.
#[cfg(target_os = "linux")]
const POLLRDHUP: i16 = 0x2000;
#[cfg(not(target_os = "linux"))]
const POLLRDHUP: i16 = 0;

extern "C" {
    // poll(2): libc is already linked by std, so a direct declaration
    // avoids pulling in the `libc` crate.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// A registry of `(fd, interest)` pairs that can be waited on.
#[derive(Debug)]
pub struct Poller {
    sources: Mutex<BTreeMap<usize, (RawFd, Event)>>,
    notify_tx: Mutex<UnixStream>,
    notify_rx: Mutex<UnixStream>,
}

impl Poller {
    /// New empty poller with its notification channel armed.
    pub fn new() -> io::Result<Poller> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Poller {
            sources: Mutex::new(BTreeMap::new()),
            notify_tx: Mutex::new(tx),
            notify_rx: Mutex::new(rx),
        })
    }

    /// Register `source` under `interest.key`. The caller keeps ownership
    /// of the source and must [`Poller::delete`] it before closing it.
    /// Re-adding an existing key replaces its registration.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        self.sources
            .lock()
            .unwrap()
            .insert(interest.key, (fd, interest));
        Ok(())
    }

    /// Change the interest set of an already-registered key.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.add(source, interest)
    }

    /// Remove a registration; unknown keys are ignored.
    pub fn delete_key(&self, key: usize) {
        self.sources.lock().unwrap().remove(&key);
    }

    /// Remove the registration of `source` (all keys pointing at its fd).
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        self.sources.lock().unwrap().retain(|_, (f, _)| *f != fd);
        Ok(())
    }

    /// Wake a concurrent (or the next) [`Poller::wait`] immediately.
    pub fn notify(&self) -> io::Result<()> {
        let mut tx = self.notify_tx.lock().unwrap();
        match tx.write(&[1]) {
            Ok(_) => Ok(()),
            // A full pipe already guarantees a pending wakeup.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Block until a registered source is ready, the timeout elapses, or
    /// [`Poller::notify`] is called; ready sources are appended to
    /// `events`. Returns the number of ready sources (0 on timeout or
    /// notification).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let (mut fds, keys) = {
            let sources = self.sources.lock().unwrap();
            let mut fds = Vec::with_capacity(sources.len() + 1);
            let mut keys = Vec::with_capacity(sources.len());
            for (key, (fd, interest)) in sources.iter() {
                let mut ev = 0i16;
                if interest.readable {
                    ev |= POLLIN | POLLRDHUP;
                }
                if interest.writable {
                    ev |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: *fd,
                    events: ev,
                    revents: 0,
                });
                keys.push(*key);
            }
            // The notify self-pipe rides along as the last entry.
            fds.push(PollFd {
                fd: self.notify_rx.lock().unwrap().as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            (fds, keys)
        };
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let rc = loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if rc >= 0 {
                break rc;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        if rc == 0 {
            return Ok(0);
        }
        // Drain the notify pipe so the next wait blocks again.
        let notify_ready = fds.last().map(|p| p.revents != 0).unwrap_or(false);
        if notify_ready {
            let mut buf = [0u8; 64];
            let mut rx = self.notify_rx.lock().unwrap();
            while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
        }
        let mut ready = 0usize;
        for (i, pfd) in fds[..keys.len()].iter().enumerate() {
            if pfd.revents == 0 {
                continue;
            }
            let err = pfd.revents & (POLLERR | POLLHUP | POLLNVAL | POLLRDHUP) != 0;
            events.push(Event {
                key: keys[i],
                // Errors/hangups surface as readability so the owner's
                // next read observes the failure and drops the source.
                readable: pfd.revents & POLLIN != 0 || err,
                writable: pfd.revents & POLLOUT != 0,
            });
            ready += 1;
        }
        Ok(ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn notify_wakes_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = poller.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p2.notify().unwrap();
        });
        let mut events = Vec::new();
        let t0 = std::time::Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0, "notification is not a source event");
        assert!(t0.elapsed() < Duration::from_secs(5), "wait never woke");
        t.join().unwrap();
    }

    #[test]
    fn readable_socket_reported_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        client.write_all(b"x").unwrap();
        for _ in 0..2 {
            // Level-triggered: unread data keeps reporting.
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
            assert_eq!(events[0].key, 7);
            assert!(events[0].readable);
        }
        poller.delete(&server).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn peer_half_close_reported_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(3)).unwrap();
        // Half-close from the peer (no data in flight) must surface as
        // readability so the owner's next read observes the EOF.
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 3);
        assert!(events[0].readable);
    }

    #[test]
    fn timeout_expires_without_sources() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }
}
