//! Workspace-local stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with throughput/sample-size settings, and
//! `iter`/`iter_batched` — over a simple wall-clock harness: a short warm-up
//! followed by timed samples, reporting median time per iteration (and
//! derived throughput). No statistical regression machinery, no
//! `target/criterion` reports; results go to stdout.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output `iter_batched` keeps alive per batch (accepted for
/// API compatibility; this harness always uses one setup per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine output.
    SmallInput,
    /// Large routine output.
    LargeInput,
    /// Routine output of unknown size.
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a case by its parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Identify a case by a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration of the last run.
    last_ns: f64,
}

impl Bencher {
    fn run_samples<F: FnMut() -> Duration>(&mut self, mut one_sample: F) {
        // Warm-up: one untimed sample.
        let _ = one_sample();
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| one_sample().as_secs_f64() * 1e9)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_ns = times[times.len() / 2];
    }

    /// Time `routine`, called once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run_samples(|| {
            let t0 = Instant::now();
            let out = routine();
            let dt = t0.elapsed();
            drop(out);
            dt
        });
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run_samples(|| {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed();
            drop(out);
            dt
        });
    }
}

fn report(group: Option<&str>, id: &str, ns: f64, throughput: Option<Throughput>) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(b) => {
                format!(
                    "  {:.1} MiB/s",
                    b as f64 / (ns * 1e-9) / (1u64 << 20) as f64
                )
            }
            Throughput::Elements(e) => format!("  {:.0} elem/s", e as f64 / (ns * 1e-9)),
        })
        .unwrap_or_default();
    if ns >= 1e6 {
        println!("bench {name}: {:.3} ms/iter{rate}", ns / 1e6);
    } else {
        println!("bench {name}: {:.0} ns/iter{rate}", ns);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_ns: 0.0,
        };
        f(&mut b);
        report(None, id, b.last_ns, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            samples: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(2));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.samples.unwrap_or(self.criterion.samples),
            last_ns: 0.0,
        };
        f(&mut b);
        report(Some(&self.name), id, b.last_ns, self.throughput);
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.id.clone();
        self.run(&name, |b| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion { samples: 3 };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..1000 {
                    x = x.wrapping_add(i);
                }
                x
            })
        });
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion { samples: 3 };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1 << 20));
        g.sample_size(4);
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
