//! Workspace-local stand-in for `crossbeam`.
//!
//! Provides the subset the workspace uses: [`channel::unbounded`] MPMC
//! channels with crossbeam's semantics — cloneable senders and receivers,
//! `send` failing once every receiver is gone, `recv` failing once every
//! sender is gone and the queue has drained, and receiver iteration.

#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking while the channel is empty;
        /// fails once it is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking iterator-style drain helper.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over received values, ending at disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Borrowing blocking iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = vec![];
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            }));
        }
        drop(rx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel::unbounded::<&'static str>();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send("hello").unwrap();
        assert_eq!(h.join().unwrap(), "hello");
    }
}
