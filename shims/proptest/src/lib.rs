//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), range and `any::<T>()` strategies,
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! per-test seed (the test's name), so failures reproduce exactly;
//! shrinking is not implemented — a failing case reports its inputs
//! verbatim instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic case generator handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed deterministically from a test identifier.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Raw word (used by strategy implementations).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer-like value in `[lo, hi)`.
    pub fn in_range<T: rand::UniformSample>(&mut self, lo: T, hi: T) -> T {
        T::sample_range(&mut self.inner, lo, hi)
    }

    /// Standard-domain value (full integer range, `[0,1)` for floats).
    pub fn standard<T: rand::StandardSample>(&mut self) -> T {
        T::sample(&mut self.inner)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f` (proptest's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies of a common value type;
    /// built by the [`prop_oneof!`](crate::prop_oneof) macro.
    pub struct OneOf<T> {
        /// The alternatives, drawn with equal probability.
        pub choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.in_range(0usize, self.choices.len());
            self.choices[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.start, self.end)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Half-open sample over an inclusive bound: widen by one
                    // where possible, else return the single endpoint.
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo == hi { lo } else { rng.in_range(lo, hi) }
                }
            }
        )+};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.in_range(self.start, self.end)
        }
    }

    /// Strategy that always yields a clone of one fixed value
    /// (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$i:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Full-domain strategy returned by [`any`](crate::arbitrary::any).
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    macro_rules! impl_any {
        ($($t:ty),+) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.standard()
                }
            }
        )+};
    }
    impl_any!(u8, u32, u64, usize, bool, f64);
}

/// `any::<T>()` — full-domain generation.
pub mod arbitrary {
    use super::strategy::Any;

    /// Strategy producing any value of `T`.
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Generate vectors of `elem`-generated values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.in_range(self.len.start, self.len.end)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `Option<T>` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<S::Value>` returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `Some(inner)` or `None` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.in_range(0u32, 2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            choices: ::std::vec![
                $( ::std::boxed::Box::new($strat) as _ ),+
            ],
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases in {} ({} attempts for {} accepted)",
                        stringify!($name), attempts, accepted
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    let __case_desc = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __result {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case failed: {}\ninputs:\n{}",
                            msg, __case_desc
                        ),
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Reject the current case (draw a fresh one) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in crate::collection::vec(any::<u8>(), 0..50)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() < 50);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_oneof_compose(
            v in prop_oneof![
                (0u8..3).prop_map(|x| x as u32),
                (10u8..13).prop_map(|x| x as u32),
            ],
            o in crate::option::of(5u64..9),
        ) {
            prop_assert!((0u32..3).contains(&v) || (10u32..13).contains(&v));
            if let Some(x) = o {
                prop_assert!((5..9).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments on cases are accepted.
        #[test]
        fn config_applies(f in 0.25f64..0.75) {
            prop_assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        fn always_fails_inner(x in 0u8..4) {
            prop_assert!(x > 200, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_case_reports_inputs() {
        always_fails_inner();
    }
}
