//! Workspace-local stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives with `parking_lot`'s
//! non-poisoning API (the subset this workspace uses): `lock()` returns the
//! guard directly, and a panic while holding the lock does not poison it
//! for later users.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_not_poisoned_by_panics() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
