//! PVFS metadata server.
//!
//! Stores file → (layout, size) and answers `open` requests. Each request
//! costs a fixed service time through an FCFS station — the serialization
//! point that makes the metadata server a mild bottleneck at high client
//! counts (one of the reasons PVFS loses to local disks at one node in
//! Figure 5).

use std::collections::HashMap;

use parblast_hwsim::{Ev, NetSend};
use parblast_simcore::{Component, Ctx, FcfsStation, SimTime};

use crate::layout::StripeLayout;
use crate::msg::{MetaOpen, MetaOpenResp, CTRL_BYTES};

/// Registered file metadata.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Stripe layout.
    pub layout: StripeLayout,
    /// Size in bytes.
    pub size: u64,
}

/// Metadata server component.
pub struct MetaServer {
    node: u32,
    net: parblast_simcore::CompId,
    files: HashMap<u64, FileMeta>,
    station: FcfsStation,
    service: SimTime,
    opens: u64,
    name: String,
}

impl MetaServer {
    /// New metadata server on `node`, reachable through `net`.
    pub fn new(
        name: impl Into<String>,
        node: u32,
        net: parblast_simcore::CompId,
        service: SimTime,
    ) -> Self {
        MetaServer {
            node,
            net,
            files: HashMap::new(),
            station: FcfsStation::new(SimTime::ZERO),
            service,
            opens: 0,
            name: name.into(),
        }
    }

    /// Register a file (done at experiment setup, not timed).
    pub fn register(&mut self, file: u64, layout: StripeLayout, size: u64) {
        self.files.insert(file, FileMeta { layout, size });
    }

    /// Look up a file's metadata.
    pub fn lookup(&self, file: u64) -> Option<&FileMeta> {
        self.files.get(&file)
    }

    /// Open requests served.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

impl Component<Ev> for MetaServer {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let Ev::User(env) = ev else {
            return;
        };
        let Ok(req) = env.payload.downcast::<MetaOpen>() else {
            debug_assert!(false, "meta server got unknown message");
            return;
        };
        let req = *req;
        self.opens += 1;
        let meta = self
            .files
            .get(&req.file)
            .unwrap_or_else(|| panic!("open of unregistered file {}", req.file))
            .clone();
        let done = self.station.submit(ctx.now(), self.service);
        let node = self.node;
        let net = self.net;
        ctx.schedule_at(
            done,
            net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: req.reply_node,
                bytes: CTRL_BYTES,
                dst: req.reply,
                payload: Box::new(MetaOpenResp {
                    token: req.token,
                    layout: meta.layout,
                    size: meta.size,
                }),
            }),
        );
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_hwsim::{Cluster, HwParams};
    use parblast_simcore::{CompId, Engine};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Opener {
        net: CompId,
        meta: CompId,
        meta_node: u32,
        got: Rc<RefCell<Vec<(SimTime, MetaOpenResp)>>>,
    }
    impl Component<Ev> for Opener {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Timer(t) => {
                    let me = ctx.self_id();
                    ctx.send(
                        self.net,
                        Ev::Net(NetSend {
                            src_node: 1,
                            dst_node: self.meta_node,
                            bytes: CTRL_BYTES,
                            dst: self.meta,
                            payload: Box::new(MetaOpen {
                                file: 7,
                                reply: me,
                                reply_node: 1,
                                token: t,
                            }),
                        }),
                    );
                }
                Ev::User(env) => {
                    let resp: MetaOpenResp = env.expect();
                    self.got.borrow_mut().push((ctx.now(), resp));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn open_round_trip() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let mut meta = MetaServer::new("meta", 0, c.net, SimTime::from_micros(300));
        meta.register(7, StripeLayout::new(64 << 10, 4), 1 << 30);
        let meta = eng.add(meta);
        let got = Rc::new(RefCell::new(vec![]));
        let opener = eng.add(Opener {
            net: c.net,
            meta,
            meta_node: 0,
            got: got.clone(),
        });
        eng.schedule(SimTime::ZERO, opener, Ev::Timer(42));
        eng.run();
        let v = got.borrow();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1.token, 42);
        assert_eq!(v[0].1.size, 1 << 30);
        assert_eq!(v[0].1.layout.servers, 4);
        // Round trip ≈ 2 × (latency + 2×ser) + service: sub-millisecond.
        assert!(v[0].0 > SimTime::from_micros(300));
        assert!(v[0].0 < SimTime::from_millis(5));
    }

    #[test]
    fn concurrent_opens_serialize() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let mut meta = MetaServer::new("meta", 0, c.net, SimTime::from_millis(1));
        meta.register(7, StripeLayout::new(64 << 10, 4), 1 << 30);
        let meta = eng.add(meta);
        let got = Rc::new(RefCell::new(vec![]));
        let opener = eng.add(Opener {
            net: c.net,
            meta,
            meta_node: 0,
            got: got.clone(),
        });
        for t in 0..10 {
            eng.schedule(SimTime::ZERO, opener, Ev::Timer(t));
        }
        eng.run();
        let v = got.borrow();
        assert_eq!(v.len(), 10);
        // 10 × 1 ms of service must serialize: last completion ≥ 10 ms.
        assert!(v.last().unwrap().0 >= SimTime::from_millis(10));
        assert_eq!(eng.component::<MetaServer>(meta).opens(), 10);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn open_unknown_file_panics() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let meta = eng.add(MetaServer::new("meta", 0, c.net, SimTime::from_micros(300)));
        let got = Rc::new(RefCell::new(vec![]));
        let opener = eng.add(Opener {
            net: c.net,
            meta,
            meta_node: 0,
            got,
        });
        eng.schedule(SimTime::ZERO, opener, Ev::Timer(0));
        eng.run();
    }
}
