//! Per-request timeout and bounded-exponential-backoff retry policy,
//! shared by the PVFS and CEFT-PVFS clients.
//!
//! Original PVFS had no request retry at all: a dead iod simply hung every
//! client (which is exactly what the `faults` experiment shows when the
//! policy is disabled). With a policy enabled, a client re-sends an
//! unacknowledged request after a per-attempt timeout, waiting
//! `base · 2^attempt` (capped) between attempts, and surfaces
//! [`crate::msg::IoError`] once the retry budget is spent.
//!
//! The retry budget only covers *transient* failures — lost or
//! unacknowledged requests ([`crate::msg::IoError::DataServerTimeout`],
//! [`crate::msg::IoError::MetaTimeout`]). A stripe-checksum mismatch
//! ([`crate::msg::IoError::Corrupt`]) is deterministic: re-reading the same
//! platter yields the same bad bytes, so clients surface it immediately and
//! never spend timeout, backoff, or retry budget on it.

use parblast_simcore::SimTime;

/// Retry/timeout knobs for one client component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// A request attempt is considered lost after this long without an
    /// acknowledgement. [`SimTime::MAX`] disables timeouts entirely.
    pub timeout: SimTime,
    /// Backoff before the first retry.
    pub base_backoff: SimTime,
    /// Upper bound on the backoff, however many attempts have failed.
    pub max_backoff: SimTime,
    /// Retries after the initial attempt before the operation fails.
    pub max_retries: u32,
}

impl RetryPolicy {
    /// No timeouts, no retries — the faithful model of original PVFS,
    /// which blocks forever on a dead server. This is the clients'
    /// construction-time default so fault-free experiments are unchanged.
    pub fn disabled() -> Self {
        RetryPolicy {
            timeout: SimTime::MAX,
            base_backoff: SimTime::ZERO,
            max_backoff: SimTime::ZERO,
            max_retries: 0,
        }
    }

    /// Is the policy live (finite timeout)?
    pub fn enabled(&self) -> bool {
        self.timeout != SimTime::MAX
    }
}

impl Default for RetryPolicy {
    /// A policy tuned for the simulated cluster: generous enough that a
    /// merely-congested server (Figure 9 levels of convoying) does not
    /// trip it, small enough that a crashed server is given up on within
    /// about a minute.
    fn default() -> Self {
        RetryPolicy {
            timeout: SimTime::from_secs(10),
            base_backoff: SimTime::from_millis(250),
            max_backoff: SimTime::from_secs(4),
            max_retries: 3,
        }
    }
}

/// Backoff before retry number `attempt` (0-based): `base · 2^attempt`,
/// saturating, capped at `cap`. Pure so its monotonicity and boundedness
/// can be property-tested.
pub fn backoff_delay(attempt: u32, base: SimTime, cap: SimTime) -> SimTime {
    let factor = 1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX);
    let ns = base.as_nanos().saturating_mul(factor);
    SimTime::from_nanos(ns).min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let base = SimTime::from_millis(250);
        let cap = SimTime::from_secs(4);
        assert_eq!(backoff_delay(0, base, cap), SimTime::from_millis(250));
        assert_eq!(backoff_delay(1, base, cap), SimTime::from_millis(500));
        assert_eq!(backoff_delay(2, base, cap), SimTime::from_secs(1));
        assert_eq!(backoff_delay(4, base, cap), cap);
        assert_eq!(backoff_delay(100, base, cap), cap);
    }

    #[test]
    fn huge_attempts_do_not_overflow() {
        let base = SimTime::from_secs(1);
        let cap = SimTime::MAX;
        assert_eq!(backoff_delay(u32::MAX, base, cap), SimTime::MAX);
    }

    #[test]
    fn disabled_policy_is_off() {
        assert!(!RetryPolicy::disabled().enabled());
        assert!(RetryPolicy::default().enabled());
    }

    #[test]
    fn zero_base_backoff_stays_zero() {
        // 0 · 2^n must be 0 for every n, including the saturated shift.
        for attempt in [0u32, 1, 62, 63, 64, u32::MAX] {
            assert_eq!(
                backoff_delay(attempt, SimTime::ZERO, SimTime::from_secs(4)),
                SimTime::ZERO
            );
        }
    }

    #[test]
    fn zero_cap_clamps_everything_to_zero() {
        for attempt in [0u32, 5, u32::MAX] {
            assert_eq!(
                backoff_delay(attempt, SimTime::from_secs(1), SimTime::ZERO),
                SimTime::ZERO
            );
        }
    }

    #[test]
    fn shift_saturation_boundary_is_monotone() {
        // Around the 2^63 boundary the factor saturates; the delay must
        // never *decrease* with the attempt number.
        let base = SimTime::from_nanos(3);
        let cap = SimTime::MAX;
        let mut prev = SimTime::ZERO;
        for attempt in [0u32, 1, 31, 32, 61, 62, 63, 64, 65, 1000, u32::MAX] {
            let d = backoff_delay(attempt, base, cap);
            assert!(d >= prev, "attempt {attempt}: {d:?} < {prev:?}");
            prev = d;
        }
    }

    #[test]
    fn max_base_saturates_at_simtime_max() {
        assert_eq!(
            backoff_delay(1, SimTime::MAX, SimTime::MAX),
            SimTime::MAX,
            "base · 2 past u64::MAX ns must saturate, not wrap"
        );
    }
}
