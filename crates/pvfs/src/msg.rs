//! PVFS protocol messages.
//!
//! These travel inside [`parblast_hwsim::Envelope`]s — over the simulated
//! network between nodes, or as local sends between an application and its
//! node's client component.

use parblast_simcore::{CompId, SimTime};

use crate::layout::StripeLayout;

/// Approximate wire size of a control message (request headers, acks).
pub const CTRL_BYTES: u64 = 128;

/// Application-facing request to a PVFS client component.
#[derive(Debug, Clone)]
pub enum ClientReq {
    /// Open `file`: fetches the stripe layout from the metadata server.
    Open {
        /// Global file id.
        file: u64,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation tag echoed in [`ClientResp`].
        tag: u64,
    },
    /// Read a logical extent in parallel from all involved data servers.
    Read {
        /// Global file id (must be open).
        file: u64,
        /// Logical offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation tag.
        tag: u64,
    },
    /// Write a logical extent (striped across the data servers).
    Write {
        /// Global file id (must be open).
        file: u64,
        /// Logical offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation tag.
        tag: u64,
    },
}

/// Why a client operation failed (surfaced instead of hanging when a
/// server stops answering and retries are exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// A data server never acknowledged a request, through all retries.
    DataServerTimeout,
    /// The metadata server never answered the open, through all retries.
    MetaTimeout,
    /// A data server delivered bytes whose stripe checksum failed and no
    /// redundant copy exists. Unlike the timeout variants this is **not
    /// retryable**: re-reading the same platter returns the same bad bytes,
    /// so the client fails the operation immediately instead of burning its
    /// retry/backoff budget.
    Corrupt,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::DataServerTimeout => write!(f, "data server timed out"),
            IoError::MetaTimeout => write!(f, "metadata server timed out"),
            IoError::Corrupt => write!(f, "stripe checksum mismatch (unrecoverable corruption)"),
        }
    }
}

/// Application-facing completion from a PVFS client component.
#[derive(Debug, Clone)]
pub enum ClientResp {
    /// Open finished.
    OpenDone {
        /// Echoed tag.
        tag: u64,
        /// End-to-end latency.
        latency: SimTime,
    },
    /// Read finished (all servers delivered).
    ReadDone {
        /// Echoed tag.
        tag: u64,
        /// End-to-end latency.
        latency: SimTime,
        /// Bytes transferred.
        len: u64,
    },
    /// Write finished (all servers acknowledged).
    WriteDone {
        /// Echoed tag.
        tag: u64,
        /// End-to-end latency.
        latency: SimTime,
        /// Bytes transferred.
        len: u64,
    },
    /// The operation failed: a server stopped answering and every retry
    /// timed out. The request is abandoned; the application decides
    /// whether to abort or reassign the work.
    Error {
        /// Echoed tag.
        tag: u64,
        /// What went wrong.
        error: IoError,
    },
}

/// Open request to the metadata server.
#[derive(Debug, Clone)]
pub struct MetaOpen {
    /// Global file id.
    pub file: u64,
    /// Requesting component.
    pub reply: CompId,
    /// Requesting component's node (for the reply route).
    pub reply_node: u32,
    /// Correlation token.
    pub token: u64,
}

/// Open response from the metadata server.
#[derive(Debug, Clone)]
pub struct MetaOpenResp {
    /// Echoed token.
    pub token: u64,
    /// Stripe layout of the file.
    pub layout: StripeLayout,
    /// File size in bytes.
    pub size: u64,
}

/// Read request to a data server (iod), in server-local coordinates.
#[derive(Debug, Clone)]
pub struct IodRead {
    /// Global file id.
    pub file: u64,
    /// Offset within the server's local portion.
    pub offset: u64,
    /// Length of the contiguous local range.
    pub len: u64,
    /// Requesting component.
    pub reply: CompId,
    /// Requesting component's node.
    pub reply_node: u32,
    /// Correlation token.
    pub token: u64,
}

/// Read response from a data server (carries `len` data bytes on the wire).
#[derive(Debug, Clone)]
pub struct IodReadResp {
    /// Echoed token.
    pub token: u64,
    /// Bytes delivered.
    pub len: u64,
    /// Local stripe indices inside the served range whose checksum failed
    /// verification (empty = clean data). The daemon still ships the bytes;
    /// the client decides whether to fail the operation (PVFS) or re-fetch
    /// from the mirror partner and repair (CEFT-PVFS).
    pub corrupt: Vec<u64>,
}

/// Write request to a data server (carries `len` data bytes on the wire).
#[derive(Debug, Clone)]
pub struct IodWrite {
    /// Global file id.
    pub file: u64,
    /// Offset within the server's local portion.
    pub offset: u64,
    /// Length of the contiguous local range.
    pub len: u64,
    /// Force each unit to the platter before acknowledging.
    pub sync: bool,
    /// Requesting component.
    pub reply: CompId,
    /// Requesting component's node.
    pub reply_node: u32,
    /// Correlation token.
    pub token: u64,
    /// Server-side mirroring (CEFT duplex write protocols): forward this
    /// write to the mirror partner at `(node, component)` after the local
    /// write.
    pub forward_to: Option<(u32, CompId)>,
    /// With `forward_to` set: acknowledge the client only after the mirror
    /// acknowledges (`true`, the safe server-duplex protocol) or right
    /// after the local write (`false`, the asynchronous protocol of [7]).
    pub forward_sync: bool,
}

/// Write acknowledgement from a data server.
#[derive(Debug, Clone)]
pub struct IodWriteResp {
    /// Echoed token.
    pub token: u64,
    /// Bytes written.
    pub len: u64,
}
