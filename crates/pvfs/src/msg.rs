//! PVFS protocol messages.
//!
//! These travel inside [`parblast_hwsim::Envelope`]s — over the simulated
//! network between nodes, or as local sends between an application and its
//! node's client component.

use parblast_simcore::{CompId, SimTime};

use crate::layout::StripeLayout;

/// Approximate wire size of a control message (request headers, acks).
pub const CTRL_BYTES: u64 = 128;

/// Most regions a data server packs into one [`IodReadListResp`] batch.
/// Longer lists are split automatically: the daemon streams back batches
/// of at most this many regions, each flagged `done: false` until the
/// final one. Bounding the batch keeps any single response (and the
/// buffer it describes) a few megabytes at the 64 KB stripe size.
pub const LIST_REGION_CAP: usize = 32;

/// One `(offset, len)` region of a list-I/O request. Offsets are
/// server-local for [`IodReadList`] and logical for
/// [`ClientReq::ReadList`]; either way a valid list is sorted by offset,
/// free of overlaps, and contains no zero-length regions
/// (see [`validate_regions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Byte offset of the region.
    pub offset: u64,
    /// Length in bytes (never zero in a valid list).
    pub len: u64,
}

impl Region {
    /// Shorthand constructor.
    pub fn new(offset: u64, len: u64) -> Self {
        Region { offset, len }
    }
}

/// Why a `ReadList` frame or region list was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListFrameError {
    /// The list carries no regions at all.
    Empty,
    /// Region at this index has `len == 0`.
    ZeroLen(usize),
    /// Region at this index starts before the previous region.
    Unsorted(usize),
    /// Region at this index overlaps the previous region.
    Overlap(usize),
    /// The byte frame ended before the declared region count.
    Truncated,
    /// The frame does not start with [`LIST_MAGIC`].
    BadMagic,
    /// Unknown frame version.
    BadVersion(u8),
}

impl std::fmt::Display for ListFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListFrameError::Empty => write!(f, "region list is empty"),
            ListFrameError::ZeroLen(i) => write!(f, "region {i} has zero length"),
            ListFrameError::Unsorted(i) => write!(f, "region {i} is out of order"),
            ListFrameError::Overlap(i) => write!(f, "region {i} overlaps its predecessor"),
            ListFrameError::Truncated => write!(f, "frame truncated"),
            ListFrameError::BadMagic => write!(f, "bad frame magic"),
            ListFrameError::BadVersion(v) => write!(f, "unknown frame version {v}"),
        }
    }
}

/// Magic number opening every `ReadList` wire frame (`"PVL1"` bytes).
pub const LIST_MAGIC: u32 = 0x5056_4C31;

/// Current `ReadList` frame version.
pub const LIST_VERSION: u8 = 1;

/// Check that `regions` form a valid list: non-empty, every region
/// non-zero length, sorted by offset, no overlaps. Adjacent regions are
/// legal (the requester may keep stripe boundaries visible).
pub fn validate_regions(regions: &[Region]) -> Result<(), ListFrameError> {
    if regions.is_empty() {
        return Err(ListFrameError::Empty);
    }
    let mut end = 0u64;
    for (i, r) in regions.iter().enumerate() {
        if r.len == 0 {
            return Err(ListFrameError::ZeroLen(i));
        }
        if i > 0 {
            if r.offset < regions[i - 1].offset {
                return Err(ListFrameError::Unsorted(i));
            }
            if r.offset < end {
                return Err(ListFrameError::Overlap(i));
            }
        }
        end = r.offset + r.len;
    }
    Ok(())
}

/// Wire size of an encoded `ReadList` request frame carrying `regions`
/// regions: 33-byte header plus 16 bytes per region. This is what a
/// client charges the network for one aggregated request (instead of
/// [`CTRL_BYTES`] per stripe).
pub fn list_req_wire_bytes(regions: usize) -> u64 {
    33 + 16 * regions as u64
}

/// Encode a `ReadList` request frame (little-endian):
/// magic `u32`, version `u8`, token `u64`, file `u64`, first `u64`,
/// count `u32`, then count × (offset `u64`, len `u64`).
/// The list is validated first; invalid lists never hit the wire.
pub fn encode_read_list(
    token: u64,
    file: u64,
    first: u64,
    regions: &[Region],
) -> Result<Vec<u8>, ListFrameError> {
    validate_regions(regions)?;
    let mut out = Vec::with_capacity(list_req_wire_bytes(regions.len()) as usize);
    out.extend_from_slice(&LIST_MAGIC.to_le_bytes());
    out.push(LIST_VERSION);
    out.extend_from_slice(&token.to_le_bytes());
    out.extend_from_slice(&file.to_le_bytes());
    out.extend_from_slice(&first.to_le_bytes());
    out.extend_from_slice(&(regions.len() as u32).to_le_bytes());
    for r in regions {
        out.extend_from_slice(&r.offset.to_le_bytes());
        out.extend_from_slice(&r.len.to_le_bytes());
    }
    Ok(out)
}

fn take<const N: usize>(buf: &[u8], at: &mut usize) -> Result<[u8; N], ListFrameError> {
    let end = *at + N;
    if end > buf.len() {
        return Err(ListFrameError::Truncated);
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[*at..end]);
    *at = end;
    Ok(out)
}

/// Decode and validate a `ReadList` request frame produced by
/// [`encode_read_list`]. Returns `(token, file, first, regions)`.
/// Rejects bad magic/version, truncated frames, trailing garbage, and
/// any region list [`validate_regions`] would refuse — a server never
/// acts on a malformed list.
pub fn decode_read_list(frame: &[u8]) -> Result<(u64, u64, u64, Vec<Region>), ListFrameError> {
    let mut at = 0usize;
    let magic = u32::from_le_bytes(take::<4>(frame, &mut at)?);
    if magic != LIST_MAGIC {
        return Err(ListFrameError::BadMagic);
    }
    let version = take::<1>(frame, &mut at)?[0];
    if version != LIST_VERSION {
        return Err(ListFrameError::BadVersion(version));
    }
    let token = u64::from_le_bytes(take::<8>(frame, &mut at)?);
    let file = u64::from_le_bytes(take::<8>(frame, &mut at)?);
    let first = u64::from_le_bytes(take::<8>(frame, &mut at)?);
    let count = u32::from_le_bytes(take::<4>(frame, &mut at)?) as usize;
    let mut regions = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let offset = u64::from_le_bytes(take::<8>(frame, &mut at)?);
        let len = u64::from_le_bytes(take::<8>(frame, &mut at)?);
        regions.push(Region { offset, len });
    }
    if at != frame.len() {
        return Err(ListFrameError::Truncated);
    }
    validate_regions(&regions)?;
    Ok((token, file, first, regions))
}

/// Application-facing request to a PVFS client component.
#[derive(Debug, Clone)]
pub enum ClientReq {
    /// Open `file`: fetches the stripe layout from the metadata server.
    Open {
        /// Global file id.
        file: u64,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation tag echoed in [`ClientResp`].
        tag: u64,
    },
    /// Read a logical extent in parallel from all involved data servers.
    Read {
        /// Global file id (must be open).
        file: u64,
        /// Logical offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation tag.
        tag: u64,
    },
    /// Read a *list* of logical extents with one aggregated request per
    /// involved data server (list I/O). Equivalent to issuing one
    /// [`ClientReq::Read`] per region, but the per-server stripe lists
    /// are shipped as single [`IodReadList`] requests, so the request
    /// count collapses from regions × servers to at most one per server.
    ReadList {
        /// Global file id (must be open).
        file: u64,
        /// Logical regions to read (validated; must be sorted and
        /// non-overlapping).
        regions: Vec<Region>,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation tag.
        tag: u64,
    },
    /// Write a logical extent (striped across the data servers).
    Write {
        /// Global file id (must be open).
        file: u64,
        /// Logical offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation tag.
        tag: u64,
    },
}

/// Why a client operation failed (surfaced instead of hanging when a
/// server stops answering and retries are exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// A data server never acknowledged a request, through all retries.
    DataServerTimeout,
    /// The metadata server never answered the open, through all retries.
    MetaTimeout,
    /// A data server delivered bytes whose stripe checksum failed and no
    /// redundant copy exists. Unlike the timeout variants this is **not
    /// retryable**: re-reading the same platter returns the same bad bytes,
    /// so the client fails the operation immediately instead of burning its
    /// retry/backoff budget.
    Corrupt,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::DataServerTimeout => write!(f, "data server timed out"),
            IoError::MetaTimeout => write!(f, "metadata server timed out"),
            IoError::Corrupt => write!(f, "stripe checksum mismatch (unrecoverable corruption)"),
        }
    }
}

/// Application-facing completion from a PVFS client component.
#[derive(Debug, Clone)]
pub enum ClientResp {
    /// Open finished.
    OpenDone {
        /// Echoed tag.
        tag: u64,
        /// End-to-end latency.
        latency: SimTime,
    },
    /// Read finished (all servers delivered).
    ReadDone {
        /// Echoed tag.
        tag: u64,
        /// End-to-end latency.
        latency: SimTime,
        /// Bytes transferred.
        len: u64,
    },
    /// Write finished (all servers acknowledged).
    WriteDone {
        /// Echoed tag.
        tag: u64,
        /// End-to-end latency.
        latency: SimTime,
        /// Bytes transferred.
        len: u64,
    },
    /// The operation failed: a server stopped answering and every retry
    /// timed out. The request is abandoned; the application decides
    /// whether to abort or reassign the work.
    Error {
        /// Echoed tag.
        tag: u64,
        /// What went wrong.
        error: IoError,
    },
}

/// Open request to the metadata server.
#[derive(Debug, Clone)]
pub struct MetaOpen {
    /// Global file id.
    pub file: u64,
    /// Requesting component.
    pub reply: CompId,
    /// Requesting component's node (for the reply route).
    pub reply_node: u32,
    /// Correlation token.
    pub token: u64,
}

/// Open response from the metadata server.
#[derive(Debug, Clone)]
pub struct MetaOpenResp {
    /// Echoed token.
    pub token: u64,
    /// Stripe layout of the file.
    pub layout: StripeLayout,
    /// File size in bytes.
    pub size: u64,
}

/// Read request to a data server (iod), in server-local coordinates.
#[derive(Debug, Clone)]
pub struct IodRead {
    /// Global file id.
    pub file: u64,
    /// Offset within the server's local portion.
    pub offset: u64,
    /// Length of the contiguous local range.
    pub len: u64,
    /// Requesting component.
    pub reply: CompId,
    /// Requesting component's node.
    pub reply_node: u32,
    /// Correlation token.
    pub token: u64,
}

/// Read response from a data server (carries `len` data bytes on the wire).
#[derive(Debug, Clone)]
pub struct IodReadResp {
    /// Echoed token.
    pub token: u64,
    /// Bytes delivered.
    pub len: u64,
    /// Local stripe indices inside the served range whose checksum failed
    /// verification (empty = clean data). The daemon still ships the bytes;
    /// the client decides whether to fail the operation (PVFS) or re-fetch
    /// from the mirror partner and repair (CEFT-PVFS).
    pub corrupt: Vec<u64>,
}

/// Aggregated list-I/O read request to a data server: every region the
/// requester wants from this server, in one message, in server-local
/// coordinates. The daemon streams the regions back **in list order** as
/// one or more [`IodReadListResp`] batches of at most
/// [`LIST_REGION_CAP`] regions each, paying its per-request fixed
/// overhead once for the whole list rather than once per region.
#[derive(Debug, Clone)]
pub struct IodReadList {
    /// Global file id.
    pub file: u64,
    /// Absolute index (in the requester's numbering) of `regions[0]`.
    /// A failover or retry resends only the unserved tail with `first`
    /// advanced, so late batches from the original attempt are
    /// recognized and dropped by their stale `first`.
    pub first: u64,
    /// Server-local regions, sorted and non-overlapping
    /// ([`validate_regions`] holds).
    pub regions: Vec<Region>,
    /// Requesting component.
    pub reply: CompId,
    /// Requesting component's node.
    pub reply_node: u32,
    /// Correlation token.
    pub token: u64,
}

/// One streamed batch of a list-I/O response (carries `len` data bytes
/// on the wire). The requester accepts a batch only when `first` matches
/// the count of regions it has already received for the token, which
/// makes duplicated or stale batches harmless.
#[derive(Debug, Clone)]
pub struct IodReadListResp {
    /// Echoed token.
    pub token: u64,
    /// Absolute index of the first region in this batch.
    pub first: u64,
    /// Regions delivered in this batch (≤ [`LIST_REGION_CAP`]).
    pub count: u64,
    /// Data bytes delivered in this batch.
    pub len: u64,
    /// True on the final batch of the request.
    pub done: bool,
    /// Local stripe indices inside this batch whose checksum failed
    /// (empty = clean). Same contract as [`IodReadResp::corrupt`].
    pub corrupt: Vec<u64>,
}

/// Write request to a data server (carries `len` data bytes on the wire).
#[derive(Debug, Clone)]
pub struct IodWrite {
    /// Global file id.
    pub file: u64,
    /// Offset within the server's local portion.
    pub offset: u64,
    /// Length of the contiguous local range.
    pub len: u64,
    /// Force each unit to the platter before acknowledging.
    pub sync: bool,
    /// Requesting component.
    pub reply: CompId,
    /// Requesting component's node.
    pub reply_node: u32,
    /// Correlation token.
    pub token: u64,
    /// Server-side mirroring (CEFT duplex write protocols): forward this
    /// write to the mirror partner at `(node, component)` after the local
    /// write.
    pub forward_to: Option<(u32, CompId)>,
    /// With `forward_to` set: acknowledge the client only after the mirror
    /// acknowledges (`true`, the safe server-duplex protocol) or right
    /// after the local write (`false`, the asynchronous protocol of [7]).
    pub forward_sync: bool,
}

/// Write acknowledgement from a data server.
#[derive(Debug, Clone)]
pub struct IodWriteResp {
    /// Echoed token.
    pub token: u64,
    /// Bytes written.
    pub len: u64,
}
