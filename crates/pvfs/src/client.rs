//! PVFS client library, modeled as one component per client node.
//!
//! The application (a BLAST worker) sends [`ClientReq`]s; the client
//! resolves the stripe layout (an `open` round trip to the metadata server,
//! cached thereafter), fans one request out to every involved data server in
//! parallel, and reports completion when the slowest server answers —
//! exactly the read path the paper's §3 describes.

use std::collections::HashMap;

use parblast_hwsim::{Ev, NetSend};
use parblast_simcore::{CompId, Component, Ctx, SimTime, Summary};

use crate::meta::FileMeta;
use crate::msg::{
    list_req_wire_bytes, validate_regions, ClientReq, ClientResp, IoError, IodRead, IodReadList,
    IodReadListResp, IodReadResp, IodWrite, IodWriteResp, MetaOpen, MetaOpenResp, Region,
    CTRL_BYTES,
};
use crate::retry::{backoff_delay, RetryPolicy};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
}

#[derive(Debug)]
struct PendingOp {
    kind: OpKind,
    remaining: u32,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
    len: u64,
}

#[derive(Debug)]
struct PendingOpen {
    file: u64,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
    attempts: u32,
}

/// One in-flight per-server request, kept so a timed-out attempt can be
/// re-sent verbatim (the token is reused: whichever attempt answers first
/// completes the part, later duplicates are ignored).
#[derive(Debug, Clone)]
struct PartState {
    op: u64,
    server: usize,
    file: u64,
    offset: u64,
    len: u64,
    kind: OpKind,
    attempts: u32,
}

/// One in-flight aggregated list request to a single server. The server
/// streams batches back in order; `served` counts the regions accepted so
/// far, so a timed-out attempt re-sends **only the unserved tail**
/// (`regions[served..]` with `first = served`) and late batches from the
/// original attempt are recognized by their stale `first` and dropped.
#[derive(Debug, Clone)]
struct ListPartState {
    op: u64,
    server: usize,
    file: u64,
    /// Full per-server region list, in server-local coordinates.
    regions: Vec<Region>,
    /// Regions received and accepted so far.
    served: usize,
    /// The retry budget is spent per **list request**, not per region.
    attempts: u32,
    /// Earliest time the pending timeout timer is allowed to fire; each
    /// accepted batch pushes it out (progress resets the clock).
    deadline: SimTime,
}

/// Address of a protocol server: `(node index, component)`.
pub type ServerAddr = (u32, CompId);

/// PVFS client component.
pub struct PvfsClient {
    node: u32,
    net: CompId,
    meta: ServerAddr,
    iods: Vec<ServerAddr>,
    files: HashMap<u64, FileMeta>,
    opens: HashMap<u64, PendingOpen>,
    ops: HashMap<u64, PendingOp>,
    parts: HashMap<u64, PartState>,
    list_parts: HashMap<u64, ListPartState>,
    next_op: u64,
    retry: RetryPolicy,
    retries: u64,
    failures: u64,
    read_latency: Summary,
    bytes_read: u64,
    bytes_written: u64,
    name: String,
}

impl PvfsClient {
    /// New client on `node`. `iods[i]` must be the server at layout index
    /// `i`.
    pub fn new(
        name: impl Into<String>,
        node: u32,
        net: CompId,
        meta: ServerAddr,
        iods: Vec<ServerAddr>,
    ) -> Self {
        PvfsClient {
            node,
            net,
            meta,
            iods,
            files: HashMap::new(),
            opens: HashMap::new(),
            ops: HashMap::new(),
            parts: HashMap::new(),
            list_parts: HashMap::new(),
            next_op: 1,
            retry: RetryPolicy::disabled(),
            retries: 0,
            failures: 0,
            read_latency: Summary::new(),
            bytes_read: 0,
            bytes_written: 0,
            name: name.into(),
        }
    }

    /// Enable (or change) the request timeout/retry policy.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// `(bytes read, bytes written)` through this client.
    pub fn bytes(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// Requests re-sent after a timeout.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Operations that failed with [`ClientResp::Error`].
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Per-read latency summary.
    pub fn read_latency(&self) -> &Summary {
        &self.read_latency
    }

    fn send_net(
        &self,
        ctx: &mut Ctx<'_, Ev>,
        dst: ServerAddr,
        bytes: u64,
        payload: Box<dyn std::any::Any>,
    ) {
        ctx.send(
            self.net,
            Ev::Net(NetSend {
                src_node: self.node,
                dst_node: dst.0,
                bytes,
                dst: dst.1,
                payload,
            }),
        );
    }

    /// (Re-)send one per-server request after `delay`, arming its timeout.
    fn send_part(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64, state: &PartState, delay: SimTime) {
        let me = ctx.self_id();
        let node = self.node;
        let dst = self.iods[state.server];
        let (bytes, payload): (u64, Box<dyn std::any::Any>) = match state.kind {
            OpKind::Read => (
                CTRL_BYTES,
                Box::new(IodRead {
                    file: state.file,
                    offset: state.offset,
                    len: state.len,
                    reply: me,
                    reply_node: node,
                    token,
                }),
            ),
            OpKind::Write => (
                state.len + CTRL_BYTES,
                Box::new(IodWrite {
                    file: state.file,
                    offset: state.offset,
                    len: state.len,
                    sync: false,
                    reply: me,
                    reply_node: node,
                    token,
                    forward_to: None,
                    forward_sync: false,
                }),
            ),
        };
        ctx.schedule_in(
            delay,
            self.net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: dst.0,
                bytes,
                dst: dst.1,
                payload,
            }),
        );
        if self.retry.enabled() {
            ctx.wake_in(delay + self.retry.timeout, Ev::Timer(token));
        }
    }

    /// (Re-)send the unserved tail of one per-server list request after
    /// `delay`, arming (or pushing out) its timeout.
    fn send_list_part(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        token: u64,
        state: &ListPartState,
        delay: SimTime,
    ) {
        let me = ctx.self_id();
        let node = self.node;
        let dst = self.iods[state.server];
        let tail = state.regions[state.served..].to_vec();
        let bytes = list_req_wire_bytes(tail.len());
        ctx.schedule_in(
            delay,
            self.net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: dst.0,
                bytes,
                dst: dst.1,
                payload: Box::new(IodReadList {
                    file: state.file,
                    first: state.served as u64,
                    regions: tail,
                    reply: me,
                    reply_node: node,
                    token,
                }),
            }),
        );
        if self.retry.enabled() {
            ctx.wake_in(delay + self.retry.timeout, Ev::Timer(token));
        }
    }

    /// Abandon a whole operation: a server exhausted its retry budget.
    fn fail_op(&mut self, ctx: &mut Ctx<'_, Ev>, op_id: u64, error: IoError) {
        let Some(op) = self.ops.remove(&op_id) else {
            return;
        };
        self.parts.retain(|_, s| s.op != op_id);
        self.list_parts.retain(|_, s| s.op != op_id);
        self.failures += 1;
        ctx.send(
            op.reply_to,
            Ev::User(parblast_hwsim::Envelope::local(ClientResp::Error {
                tag: op.tag,
                error,
            })),
        );
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64) {
        if let Some(mut state) = self.parts.remove(&token) {
            if state.attempts >= self.retry.max_retries {
                self.fail_op(ctx, state.op, IoError::DataServerTimeout);
                return;
            }
            let delay = backoff_delay(
                state.attempts,
                self.retry.base_backoff,
                self.retry.max_backoff,
            );
            state.attempts += 1;
            self.retries += 1;
            self.send_part(ctx, token, &state, delay);
            self.parts.insert(token, state);
            return;
        }
        if let Some(state) = self.list_parts.get_mut(&token) {
            if ctx.now() < state.deadline {
                // A stale timer armed before a batch arrived; progress
                // pushed the real deadline out.
                return;
            }
            if state.attempts >= self.retry.max_retries {
                let op = state.op;
                self.fail_op(ctx, op, IoError::DataServerTimeout);
                return;
            }
            let delay = backoff_delay(
                state.attempts,
                self.retry.base_backoff,
                self.retry.max_backoff,
            );
            state.attempts += 1;
            self.retries += 1;
            let mut state = self.list_parts.remove(&token).unwrap();
            state.deadline = ctx
                .now()
                .saturating_add(delay)
                .saturating_add(self.retry.timeout);
            self.send_list_part(ctx, token, &state, delay);
            self.list_parts.insert(token, state);
            return;
        }
        if let Some(open) = self.opens.get_mut(&token) {
            if open.attempts >= self.retry.max_retries {
                let open = self.opens.remove(&token).unwrap();
                self.failures += 1;
                ctx.send(
                    open.reply_to,
                    Ev::User(parblast_hwsim::Envelope::local(ClientResp::Error {
                        tag: open.tag,
                        error: IoError::MetaTimeout,
                    })),
                );
                return;
            }
            let delay = backoff_delay(
                open.attempts,
                self.retry.base_backoff,
                self.retry.max_backoff,
            );
            open.attempts += 1;
            self.retries += 1;
            let file = open.file;
            let me = ctx.self_id();
            let node = self.node;
            let meta = self.meta;
            ctx.schedule_in(
                delay,
                self.net,
                Ev::Net(NetSend {
                    src_node: node,
                    dst_node: meta.0,
                    bytes: CTRL_BYTES,
                    dst: meta.1,
                    payload: Box::new(MetaOpen {
                        file,
                        reply: me,
                        reply_node: node,
                        token,
                    }),
                }),
            );
            ctx.wake_in(delay + self.retry.timeout, Ev::Timer(token));
        }
        // Anything else: a stale timer for a part that already completed.
    }

    fn handle_req(&mut self, ctx: &mut Ctx<'_, Ev>, req: ClientReq) {
        match req {
            ClientReq::Open {
                file,
                reply_to,
                tag,
            } => {
                let token = ctx.fresh_token();
                self.opens.insert(
                    token,
                    PendingOpen {
                        file,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        attempts: 0,
                    },
                );
                let me = ctx.self_id();
                let node = self.node;
                let meta = self.meta;
                self.send_net(
                    ctx,
                    meta,
                    CTRL_BYTES,
                    Box::new(MetaOpen {
                        file,
                        reply: me,
                        reply_node: node,
                        token,
                    }),
                );
                if self.retry.enabled() {
                    ctx.wake_in(self.retry.timeout, Ev::Timer(token));
                }
            }
            ClientReq::Read {
                file,
                offset,
                len,
                reply_to,
                tag,
            } => {
                let meta = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("read of unopened file {file}"))
                    .clone();
                let ranges = meta.layout.map_extent(offset, len);
                if ranges.is_empty() {
                    ctx.send(
                        reply_to,
                        Ev::User(parblast_hwsim::Envelope::local(ClientResp::ReadDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Read,
                        remaining: ranges.len() as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len,
                    },
                );
                for r in ranges {
                    let token = ctx.fresh_token();
                    let state = PartState {
                        op,
                        server: r.server as usize,
                        file,
                        offset: r.local_offset,
                        len: r.len,
                        kind: OpKind::Read,
                        attempts: 0,
                    };
                    self.send_part(ctx, token, &state, SimTime::ZERO);
                    self.parts.insert(token, state);
                }
            }
            ClientReq::ReadList {
                file,
                regions,
                reply_to,
                tag,
            } => {
                if let Err(e) = validate_regions(&regions) {
                    panic!("ReadList with invalid region list: {e}");
                }
                let meta = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("read of unopened file {file}"))
                    .clone();
                let total: u64 = regions.iter().map(|r| r.len).sum();
                // One aggregated request per involved server: each logical
                // region contributes its per-server ranges, concatenated in
                // logical order (local offsets are monotone per server, so
                // the per-server lists stay sorted and non-overlapping).
                let mut lists: Vec<Vec<Region>> = vec![Vec::new(); self.iods.len()];
                for lr in &regions {
                    for r in meta.layout.map_extent(lr.offset, lr.len) {
                        lists[r.server as usize].push(Region::new(r.local_offset, r.len));
                    }
                }
                let involved = lists.iter().filter(|l| !l.is_empty()).count();
                if involved == 0 {
                    ctx.send(
                        reply_to,
                        Ev::User(parblast_hwsim::Envelope::local(ClientResp::ReadDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Read,
                        remaining: involved as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len: total,
                    },
                );
                for (server, list) in lists.into_iter().enumerate() {
                    if list.is_empty() {
                        continue;
                    }
                    let token = ctx.fresh_token();
                    let state = ListPartState {
                        op,
                        server,
                        file,
                        regions: list,
                        served: 0,
                        attempts: 0,
                        deadline: ctx.now().saturating_add(self.retry.timeout),
                    };
                    self.send_list_part(ctx, token, &state, SimTime::ZERO);
                    self.list_parts.insert(token, state);
                }
            }
            ClientReq::Write {
                file,
                offset,
                len,
                reply_to,
                tag,
            } => {
                let meta = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("write of unopened file {file}"))
                    .clone();
                let ranges = meta.layout.map_extent(offset, len);
                if ranges.is_empty() {
                    ctx.send(
                        reply_to,
                        Ev::User(parblast_hwsim::Envelope::local(ClientResp::WriteDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Write,
                        remaining: ranges.len() as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len,
                    },
                );
                for r in ranges {
                    let token = ctx.fresh_token();
                    let state = PartState {
                        op,
                        server: r.server as usize,
                        file,
                        offset: r.local_offset,
                        len: r.len,
                        kind: OpKind::Write,
                        attempts: 0,
                    };
                    self.send_part(ctx, token, &state, SimTime::ZERO);
                    self.parts.insert(token, state);
                }
            }
        }
    }

    /// Accept one streamed batch of a list request.
    fn on_list_resp(&mut self, ctx: &mut Ctx<'_, Ev>, r: IodReadListResp) {
        // Unknown tokens: stragglers of completed or failed operations.
        let Some(state) = self.list_parts.get_mut(&r.token) else {
            return;
        };
        if !r.corrupt.is_empty() {
            // Checksum mismatch with no redundant copy: non-retryable,
            // exactly like the per-stripe path (the retry budget is never
            // spent on corruption).
            let op = state.op;
            self.fail_op(ctx, op, IoError::Corrupt);
            return;
        }
        if r.first != state.served as u64 {
            // Stale or duplicate batch from a superseded attempt.
            return;
        }
        state.served += r.count as usize;
        if state.served < state.regions.len() {
            // More batches are coming; progress pushes the timeout out.
            if self.retry.enabled() {
                state.deadline = ctx.now().saturating_add(self.retry.timeout);
                ctx.wake_in(self.retry.timeout, Ev::Timer(r.token));
            }
            return;
        }
        let op_id = state.op;
        self.list_parts.remove(&r.token);
        self.finish_part_of(ctx, op_id);
    }

    fn part_done(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64) {
        // Unknown tokens are expected under retries: a duplicate answer to a
        // re-sent request, or a straggler of an operation that already
        // failed. Both are dropped.
        let Some(state) = self.parts.remove(&token) else {
            return;
        };
        self.finish_part_of(ctx, state.op);
    }

    /// One per-server part of `op_id` fully delivered; complete the
    /// operation when it was the last.
    fn finish_part_of(&mut self, ctx: &mut Ctx<'_, Ev>, op_id: u64) {
        let Some(op) = self.ops.get_mut(&op_id) else {
            return;
        };
        op.remaining -= 1;
        if op.remaining > 0 {
            return;
        }
        let op = self.ops.remove(&op_id).unwrap();
        let latency = ctx.now().saturating_sub(op.started);
        let resp = match op.kind {
            OpKind::Read => {
                self.bytes_read += op.len;
                self.read_latency.record(latency.as_secs_f64());
                ClientResp::ReadDone {
                    tag: op.tag,
                    latency,
                    len: op.len,
                }
            }
            OpKind::Write => {
                self.bytes_written += op.len;
                ClientResp::WriteDone {
                    tag: op.tag,
                    latency,
                    len: op.len,
                }
            }
        };
        ctx.send(op.reply_to, Ev::User(parblast_hwsim::Envelope::local(resp)));
    }
}

impl Component<Ev> for PvfsClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let env = match ev {
            Ev::User(env) => env,
            Ev::Timer(token) => {
                self.on_timeout(ctx, token);
                return;
            }
            _ => return,
        };
        let payload = env.payload;
        match payload.downcast::<ClientReq>() {
            Ok(req) => self.handle_req(ctx, *req),
            Err(other) => match other.downcast::<MetaOpenResp>() {
                Ok(resp) => {
                    let resp = *resp;
                    // Unknown token: duplicate reply to a retried open.
                    let Some(open) = self.opens.remove(&resp.token) else {
                        return;
                    };
                    self.files.insert(
                        open.file,
                        FileMeta {
                            layout: resp.layout,
                            size: resp.size,
                        },
                    );
                    let latency = ctx.now().saturating_sub(open.started);
                    ctx.send(
                        open.reply_to,
                        Ev::User(parblast_hwsim::Envelope::local(ClientResp::OpenDone {
                            tag: open.tag,
                            latency,
                        })),
                    );
                }
                Err(other) => match other.downcast::<IodReadResp>() {
                    Ok(r) => {
                        if r.corrupt.is_empty() {
                            self.part_done(ctx, r.token);
                        } else if let Some(state) = self.parts.remove(&r.token) {
                            // Checksum mismatch with no redundant copy.
                            // Re-reading the same platter returns the same
                            // bad bytes, so this is not retryable: fail the
                            // operation without touching the retry budget
                            // and let the application abort or reassign.
                            self.fail_op(ctx, state.op, IoError::Corrupt);
                        }
                    }
                    Err(other) => match other.downcast::<IodReadListResp>() {
                        Ok(r) => self.on_list_resp(ctx, *r),
                        Err(other) => match other.downcast::<IodWriteResp>() {
                            Ok(w) => self.part_done(ctx, w.token),
                            Err(_) => debug_assert!(false, "client got unknown message"),
                        },
                    },
                },
            },
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}
