//! PVFS client library, modeled as one component per client node.
//!
//! The application (a BLAST worker) sends [`ClientReq`]s; the client
//! resolves the stripe layout (an `open` round trip to the metadata server,
//! cached thereafter), fans one request out to every involved data server in
//! parallel, and reports completion when the slowest server answers —
//! exactly the read path the paper's §3 describes.

use std::collections::HashMap;

use parblast_hwsim::{Ev, NetSend};
use parblast_simcore::{CompId, Component, Ctx, SimTime, Summary};

use crate::meta::FileMeta;
use crate::msg::{
    ClientReq, ClientResp, IodRead, IodReadResp, IodWrite, IodWriteResp, MetaOpen, MetaOpenResp,
    CTRL_BYTES,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
}

#[derive(Debug)]
struct PendingOp {
    kind: OpKind,
    remaining: u32,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
    len: u64,
}

#[derive(Debug)]
struct PendingOpen {
    file: u64,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
}

/// Address of a protocol server: `(node index, component)`.
pub type ServerAddr = (u32, CompId);

/// PVFS client component.
pub struct PvfsClient {
    node: u32,
    net: CompId,
    meta: ServerAddr,
    iods: Vec<ServerAddr>,
    files: HashMap<u64, FileMeta>,
    opens: HashMap<u64, PendingOpen>,
    ops: HashMap<u64, PendingOp>,
    part_to_op: HashMap<u64, u64>,
    next_op: u64,
    read_latency: Summary,
    bytes_read: u64,
    bytes_written: u64,
    name: String,
}

impl PvfsClient {
    /// New client on `node`. `iods[i]` must be the server at layout index
    /// `i`.
    pub fn new(
        name: impl Into<String>,
        node: u32,
        net: CompId,
        meta: ServerAddr,
        iods: Vec<ServerAddr>,
    ) -> Self {
        PvfsClient {
            node,
            net,
            meta,
            iods,
            files: HashMap::new(),
            opens: HashMap::new(),
            ops: HashMap::new(),
            part_to_op: HashMap::new(),
            next_op: 1,
            read_latency: Summary::new(),
            bytes_read: 0,
            bytes_written: 0,
            name: name.into(),
        }
    }

    /// `(bytes read, bytes written)` through this client.
    pub fn bytes(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// Per-read latency summary.
    pub fn read_latency(&self) -> &Summary {
        &self.read_latency
    }

    fn send_net(&self, ctx: &mut Ctx<'_, Ev>, dst: ServerAddr, bytes: u64, payload: Box<dyn std::any::Any>) {
        ctx.send(
            self.net,
            Ev::Net(NetSend {
                src_node: self.node,
                dst_node: dst.0,
                bytes,
                dst: dst.1,
                payload,
            }),
        );
    }

    fn handle_req(&mut self, ctx: &mut Ctx<'_, Ev>, req: ClientReq) {
        match req {
            ClientReq::Open {
                file,
                reply_to,
                tag,
            } => {
                let token = ctx.fresh_token();
                self.opens.insert(
                    token,
                    PendingOpen {
                        file,
                        reply_to,
                        tag,
                        started: ctx.now(),
                    },
                );
                let me = ctx.self_id();
                let node = self.node;
                let meta = self.meta;
                self.send_net(
                    ctx,
                    meta,
                    CTRL_BYTES,
                    Box::new(MetaOpen {
                        file,
                        reply: me,
                        reply_node: node,
                        token,
                    }),
                );
            }
            ClientReq::Read {
                file,
                offset,
                len,
                reply_to,
                tag,
            } => {
                let meta = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("read of unopened file {file}"))
                    .clone();
                let ranges = meta.layout.map_extent(offset, len);
                if ranges.is_empty() {
                    ctx.send(
                        reply_to,
                        Ev::User(parblast_hwsim::Envelope::local(ClientResp::ReadDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Read,
                        remaining: ranges.len() as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len,
                    },
                );
                let me = ctx.self_id();
                let node = self.node;
                for r in ranges {
                    let token = ctx.fresh_token();
                    self.part_to_op.insert(token, op);
                    let dst = self.iods[r.server as usize];
                    self.send_net(
                        ctx,
                        dst,
                        CTRL_BYTES,
                        Box::new(IodRead {
                            file,
                            offset: r.local_offset,
                            len: r.len,
                            reply: me,
                            reply_node: node,
                            token,
                        }),
                    );
                }
            }
            ClientReq::Write {
                file,
                offset,
                len,
                reply_to,
                tag,
            } => {
                let meta = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("write of unopened file {file}"))
                    .clone();
                let ranges = meta.layout.map_extent(offset, len);
                if ranges.is_empty() {
                    ctx.send(
                        reply_to,
                        Ev::User(parblast_hwsim::Envelope::local(ClientResp::WriteDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Write,
                        remaining: ranges.len() as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len,
                    },
                );
                let me = ctx.self_id();
                let node = self.node;
                for r in ranges {
                    let token = ctx.fresh_token();
                    self.part_to_op.insert(token, op);
                    let dst = self.iods[r.server as usize];
                    self.send_net(
                        ctx,
                        dst,
                        r.len + CTRL_BYTES,
                        Box::new(IodWrite {
                            file,
                            offset: r.local_offset,
                            len: r.len,
                            sync: false,
                            reply: me,
                            reply_node: node,
                            token,
                            forward_to: None,
                            forward_sync: false,
                        }),
                    );
                }
            }
        }
    }

    fn part_done(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64) {
        let Some(op_id) = self.part_to_op.remove(&token) else {
            debug_assert!(false, "unknown part token");
            return;
        };
        let op = self.ops.get_mut(&op_id).expect("op for part");
        op.remaining -= 1;
        if op.remaining > 0 {
            return;
        }
        let op = self.ops.remove(&op_id).unwrap();
        let latency = ctx.now().saturating_sub(op.started);
        let resp = match op.kind {
            OpKind::Read => {
                self.bytes_read += op.len;
                self.read_latency.record(latency.as_secs_f64());
                ClientResp::ReadDone {
                    tag: op.tag,
                    latency,
                    len: op.len,
                }
            }
            OpKind::Write => {
                self.bytes_written += op.len;
                ClientResp::WriteDone {
                    tag: op.tag,
                    latency,
                    len: op.len,
                }
            }
        };
        ctx.send(op.reply_to, Ev::User(parblast_hwsim::Envelope::local(resp)));
    }
}

impl Component<Ev> for PvfsClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let Ev::User(env) = ev else {
            return;
        };
        let payload = env.payload;
        match payload.downcast::<ClientReq>() {
            Ok(req) => self.handle_req(ctx, *req),
            Err(other) => match other.downcast::<MetaOpenResp>() {
                Ok(resp) => {
                    let resp = *resp;
                    let Some(open) = self.opens.remove(&resp.token) else {
                        debug_assert!(false, "unknown open token");
                        return;
                    };
                    self.files.insert(
                        open.file,
                        FileMeta {
                            layout: resp.layout,
                            size: resp.size,
                        },
                    );
                    let latency = ctx.now().saturating_sub(open.started);
                    ctx.send(
                        open.reply_to,
                        Ev::User(parblast_hwsim::Envelope::local(ClientResp::OpenDone {
                            tag: open.tag,
                            latency,
                        })),
                    );
                }
                Err(other) => match other.downcast::<IodReadResp>() {
                    Ok(r) => self.part_done(ctx, r.token),
                    Err(other) => match other.downcast::<IodWriteResp>() {
                        Ok(w) => self.part_done(ctx, w.token),
                        Err(_) => debug_assert!(false, "client got unknown message"),
                    },
                },
            },
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}
