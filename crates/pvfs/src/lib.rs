//! # parblast-pvfs
//!
//! Simulated PVFS (Parallel Virtual File System, Carns et al. 2000) as
//! deployed in the paper: one metadata server, N I/O daemons striping file
//! data round-robin in 64 KB units, and a client library that fans each
//! request out to all involved servers in parallel.
//!
//! The simulation captures the properties the paper measures:
//!
//! * aggregate read bandwidth scales with the number of data servers until
//!   the client NIC saturates;
//! * every byte crosses the TCP stack (costing CPU at both endpoints) and
//!   the metadata server adds an open round-trip — the overheads that make
//!   PVFS *slower* than local disks at one node (Figure 5);
//! * there is exactly one copy of the data, so a single stressed server
//!   disk convoys every client (Figure 9).

#![warn(missing_docs)]

pub mod client;
pub mod iod;
pub mod meta;
pub mod msg;
pub mod retry;

/// Stripe layout mathematics (shared with the real `parblast-pio` library).
pub mod layout {
    pub use parblast_pio::layout::{LocalRange, StripeLayout};
}

pub use client::{PvfsClient, ServerAddr};
pub use iod::Iod;
pub use layout::{LocalRange, StripeLayout};
pub use meta::{FileMeta, MetaServer};
pub use msg::{
    decode_read_list, encode_read_list, list_req_wire_bytes, validate_regions, ClientReq,
    ClientResp, IoError, IodRead, IodReadList, IodReadListResp, IodReadResp, IodWrite,
    IodWriteResp, ListFrameError, MetaOpen, MetaOpenResp, Region, CTRL_BYTES, LIST_MAGIC,
    LIST_REGION_CAP, LIST_VERSION,
};
pub use retry::{backoff_delay, RetryPolicy};

use parblast_hwsim::{Cluster, Ev};
use parblast_simcore::{CompId, Engine, SimTime};

/// A deployed PVFS instance: component ids of the metadata server and iods.
#[derive(Debug, Clone)]
pub struct Pvfs {
    /// Metadata server address.
    pub meta: ServerAddr,
    /// Data servers in layout order.
    pub iods: Vec<ServerAddr>,
    /// Stripe size used for new files.
    pub stripe_size: u64,
    net: CompId,
}

impl Pvfs {
    /// Deploy PVFS on `cluster`: the metadata server on node `meta_node`,
    /// one iod on each node in `server_nodes` (layout order).
    pub fn deploy(
        eng: &mut Engine<Ev>,
        cluster: &Cluster,
        meta_node: u32,
        server_nodes: &[u32],
        stripe_size: u64,
    ) -> Pvfs {
        assert!(!server_nodes.is_empty(), "PVFS needs data servers");
        let meta = eng.add(MetaServer::new(
            "pvfs.meta",
            meta_node,
            cluster.net,
            SimTime::from_micros(300),
        ));
        let iods = server_nodes
            .iter()
            .map(|&n| {
                let node = &cluster.nodes[n as usize];
                let iod = eng.add(Iod::new(format!("pvfs.iod{n}"), n, node.fs, cluster.net));
                (n, iod)
            })
            .collect();
        Pvfs {
            meta: (meta_node, meta),
            iods,
            stripe_size,
            net: cluster.net,
        }
    }

    /// Register a file with the metadata server (setup-time, not simulated).
    pub fn register_file(&self, eng: &mut Engine<Ev>, file: u64, size: u64) {
        let layout = StripeLayout::new(self.stripe_size, self.iods.len() as u32);
        eng.component_mut::<MetaServer>(self.meta.1)
            .register(file, layout, size);
    }

    /// Create a client component on `node`.
    pub fn add_client(&self, eng: &mut Engine<Ev>, node: u32) -> CompId {
        eng.add(PvfsClient::new(
            format!("pvfs.client{node}"),
            node,
            self.net,
            self.meta,
            self.iods.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_hwsim::{Envelope, HwParams, MIB};
    use parblast_simcore::{Component, Ctx};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Scripted application: open file, then issue a sequence of reads.
    struct App {
        client: CompId,
        file: u64,
        reads: Vec<(u64, u64)>,
        next: usize,
        log: Rc<RefCell<Vec<(SimTime, ClientResp)>>>,
    }
    impl Component<Ev> for App {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Timer(_) => {
                    let me = ctx.self_id();
                    ctx.send(
                        self.client,
                        Ev::User(Envelope::local(ClientReq::Open {
                            file: self.file,
                            reply_to: me,
                            tag: 0,
                        })),
                    );
                }
                Ev::User(env) => {
                    let resp: ClientResp = env.expect();
                    self.log.borrow_mut().push((ctx.now(), resp));
                    if self.next < self.reads.len() {
                        let (offset, len) = self.reads[self.next];
                        self.next += 1;
                        let me = ctx.self_id();
                        ctx.send(
                            self.client,
                            Ev::User(Envelope::local(ClientReq::Read {
                                file: self.file,
                                offset,
                                len,
                                reply_to: me,
                                tag: self.next as u64,
                            })),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// Time to read `total` bytes once, sequentially in `chunk`-sized reads,
    /// with `servers` data servers (client on the last node).
    fn read_once(servers: u32, total: u64, chunk: u64) -> f64 {
        let mut eng: Engine<Ev> = Engine::new(7);
        let n = servers as usize + 1;
        let cluster = Cluster::build(&mut eng, n, HwParams::default());
        let server_nodes: Vec<u32> = (0..servers).collect();
        let pvfs = Pvfs::deploy(&mut eng, &cluster, 0, &server_nodes, 64 << 10);
        pvfs.register_file(&mut eng, 1, total);
        let client = pvfs.add_client(&mut eng, servers);
        let log = Rc::new(RefCell::new(vec![]));
        let reads = (0..total.div_ceil(chunk))
            .map(|i| (i * chunk, chunk.min(total - i * chunk)))
            .collect();
        let app = eng.add(App {
            client,
            file: 1,
            reads,
            next: 0,
            log: log.clone(),
        });
        eng.schedule(SimTime::ZERO, app, Ev::Timer(0));
        eng.run();
        let t = log.borrow().last().unwrap().0.as_secs_f64();
        t
    }

    #[test]
    fn striped_read_scales_with_servers() {
        let total = 64 * MIB;
        let t1 = read_once(1, total, 4 * MIB);
        let t4 = read_once(4, total, 4 * MIB);
        let bw1 = total as f64 / MIB as f64 / t1;
        let bw4 = total as f64 / MIB as f64 / t4;
        // One server ≈ one disk (26); four servers well above.
        assert!(bw1 > 15.0 && bw1 < 27.0, "bw1 = {bw1}");
        assert!(bw4 > 2.2 * bw1, "bw4 = {bw4} vs bw1 = {bw1}");
    }

    #[test]
    fn many_servers_cap_at_client_nic() {
        let total = 128 * MIB;
        let t8 = read_once(8, total, 8 * MIB);
        let bw8 = total as f64 / MIB as f64 / t8;
        // 8 disks could source 208 MB/s but the client NIC is ~112 MB/s
        // (minus store-and-forward and per-request costs).
        assert!(bw8 < 115.0, "bw8 = {bw8}");
        assert!(bw8 > 50.0, "bw8 = {bw8}");
    }

    #[test]
    fn open_costs_a_round_trip() {
        let mut eng: Engine<Ev> = Engine::new(7);
        let cluster = Cluster::build(&mut eng, 3, HwParams::default());
        let pvfs = Pvfs::deploy(&mut eng, &cluster, 0, &[0, 1], 64 << 10);
        pvfs.register_file(&mut eng, 1, MIB);
        let client = pvfs.add_client(&mut eng, 2);
        let log = Rc::new(RefCell::new(vec![]));
        let app = eng.add(App {
            client,
            file: 1,
            reads: vec![],
            next: 0,
            log: log.clone(),
        });
        eng.schedule(SimTime::ZERO, app, Ev::Timer(0));
        eng.run();
        let v = log.borrow();
        assert_eq!(v.len(), 1);
        match &v[0].1 {
            ClientResp::OpenDone { latency, .. } => {
                assert!(latency.as_secs_f64() > 300e-6);
                assert!(latency.as_secs_f64() < 5e-3);
            }
            other => panic!("expected OpenDone, got {other:?}"),
        }
    }

    #[test]
    fn tiny_read_touches_single_server() {
        // A 13-byte read (paper's minimum) only involves one iod.
        let mut eng: Engine<Ev> = Engine::new(7);
        let cluster = Cluster::build(&mut eng, 5, HwParams::default());
        let pvfs = Pvfs::deploy(&mut eng, &cluster, 0, &[0, 1, 2, 3], 64 << 10);
        pvfs.register_file(&mut eng, 1, MIB);
        let client = pvfs.add_client(&mut eng, 4);
        let log = Rc::new(RefCell::new(vec![]));
        let app = eng.add(App {
            client,
            file: 1,
            reads: vec![(100, 13)],
            next: 0,
            log: log.clone(),
        });
        eng.schedule(SimTime::ZERO, app, Ev::Timer(0));
        eng.run();
        let served: u64 = pvfs
            .iods
            .iter()
            .map(|&(_, id)| eng.component::<Iod>(id).stats().0)
            .sum();
        assert_eq!(served, 1);
    }

    #[test]
    fn writes_stripe_across_servers() {
        let mut eng: Engine<Ev> = Engine::new(7);
        let cluster = Cluster::build(&mut eng, 5, HwParams::default());
        let pvfs = Pvfs::deploy(&mut eng, &cluster, 0, &[0, 1, 2, 3], 64 << 10);
        pvfs.register_file(&mut eng, 1, 16 * MIB);
        let client = pvfs.add_client(&mut eng, 4);
        struct W {
            client: CompId,
            done: Rc<RefCell<Option<ClientResp>>>,
        }
        impl Component<Ev> for W {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                match ev {
                    Ev::Timer(_) => {
                        let me = ctx.self_id();
                        ctx.send(
                            self.client,
                            Ev::User(Envelope::local(ClientReq::Open {
                                file: 1,
                                reply_to: me,
                                tag: 0,
                            })),
                        );
                    }
                    Ev::User(env) => {
                        let resp: ClientResp = env.expect();
                        match resp {
                            ClientResp::OpenDone { .. } => {
                                let me = ctx.self_id();
                                ctx.send(
                                    self.client,
                                    Ev::User(Envelope::local(ClientReq::Write {
                                        file: 1,
                                        offset: 0,
                                        len: 8 * MIB,
                                        reply_to: me,
                                        tag: 1,
                                    })),
                                );
                            }
                            done => *self.done.borrow_mut() = Some(done),
                        }
                    }
                    _ => {}
                }
            }
        }
        let done = Rc::new(RefCell::new(None));
        let w = eng.add(W {
            client,
            done: done.clone(),
        });
        eng.schedule(SimTime::ZERO, w, Ev::Timer(0));
        eng.run();
        match done.borrow().as_ref() {
            Some(ClientResp::WriteDone { len, .. }) => assert_eq!(*len, 8 * MIB),
            other => panic!("expected WriteDone, got {other:?}"),
        }
        for &(_, id) in &pvfs.iods {
            let (_, _, w, bw) = eng.component::<Iod>(id).stats();
            assert_eq!(w, 1);
            assert_eq!(bw, 2 * MIB);
        }
    }
}
