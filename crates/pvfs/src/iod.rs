//! PVFS I/O daemon (iod).
//!
//! One iod runs on each data-server node and owns that node's portion of
//! every striped file. It is single-threaded, like the original PVFS iod:
//! requests are served **one at a time**, each as a synchronous pass through
//! the node's local file system (which itself issues read-ahead-sized disk
//! units one by one). This serialization is what turns a single stressed
//! disk into a convoy for every client in Figure 9.

use std::collections::{BTreeSet, VecDeque};

use parblast_hwsim::{Ev, FaultCmd, FsMsg, NetSend};
use parblast_simcore::{CompId, Component, Ctx, SimTime, Summary};

use crate::msg::{
    validate_regions, IodRead, IodReadList, IodReadListResp, IodReadResp, IodWrite, IodWriteResp,
    CTRL_BYTES, LIST_REGION_CAP,
};

/// In-progress list-I/O request: the daemon walks the regions through the
/// local file system one at a time (it is single-threaded, like a real
/// iod) and ships them back in order as batches of at most
/// [`LIST_REGION_CAP`] regions.
#[derive(Debug)]
struct ListJob {
    req: IodReadList,
    /// Next region index (relative to `req.regions`) to pass to the FS.
    next: usize,
    /// First relative index of the batch currently being accumulated.
    batch_start: usize,
    /// Data bytes accumulated in the current batch.
    batch_bytes: u64,
    /// Corrupt local stripe indices found in the current batch.
    batch_corrupt: Vec<u64>,
}

#[derive(Debug)]
enum Job {
    Read(IodRead),
    ReadList(ListJob),
    Write(IodWrite),
}

/// I/O daemon component.
pub struct Iod {
    node: u32,
    fs: CompId,
    net: CompId,
    /// Fixed extra service time per request (CEFT-PVFS sets this to model
    /// its larger per-request metadata bookkeeping, §4.4).
    overhead: SimTime,
    /// Local-file I/O unit: PVFS iods move data in stripe-sized pieces.
    io_unit: u64,
    /// Forwarded writes awaiting mirror acks (server-sync duplex):
    /// mirror-token → (client node, client comp, client token, len).
    awaiting_mirror: std::collections::HashMap<u64, (u32, CompId, u64, u64)>,
    queue: VecDeque<(SimTime, Job)>,
    busy: bool,
    current: Option<(SimTime, Job)>,
    /// Bumped on [`FaultCmd::Reset`] (crash recovery) and used as the local
    /// file-system request tag, so completions issued before the crash are
    /// recognized as stale and dropped.
    generation: u64,
    /// Maps global file ids into this node's local-file namespace so that
    /// different striped files don't collide with node-local files.
    file_base: u64,
    /// Latent media errors: `(file, local stripe index)` pairs whose stored
    /// checksum no longer matches the data. Populated by
    /// [`FaultCmd::CorruptStripe`] and by torn writes on crash; cleared when
    /// a write fully overwrites the stripe (which recomputes its checksum).
    corrupt: BTreeSet<(u64, u64)>,
    reads: u64,
    /// Of `reads`, how many were aggregated list-I/O requests…
    list_reads: u64,
    /// …and how many regions those lists carried in total.
    list_regions: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    queue_delay: Summary,
    name: String,
}

impl Iod {
    /// New iod on `node`, using the node's `fs` and the cluster `net`.
    pub fn new(name: impl Into<String>, node: u32, fs: CompId, net: CompId) -> Self {
        Iod {
            node,
            fs,
            net,
            queue: VecDeque::new(),
            busy: false,
            current: None,
            generation: 0,
            overhead: SimTime::ZERO,
            io_unit: 64 << 10,
            awaiting_mirror: std::collections::HashMap::new(),
            file_base: 1 << 20,
            corrupt: BTreeSet::new(),
            reads: 0,
            list_reads: 0,
            list_regions: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
            queue_delay: Summary::new(),
            name: name.into(),
        }
    }

    /// Set the per-request service overhead.
    pub fn set_overhead(&mut self, overhead: SimTime) {
        self.overhead = overhead;
    }

    /// `(reads, bytes_read, writes, bytes_written)` served. A list-I/O
    /// request counts as **one** read regardless of how many regions it
    /// carries — `reads` is the request count the aggregation collapses.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.reads, self.bytes_read, self.writes, self.bytes_written)
    }

    /// `(list requests, total regions carried by them)` served, for the
    /// request-count-collapse accounting in benchmarks.
    pub fn list_stats(&self) -> (u64, u64) {
        (self.list_reads, self.list_regions)
    }

    /// Request queue-delay summary (time from arrival to service start).
    pub fn queue_delay(&self) -> &Summary {
        &self.queue_delay
    }

    /// Requests waiting plus in service.
    pub fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.busy)
    }

    /// Corrupt `(file, stripe)` pairs currently on this daemon's platter.
    pub fn corrupt_stripes(&self) -> Vec<(u64, u64)> {
        self.corrupt.iter().copied().collect()
    }

    /// Local stripe indices of `file` overlapped by `[offset, offset+len)`.
    fn stripes_of(&self, offset: u64, len: u64) -> std::ops::Range<u64> {
        let unit = self.io_unit.max(1);
        offset / unit..(offset + len).div_ceil(unit)
    }

    /// Stripes of the range whose checksum verification fails.
    fn corrupt_in(&self, file: u64, offset: u64, len: u64) -> Vec<u64> {
        self.stripes_of(offset, len)
            .filter(|&s| self.corrupt.contains(&(file, s)))
            .collect()
    }

    /// A write lands: stripes it fully covers get fresh checksums, wiping
    /// any latent corruption there. Partially-covered stripes keep their
    /// flag — a read-modify-write of bad bytes cannot resurrect good ones.
    fn clear_overwritten(&mut self, file: u64, offset: u64, len: u64) {
        let unit = self.io_unit.max(1);
        for s in self.stripes_of(offset, len) {
            if s * unit >= offset && (s + 1) * unit <= offset + len {
                self.corrupt.remove(&(file, s));
            }
        }
    }

    fn start_next(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if self.busy {
            return;
        }
        let Some((arrived, job)) = self.queue.pop_front() else {
            return;
        };
        self.queue_delay
            .record(ctx.now().saturating_sub(arrived).as_secs_f64());
        self.busy = true;
        let overhead = self.overhead;
        match &job {
            Job::Read(r) => {
                ctx.schedule_in(
                    overhead,
                    self.fs,
                    Ev::Fs(FsMsg::Read {
                        file: self.file_base + r.file,
                        offset: r.offset,
                        len: r.len,
                        mmap: false,
                        unit: self.io_unit,
                        reply_to: ctx.self_id(),
                        tag: self.generation,
                    }),
                );
            }
            Job::ReadList(l) => {
                // The per-request overhead is paid once, here; the
                // remaining regions of the list follow back-to-back with
                // no further fixed cost — that is the aggregation win.
                let r = l.req.regions[l.next];
                ctx.schedule_in(
                    overhead,
                    self.fs,
                    Ev::Fs(FsMsg::Read {
                        file: self.file_base + l.req.file,
                        offset: r.offset,
                        len: r.len,
                        mmap: false,
                        unit: self.io_unit,
                        reply_to: ctx.self_id(),
                        tag: self.generation,
                    }),
                );
            }
            Job::Write(w) => {
                ctx.schedule_in(
                    overhead,
                    self.fs,
                    Ev::Fs(FsMsg::Write {
                        file: self.file_base + w.file,
                        offset: w.offset,
                        len: w.len,
                        sync: w.sync,
                        reply_to: ctx.self_id(),
                        tag: self.generation,
                    }),
                );
            }
        }
        self.current = Some((arrived, job));
    }

    /// Forwarded writes whose mirror ack the client is waiting on:
    /// mirror-token → (client node, client comp, client token, len).
    fn finish_current(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let Some((arrived, job)) = self.current.take() else {
            // A crash reset discarded the in-flight job.
            self.busy = false;
            return;
        };
        self.busy = false;
        match job {
            Job::ReadList(mut l) => {
                // Region `next` just came off the platter: fold it into
                // the outgoing batch.
                let region = l.req.regions[l.next];
                self.bytes_read += region.len;
                l.batch_bytes += region.len;
                l.batch_corrupt
                    .extend(self.corrupt_in(l.req.file, region.offset, region.len));
                l.next += 1;
                let finished = l.next == l.req.regions.len();
                if finished {
                    self.reads += 1;
                    self.list_reads += 1;
                    self.list_regions += l.req.regions.len() as u64;
                }
                if finished || l.next - l.batch_start == LIST_REGION_CAP {
                    // Flush the batch: one response message carrying the
                    // accumulated data bytes, streamed back in list order.
                    ctx.send(
                        self.net,
                        Ev::Net(NetSend {
                            src_node: self.node,
                            dst_node: l.req.reply_node,
                            bytes: l.batch_bytes + CTRL_BYTES,
                            dst: l.req.reply,
                            payload: Box::new(IodReadListResp {
                                token: l.req.token,
                                first: l.req.first + l.batch_start as u64,
                                count: (l.next - l.batch_start) as u64,
                                len: l.batch_bytes,
                                done: finished,
                                corrupt: std::mem::take(&mut l.batch_corrupt),
                            }),
                        }),
                    );
                    l.batch_start = l.next;
                    l.batch_bytes = 0;
                }
                if !finished {
                    // Next region follows immediately: the daemon stays
                    // busy serving this one list request.
                    self.busy = true;
                    let r = l.req.regions[l.next];
                    ctx.send(
                        self.fs,
                        Ev::Fs(FsMsg::Read {
                            file: self.file_base + l.req.file,
                            offset: r.offset,
                            len: r.len,
                            mmap: false,
                            unit: self.io_unit,
                            reply_to: ctx.self_id(),
                            tag: self.generation,
                        }),
                    );
                    self.current = Some((arrived, Job::ReadList(l)));
                    return;
                }
            }
            Job::Read(r) => {
                self.reads += 1;
                self.bytes_read += r.len;
                // Verify stripe checksums over the served range; the bytes
                // ship regardless, flagged so the client can decide.
                let corrupt = self.corrupt_in(r.file, r.offset, r.len);
                ctx.send(
                    self.net,
                    Ev::Net(NetSend {
                        src_node: self.node,
                        dst_node: r.reply_node,
                        bytes: r.len + CTRL_BYTES,
                        dst: r.reply,
                        payload: Box::new(IodReadResp {
                            token: r.token,
                            len: r.len,
                            corrupt,
                        }),
                    }),
                );
            }
            Job::Write(w) => {
                self.writes += 1;
                self.bytes_written += w.len;
                self.clear_overwritten(w.file, w.offset, w.len);
                if let Some((mnode, mcomp)) = w.forward_to {
                    // Duplex forward to the mirror partner.
                    let mtoken = ctx.fresh_token();
                    let me = ctx.self_id();
                    if w.forward_sync {
                        // Ack the client only once the mirror acks us.
                        self.awaiting_mirror
                            .insert(mtoken, (w.reply_node, w.reply, w.token, w.len));
                    }
                    ctx.send(
                        self.net,
                        Ev::Net(NetSend {
                            src_node: self.node,
                            dst_node: mnode,
                            bytes: w.len + CTRL_BYTES,
                            dst: mcomp,
                            payload: Box::new(IodWrite {
                                file: w.file,
                                offset: w.offset,
                                len: w.len,
                                sync: w.sync,
                                reply: me,
                                reply_node: self.node,
                                token: mtoken,
                                forward_to: None,
                                forward_sync: false,
                            }),
                        }),
                    );
                    if w.forward_sync {
                        self.start_next(ctx);
                        return;
                    }
                }
                ctx.send(
                    self.net,
                    Ev::Net(NetSend {
                        src_node: self.node,
                        dst_node: w.reply_node,
                        bytes: CTRL_BYTES,
                        dst: w.reply,
                        payload: Box::new(IodWriteResp {
                            token: w.token,
                            len: w.len,
                        }),
                    }),
                );
            }
        }
        self.start_next(ctx);
    }
}

impl Component<Ev> for Iod {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::User(env) => {
                let payload = env.payload;
                let job = match payload.downcast::<IodRead>() {
                    Ok(r) => Job::Read(*r),
                    Err(other) => match other.downcast::<IodReadList>() {
                        Ok(list) => {
                            // A server never acts on a malformed list: the
                            // framing layer rejects it before any platter
                            // time is spent.
                            if validate_regions(&list.regions).is_err() {
                                debug_assert!(false, "iod got invalid region list");
                                return;
                            }
                            Job::ReadList(ListJob {
                                req: *list,
                                next: 0,
                                batch_start: 0,
                                batch_bytes: 0,
                                batch_corrupt: Vec::new(),
                            })
                        }
                        Err(other) => match other.downcast::<IodWrite>() {
                            Ok(w) => Job::Write(*w),
                            Err(other) => match other.downcast::<IodWriteResp>() {
                                Ok(ack) => {
                                    // Mirror ack of a server-sync duplex write:
                                    // release the waiting client.
                                    if let Some((cnode, ccomp, ctoken, len)) =
                                        self.awaiting_mirror.remove(&ack.token)
                                    {
                                        ctx.send(
                                            self.net,
                                            Ev::Net(NetSend {
                                                src_node: self.node,
                                                dst_node: cnode,
                                                bytes: CTRL_BYTES,
                                                dst: ccomp,
                                                payload: Box::new(IodWriteResp {
                                                    token: ctoken,
                                                    len,
                                                }),
                                            }),
                                        );
                                    }
                                    return;
                                }
                                Err(_) => {
                                    debug_assert!(false, "iod got unknown message");
                                    return;
                                }
                            },
                        },
                    },
                };
                self.queue.push_back((ctx.now(), job));
                self.start_next(ctx);
            }
            Ev::FsDone(done) => {
                if done.tag != self.generation {
                    // Stale completion issued before a crash reset.
                    return;
                }
                self.finish_current(ctx);
            }
            Ev::Fault(FaultCmd::Reset) => {
                // Crash recovery: the daemon restarts with empty queues.
                // In-flight and queued requests are lost; clients re-send
                // them (or fail over) via their retry policy. A write that
                // was mid-flight when the power went is *torn*: its stripes
                // hold a mix of old and new bytes, so the restarted daemon's
                // journal scan marks them corrupt until rewritten.
                if let Some((_, Job::Write(w))) = self.current.take() {
                    for s in self.stripes_of(w.offset, w.len) {
                        self.corrupt.insert((w.file, s));
                    }
                }
                self.generation += 1;
                self.queue.clear();
                self.current = None;
                self.busy = false;
                self.awaiting_mirror.clear();
            }
            Ev::Fault(FaultCmd::CorruptStripe { file, stripe }) => {
                self.corrupt.insert((file, stripe));
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_hwsim::{Cluster, HwParams, MIB};
    use parblast_simcore::Engine;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Requester {
        net: CompId,
        iod: CompId,
        iod_node: u32,
        reads: Vec<(u64, u64)>, // (offset, len) to issue at t=0
        got: Rc<RefCell<Vec<(SimTime, u64, u64)>>>,
    }
    impl Component<Ev> for Requester {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Timer(_) => {
                    for (i, &(offset, len)) in self.reads.iter().enumerate() {
                        let me = ctx.self_id();
                        ctx.send(
                            self.net,
                            Ev::Net(NetSend {
                                src_node: 1,
                                dst_node: self.iod_node,
                                bytes: CTRL_BYTES,
                                dst: self.iod,
                                payload: Box::new(IodRead {
                                    file: 9,
                                    offset,
                                    len,
                                    reply: me,
                                    reply_node: 1,
                                    token: i as u64,
                                }),
                            }),
                        );
                    }
                }
                Ev::User(env) => {
                    let r: IodReadResp = env.expect();
                    self.got.borrow_mut().push((ctx.now(), r.token, r.len));
                }
                _ => {}
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn build(
        reads: Vec<(u64, u64)>,
    ) -> (Engine<Ev>, CompId, Rc<RefCell<Vec<(SimTime, u64, u64)>>>) {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let iod = eng.add(Iod::new("iod0", 0, c.nodes[0].fs, c.net));
        let got = Rc::new(RefCell::new(vec![]));
        let req = eng.add(Requester {
            net: c.net,
            iod,
            iod_node: 0,
            reads,
            got: got.clone(),
        });
        eng.schedule(SimTime::ZERO, req, Ev::Timer(0));
        (eng, iod, got)
    }

    #[test]
    fn read_round_trip_carries_data() {
        let (mut eng, iod, got) = build(vec![(0, 4 * MIB)]);
        eng.run();
        let v = got.borrow();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].2, 4 * MIB);
        // 4 MiB at 26 MB/s ≈ 154 ms + network ≈ 70 ms (2× serialization).
        let t = v[0].0.as_secs_f64();
        assert!(t > 0.15 && t < 0.4, "t = {t}");
        assert_eq!(eng.component::<Iod>(iod).stats().0, 1);
    }

    #[test]
    fn requests_serialize_one_at_a_time() {
        let (mut eng, iod, got) = build(vec![(0, 4 * MIB), (100 * MIB, 4 * MIB)]);
        eng.run();
        let v = got.borrow();
        assert_eq!(v.len(), 2);
        // Second completes roughly one full service after the first.
        let gap = v[1].0.as_secs_f64() - v[0].0.as_secs_f64();
        assert!(gap > 0.12, "gap = {gap}");
        let d = eng.component::<Iod>(iod);
        assert_eq!(d.queue_delay().count(), 2);
        assert!(d.queue_delay().max().unwrap() > 0.1);
    }

    #[test]
    fn write_round_trip() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let iod = eng.add(Iod::new("iod0", 0, c.nodes[0].fs, c.net));
        struct W {
            net: CompId,
            iod: CompId,
            done: Rc<RefCell<bool>>,
        }
        impl Component<Ev> for W {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                match ev {
                    Ev::Timer(_) => {
                        let me = ctx.self_id();
                        ctx.send(
                            self.net,
                            Ev::Net(NetSend {
                                src_node: 1,
                                dst_node: 0,
                                bytes: 690 + CTRL_BYTES,
                                dst: self.iod,
                                payload: Box::new(IodWrite {
                                    file: 3,
                                    offset: 0,
                                    len: 690,
                                    sync: false,
                                    reply: me,
                                    reply_node: 1,
                                    token: 5,
                                    forward_to: None,
                                    forward_sync: false,
                                }),
                            }),
                        );
                    }
                    Ev::User(env) => {
                        let r: IodWriteResp = env.expect();
                        assert_eq!(r.token, 5);
                        assert_eq!(r.len, 690);
                        *self.done.borrow_mut() = true;
                    }
                    _ => {}
                }
            }
        }
        let done = Rc::new(RefCell::new(false));
        let w = eng.add(W {
            net: c.net,
            iod,
            done: done.clone(),
        });
        eng.schedule(SimTime::ZERO, w, Ev::Timer(0));
        eng.run();
        assert!(*done.borrow());
        assert_eq!(eng.component::<Iod>(iod).stats().3, 690);
    }

    /// Requester that records the corrupt-stripe list of each response.
    struct CorruptProbe {
        net: CompId,
        iod: CompId,
        reads: Vec<(u64, u64, u64)>, // (file, offset, len), one per Timer
        sent: usize,
        got: Rc<RefCell<Vec<Vec<u64>>>>,
    }

    impl Component<Ev> for CorruptProbe {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Timer(_) => {
                    let Some(&(file, offset, len)) = self.reads.get(self.sent) else {
                        return;
                    };
                    self.sent += 1;
                    let me = ctx.self_id();
                    ctx.send(
                        self.net,
                        Ev::Net(NetSend {
                            src_node: 1,
                            dst_node: 0,
                            bytes: CTRL_BYTES,
                            dst: self.iod,
                            payload: Box::new(IodRead {
                                file,
                                offset,
                                len,
                                reply: me,
                                reply_node: 1,
                                token: self.sent as u64,
                            }),
                        }),
                    );
                }
                Ev::User(env) => {
                    let r: IodReadResp = env.expect();
                    self.got.borrow_mut().push(r.corrupt);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn corrupt_stripe_flags_reads_until_fully_overwritten() {
        const UNIT: u64 = 64 << 10;
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let iod = eng.add(Iod::new("iod0", 0, c.nodes[0].fs, c.net));
        let got = Rc::new(RefCell::new(vec![]));
        // Same 4-stripe read before and after the repair write.
        let probe = eng.add(CorruptProbe {
            net: c.net,
            iod,
            reads: vec![(7, 0, 4 * UNIT), (7, 0, 4 * UNIT)],
            sent: 0,
            got: got.clone(),
        });
        eng.schedule(
            SimTime::ZERO,
            iod,
            Ev::Fault(FaultCmd::CorruptStripe { file: 7, stripe: 2 }),
        );
        eng.schedule(SimTime::from_secs(1), probe, Ev::Timer(0));
        // A write fully covering stripe 2 recomputes its checksum.
        let w = eng.add(W0 { net: c.net, iod });
        eng.schedule(SimTime::from_secs(10), w, Ev::Timer(0));
        eng.schedule(SimTime::from_secs(20), probe, Ev::Timer(0));
        eng.run();
        let v = got.borrow();
        assert_eq!(v.len(), 2, "both reads must answer");
        assert_eq!(v[0], vec![2], "first read must flag the bad stripe");
        assert!(v[1].is_empty(), "overwrite must clear the flag: {:?}", v[1]);

        struct W0 {
            net: CompId,
            iod: CompId,
        }
        impl Component<Ev> for W0 {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                if let Ev::Timer(_) = ev {
                    let me = ctx.self_id();
                    ctx.send(
                        self.net,
                        Ev::Net(NetSend {
                            src_node: 1,
                            dst_node: 0,
                            bytes: UNIT + CTRL_BYTES,
                            dst: self.iod,
                            payload: Box::new(IodWrite {
                                file: 7,
                                offset: 2 * UNIT,
                                len: UNIT,
                                sync: false,
                                reply: me,
                                reply_node: 1,
                                token: 99,
                                forward_to: None,
                                forward_sync: false,
                            }),
                        }),
                    );
                }
            }
        }
    }

    #[test]
    fn partial_overwrite_does_not_clear_the_flag() {
        // A write covering only half of the corrupt stripe cannot restore
        // its checksum: the flag must survive.
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let mut iod = Iod::new("iod0", 0, c.nodes[0].fs, c.net);
        iod.corrupt.insert((3, 1));
        assert_eq!(iod.corrupt_stripes(), vec![(3, 1)]);
        iod.clear_overwritten(3, 64 << 10, 32 << 10);
        assert_eq!(iod.corrupt_stripes(), vec![(3, 1)], "partial overwrite");
        iod.clear_overwritten(3, 64 << 10, 64 << 10);
        assert!(iod.corrupt_stripes().is_empty(), "full overwrite heals");
    }

    #[test]
    fn crash_marks_in_flight_write_stripes_torn() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let iod = eng.add(Iod::new("iod0", 0, c.nodes[0].fs, c.net));
        struct W {
            net: CompId,
            iod: CompId,
        }
        impl Component<Ev> for W {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                if let Ev::Timer(_) = ev {
                    let me = ctx.self_id();
                    ctx.send(
                        self.net,
                        Ev::Net(NetSend {
                            src_node: 1,
                            dst_node: 0,
                            bytes: 4 * MIB + CTRL_BYTES,
                            dst: self.iod,
                            payload: Box::new(IodWrite {
                                file: 9,
                                offset: 0,
                                len: 4 * MIB,
                                sync: true,
                                reply: me,
                                reply_node: 1,
                                token: 1,
                                forward_to: None,
                                forward_sync: false,
                            }),
                        }),
                    );
                }
            }
        }
        let w = eng.add(W { net: c.net, iod });
        eng.schedule(SimTime::ZERO, w, Ev::Timer(0));
        // Power fails while the 4 MiB sync write is on the platter (it
        // arrives after ~35 ms of wire time and takes ~135 ms of disk
        // service): every stripe it spanned is torn.
        eng.schedule(
            SimTime::from_nanos(100_000_000),
            iod,
            Ev::Fault(FaultCmd::Reset),
        );
        eng.run();
        let torn = eng.component::<Iod>(iod).corrupt_stripes();
        assert_eq!(torn.len(), (4 * MIB / (64 << 10)) as usize);
        assert!(torn.iter().all(|&(f, _)| f == 9));
    }
}
