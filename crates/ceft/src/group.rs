//! Mirrored (RAID-10) layout re-exported from the real `parblast-pio`
//! library, so the simulator and the on-disk implementation share one
//! source of truth for the dual-half read schedule and skip substitution.

pub use parblast_pio::layout::{MirroredLayout, ReadPart};
