//! Per-server load monitor.
//!
//! Samples the node disk's busy-time gauge every heartbeat interval (the
//! simulated analogue of reading `/proc/diskstats`), converts the delta to
//! a utilization figure, and reports it to the CEFT metadata server.

use std::cell::Cell;
use std::rc::Rc;

use parblast_hwsim::{DiskGauge, Ev, FaultCmd, NetSend};
use parblast_pvfs::CTRL_BYTES;
use parblast_simcore::{CompId, Component, Ctx, SimTime};

use crate::msg::{LoadReport, ServerId};

/// Heartbeat load monitor component (one per data-server node).
pub struct LoadMonitor {
    server: ServerId,
    node: u32,
    net: CompId,
    meta: (u32, CompId),
    gauge: Rc<Cell<DiskGauge>>,
    interval: SimTime,
    last_busy_ns: u64,
    last_sample: SimTime,
    reports: u64,
    last_utilization: f64,
    name: String,
}

impl LoadMonitor {
    /// New monitor for `server` living on cluster node `node`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        server: ServerId,
        node: u32,
        net: CompId,
        meta: (u32, CompId),
        gauge: Rc<Cell<DiskGauge>>,
        interval: SimTime,
    ) -> Self {
        LoadMonitor {
            server,
            node,
            net,
            meta,
            gauge,
            interval,
            last_busy_ns: 0,
            last_sample: SimTime::ZERO,
            reports: 0,
            last_utilization: 0.0,
            name: name.into(),
        }
    }

    /// Reports sent.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Most recent utilization sample.
    pub fn last_utilization(&self) -> f64 {
        self.last_utilization
    }
}

impl Component<Ev> for LoadMonitor {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        if let Ev::Fault(FaultCmd::Reset) = ev {
            // Revived after a crash: the heartbeat timer pending at crash
            // time was dropped while the component was disabled, so
            // resample the gauge baseline and re-arm it. The metadata
            // server marks this server alive again on the next report.
            let g = self.gauge.get();
            self.last_busy_ns = g.busy_ns;
            self.last_sample = ctx.now();
            ctx.wake_in(self.interval, Ev::Timer(0));
            return;
        }
        let Ev::Timer(_) = ev else {
            return;
        };
        let now = ctx.now();
        let span = now.saturating_sub(self.last_sample).as_secs_f64();
        let g = self.gauge.get();
        if span > 0.0 {
            let busy = (g.busy_ns.saturating_sub(self.last_busy_ns)) as f64 / 1e9;
            // busy_ns is charged at service *start*, so a long request can
            // make the windowed figure exceed 1; clamp.
            self.last_utilization = (busy / span).min(1.0);
            self.reports += 1;
            ctx.send(
                self.net,
                Ev::Net(NetSend {
                    src_node: self.node,
                    dst_node: self.meta.0,
                    bytes: CTRL_BYTES,
                    dst: self.meta.1,
                    payload: Box::new(LoadReport {
                        server: self.server,
                        utilization: self.last_utilization,
                    }),
                }),
            );
        }
        self.last_busy_ns = g.busy_ns;
        self.last_sample = now;
        ctx.wake_in(self.interval, Ev::Timer(0));
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_hwsim::{start_stressor, Cluster, Disk, DiskStressor, HwParams, StressorConfig};
    use parblast_simcore::Engine;
    use std::cell::RefCell;

    struct MetaStub {
        got: Rc<RefCell<Vec<LoadReport>>>,
    }
    impl Component<Ev> for MetaStub {
        fn on_event(&mut self, _ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            if let Ev::User(env) = ev {
                self.got.borrow_mut().push(env.expect::<LoadReport>());
            }
        }
    }

    #[test]
    fn stressed_disk_reports_high_utilization() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let got = Rc::new(RefCell::new(vec![]));
        let meta = eng.add(MetaStub { got: got.clone() });
        let gauge = eng.component::<Disk>(c.nodes[0].disk).gauge();
        let mon = eng.add(LoadMonitor::new(
            "mon0",
            ServerId { group: 0, index: 0 },
            0,
            c.net,
            (1, meta),
            gauge,
            SimTime::from_secs(1),
        ));
        let st = eng.add(DiskStressor::new(
            "stress",
            c.nodes[0].fs,
            StressorConfig {
                stop: SimTime::from_secs(20),
                ..StressorConfig::default()
            },
        ));
        eng.schedule(SimTime::ZERO, mon, Ev::Timer(0));
        start_stressor(&mut eng, st, SimTime::ZERO);
        eng.run_until(SimTime::from_secs(10));
        let v = got.borrow();
        assert!(v.len() >= 8, "got {} reports", v.len());
        let mean: f64 = v.iter().map(|r| r.utilization).sum::<f64>() / v.len() as f64;
        assert!(mean > 0.9, "mean utilization = {mean}");
    }

    #[test]
    fn idle_disk_reports_low_utilization() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let got = Rc::new(RefCell::new(vec![]));
        let meta = eng.add(MetaStub { got: got.clone() });
        let gauge = eng.component::<Disk>(c.nodes[0].disk).gauge();
        let mon = eng.add(LoadMonitor::new(
            "mon0",
            ServerId { group: 0, index: 0 },
            0,
            c.net,
            (1, meta),
            gauge,
            SimTime::from_secs(1),
        ));
        eng.schedule(SimTime::ZERO, mon, Ev::Timer(0));
        eng.run_until(SimTime::from_secs(5));
        let v = got.borrow();
        assert!(!v.is_empty());
        assert!(v.iter().all(|r| r.utilization < 0.01));
    }
}
