//! CEFT-PVFS client.
//!
//! Same application-facing interface as the PVFS client
//! ([`parblast_pvfs::ClientReq`]/[`ClientResp`]) so that the simulated
//! parallel BLAST can swap file systems without changing its own logic.
//! Differences from PVFS:
//!
//! * **Reads** follow the dual-half schedule: half of each request from the
//!   primary group, half from the mirror group (doubling parallelism), with
//!   hot servers replaced by their mirror partners per the skip set pushed
//!   by the metadata server.
//! * **Writes** are duplexed to both groups (the client-driven duplex
//!   protocol of the CEFT papers) and complete when both replicas ack.

use std::collections::HashMap;

use parblast_hwsim::{Envelope, Ev, NetSend};
use parblast_pvfs::{
    ClientReq, ClientResp, IodRead, IodReadResp, IodWrite, IodWriteResp, CTRL_BYTES,
};
use parblast_simcore::{CompId, Component, Ctx, SimTime, Summary};

use crate::group::MirroredLayout;
use crate::msg::{CeftOpen, CeftOpenResp, ServerId, SkipUpdate};

/// CEFT duplex write protocols (the four protocols studied in the
/// companion write-performance paper, ref. [7]; we implement three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProtocol {
    /// Client sends the data to both groups and waits for both acks
    /// (maximum reliability, doubles the client's outbound traffic).
    ClientDuplex,
    /// Client writes the primary only; the primary forwards to the mirror
    /// and acks the client only after the mirror acks (server duplex,
    /// halves client traffic at the cost of serialized hops).
    ServerSync,
    /// Client writes the primary only; the primary acks immediately and
    /// mirrors in the background (fastest, a crash window before the
    /// mirror is consistent).
    ServerAsync,
}

/// How the client schedules reads over the two groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// First half from one group, second half from the other — all 2N
    /// servers participate (the paper's design, [6]).
    DualHalf,
    /// Naive mirroring: read everything from the primary group (the
    /// ablation baseline the dual-half design was measured against).
    PrimaryOnly,
}

#[derive(Debug, Clone)]
struct FileEntry {
    layout: MirroredLayout,
    #[allow(dead_code)]
    size: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
}

#[derive(Debug)]
struct PendingOp {
    kind: OpKind,
    remaining: u32,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
    len: u64,
}

#[derive(Debug)]
struct PendingOpen {
    file: u64,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
}

/// CEFT client component.
pub struct CeftClient {
    node: u32,
    net: CompId,
    meta: (u32, CompId),
    /// `groups[g][i]` = (node, iod component) of server `i` in group `g`.
    groups: [Vec<(u32, CompId)>; 2],
    files: HashMap<u64, FileEntry>,
    skips: Vec<ServerId>,
    opens: HashMap<u64, PendingOpen>,
    ops: HashMap<u64, PendingOp>,
    part_to_op: HashMap<u64, u64>,
    next_op: u64,
    /// Read scheduling mode (dual-half vs primary-only ablation).
    pub read_mode: ReadMode,
    /// Duplex write protocol.
    pub write_protocol: WriteProtocol,
    /// Alternates which group serves the first half of successive reads.
    flip: bool,
    read_latency: Summary,
    bytes_read: u64,
    bytes_written: u64,
    skipped_parts: u64,
    name: String,
}

impl CeftClient {
    /// New client on `node` with the two server groups (layout order).
    pub fn new(
        name: impl Into<String>,
        node: u32,
        net: CompId,
        meta: (u32, CompId),
        primary: Vec<(u32, CompId)>,
        mirror: Vec<(u32, CompId)>,
    ) -> Self {
        assert_eq!(primary.len(), mirror.len(), "groups must be equal-sized");
        CeftClient {
            node,
            net,
            meta,
            groups: [primary, mirror],
            files: HashMap::new(),
            skips: Vec::new(),
            opens: HashMap::new(),
            ops: HashMap::new(),
            part_to_op: HashMap::new(),
            next_op: 1,
            read_mode: ReadMode::DualHalf,
            write_protocol: WriteProtocol::ClientDuplex,
            flip: false,
            read_latency: Summary::new(),
            bytes_read: 0,
            bytes_written: 0,
            skipped_parts: 0,
            name: name.into(),
        }
    }

    /// `(bytes read, bytes written)` through this client.
    pub fn bytes(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// Per-read latency summary.
    pub fn read_latency(&self) -> &Summary {
        &self.read_latency
    }

    /// Parts redirected away from hot servers.
    pub fn skipped_parts(&self) -> u64 {
        self.skipped_parts
    }

    /// Current skip set as seen by this client.
    pub fn skips(&self) -> &[ServerId] {
        &self.skips
    }

    fn addr(&self, s: ServerId) -> (u32, CompId) {
        self.groups[s.group as usize][s.index as usize]
    }

    fn send_net(
        &self,
        ctx: &mut Ctx<'_, Ev>,
        dst: (u32, CompId),
        bytes: u64,
        payload: Box<dyn std::any::Any>,
    ) {
        ctx.send(
            self.net,
            Ev::Net(NetSend {
                src_node: self.node,
                dst_node: dst.0,
                bytes,
                dst: dst.1,
                payload,
            }),
        );
    }

    fn handle_req(&mut self, ctx: &mut Ctx<'_, Ev>, req: ClientReq) {
        match req {
            ClientReq::Open {
                file,
                reply_to,
                tag,
            } => {
                let token = ctx.fresh_token();
                self.opens.insert(
                    token,
                    PendingOpen {
                        file,
                        reply_to,
                        tag,
                        started: ctx.now(),
                    },
                );
                let me = ctx.self_id();
                let node = self.node;
                let meta = self.meta;
                self.send_net(
                    ctx,
                    meta,
                    CTRL_BYTES,
                    Box::new(CeftOpen {
                        file,
                        reply: me,
                        reply_node: node,
                        token,
                    }),
                );
            }
            ClientReq::Read {
                file,
                offset,
                len,
                reply_to,
                tag,
            } => {
                let entry = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("read of unopened file {file}"))
                    .clone();
                let first_group = u8::from(self.flip);
                self.flip = !self.flip;
                let parts = match self.read_mode {
                    ReadMode::DualHalf => {
                        entry.layout.plan_read(offset, len, first_group, &self.skips)
                    }
                    ReadMode::PrimaryOnly => {
                        entry.layout.plan_single_group(offset, len, 0, &self.skips)
                    }
                };
                if parts.is_empty() {
                    ctx.send(
                        reply_to,
                        Ev::User(Envelope::local(ClientResp::ReadDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Read,
                        remaining: parts.len() as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len,
                    },
                );
                let me = ctx.self_id();
                let node = self.node;
                for p in parts {
                    if p.redirected {
                        self.skipped_parts += 1;
                    }
                    let token = ctx.fresh_token();
                    self.part_to_op.insert(token, op);
                    let dst = self.addr(p.server);
                    self.send_net(
                        ctx,
                        dst,
                        CTRL_BYTES,
                        Box::new(IodRead {
                            file,
                            offset: p.local_offset,
                            len: p.len,
                            reply: me,
                            reply_node: node,
                            token,
                        }),
                    );
                }
            }
            ClientReq::Write {
                file,
                offset,
                len,
                reply_to,
                tag,
            } => {
                let entry = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("write of unopened file {file}"))
                    .clone();
                // The extent reaches both groups in full; how depends on
                // the duplex protocol.
                let mut parts = entry.layout.plan_single_group(offset, len, 0, &[]);
                if self.write_protocol == WriteProtocol::ClientDuplex {
                    parts.extend(entry.layout.plan_single_group(offset, len, 1, &[]));
                }
                if parts.is_empty() {
                    ctx.send(
                        reply_to,
                        Ev::User(Envelope::local(ClientResp::WriteDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Write,
                        remaining: parts.len() as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len,
                    },
                );
                let me = ctx.self_id();
                let node = self.node;
                for p in parts {
                    let token = ctx.fresh_token();
                    self.part_to_op.insert(token, op);
                    let dst = self.addr(p.server);
                    // Server-forwarding protocols hand the mirror hop to
                    // the primary iod.
                    let forward_to = match self.write_protocol {
                        WriteProtocol::ClientDuplex => None,
                        _ => Some(self.addr(entry.layout.partner(p.server))),
                    };
                    let forward_sync =
                        self.write_protocol == WriteProtocol::ServerSync;
                    self.send_net(
                        ctx,
                        dst,
                        p.len + CTRL_BYTES,
                        Box::new(IodWrite {
                            file,
                            offset: p.local_offset,
                            len: p.len,
                            sync: false,
                            reply: me,
                            reply_node: node,
                            token,
                            forward_to,
                            forward_sync,
                        }),
                    );
                }
            }
        }
    }

    fn part_done(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64) {
        let Some(op_id) = self.part_to_op.remove(&token) else {
            debug_assert!(false, "unknown part token");
            return;
        };
        let op = self.ops.get_mut(&op_id).expect("op for part");
        op.remaining -= 1;
        if op.remaining > 0 {
            return;
        }
        let op = self.ops.remove(&op_id).unwrap();
        let latency = ctx.now().saturating_sub(op.started);
        let resp = match op.kind {
            OpKind::Read => {
                self.bytes_read += op.len;
                self.read_latency.record(latency.as_secs_f64());
                ClientResp::ReadDone {
                    tag: op.tag,
                    latency,
                    len: op.len,
                }
            }
            OpKind::Write => {
                self.bytes_written += op.len;
                ClientResp::WriteDone {
                    tag: op.tag,
                    latency,
                    len: op.len,
                }
            }
        };
        ctx.send(op.reply_to, Ev::User(Envelope::local(resp)));
    }
}

impl Component<Ev> for CeftClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let Ev::User(env) = ev else {
            return;
        };
        match env.payload.downcast::<ClientReq>() {
            Ok(req) => self.handle_req(ctx, *req),
            Err(other) => match other.downcast::<CeftOpenResp>() {
                Ok(resp) => {
                    let resp = *resp;
                    let Some(open) = self.opens.remove(&resp.token) else {
                        debug_assert!(false, "unknown open token");
                        return;
                    };
                    self.files.insert(
                        open.file,
                        FileEntry {
                            layout: resp.layout,
                            size: resp.size,
                        },
                    );
                    self.skips = resp.skips;
                    let latency = ctx.now().saturating_sub(open.started);
                    ctx.send(
                        open.reply_to,
                        Ev::User(Envelope::local(ClientResp::OpenDone {
                            tag: open.tag,
                            latency,
                        })),
                    );
                }
                Err(other) => match other.downcast::<SkipUpdate>() {
                    Ok(u) => {
                        self.skips = u.skips;
                    }
                    Err(other) => match other.downcast::<IodReadResp>() {
                        Ok(r) => self.part_done(ctx, r.token),
                        Err(other) => match other.downcast::<IodWriteResp>() {
                            Ok(w) => self.part_done(ctx, w.token),
                            Err(_) => debug_assert!(false, "ceft client got unknown message"),
                        },
                    },
                },
            },
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}
