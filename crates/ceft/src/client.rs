//! CEFT-PVFS client.
//!
//! Same application-facing interface as the PVFS client
//! ([`parblast_pvfs::ClientReq`]/[`ClientResp`]) so that the simulated
//! parallel BLAST can swap file systems without changing its own logic.
//! Differences from PVFS:
//!
//! * **Reads** follow the dual-half schedule: half of each request from the
//!   primary group, half from the mirror group (doubling parallelism), with
//!   hot servers replaced by their mirror partners per the skip set pushed
//!   by the metadata server.
//! * **Writes** are duplexed to both groups (the client-driven duplex
//!   protocol of the CEFT papers) and complete when both replicas ack.

use std::collections::HashMap;

use parblast_hwsim::{Envelope, Ev, NetSend};
use parblast_pvfs::retry::{backoff_delay, RetryPolicy};
use parblast_pvfs::{
    list_req_wire_bytes, validate_regions, ClientReq, ClientResp, IoError, IodRead, IodReadList,
    IodReadListResp, IodReadResp, IodWrite, IodWriteResp, Region, CTRL_BYTES,
};
use parblast_simcore::{CompId, Component, Ctx, LogHistogram, SimTime, Summary};

use crate::group::MirroredLayout;
use crate::msg::{CeftOpen, CeftOpenResp, ServerId, SkipUpdate};

/// CEFT duplex write protocols (the four protocols studied in the
/// companion write-performance paper, ref. [7]; we implement three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProtocol {
    /// Client sends the data to both groups and waits for both acks
    /// (maximum reliability, doubles the client's outbound traffic).
    ClientDuplex,
    /// Client writes the primary only; the primary forwards to the mirror
    /// and acks the client only after the mirror acks (server duplex,
    /// halves client traffic at the cost of serialized hops).
    ServerSync,
    /// Client writes the primary only; the primary acks immediately and
    /// mirrors in the background (fastest, a crash window before the
    /// mirror is consistent).
    ServerAsync,
}

/// How the client schedules reads over the two groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// First half from one group, second half from the other — all 2N
    /// servers participate (the paper's design, [6]).
    DualHalf,
    /// Naive mirroring: read everything from the primary group (the
    /// ablation baseline the dual-half design was measured against).
    PrimaryOnly,
}

#[derive(Debug, Clone)]
struct FileEntry {
    layout: MirroredLayout,
    #[allow(dead_code)]
    size: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
}

#[derive(Debug)]
struct PendingOp {
    kind: OpKind,
    remaining: u32,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
    len: u64,
}

#[derive(Debug)]
struct PendingOpen {
    file: u64,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
    attempts: u32,
}

/// One in-flight per-server request. A timed-out *read* is re-sent to the
/// server's mirror partner (the replica holds identical data), which is
/// what lets CEFT survive a crashed server; writes retry the same server.
/// The token is reused across attempts: first answer wins.
#[derive(Debug, Clone)]
struct PartState {
    op: u64,
    server: ServerId,
    file: u64,
    offset: u64,
    len: u64,
    kind: OpKind,
    forward_to: Option<(u32, CompId)>,
    forward_sync: bool,
    attempts: u32,
    /// This read already failed over once because of a checksum mismatch;
    /// a second mismatch means both replicas are corrupt and the operation
    /// fails with [`IoError::Corrupt`].
    corrupt_failover: bool,
    /// Stripes that failed verification on the original server, queued for
    /// rewrite once (and only once) the partner's copy verifies clean.
    repair: Vec<u64>,
}

/// One in-flight aggregated list request to a single server. Batches
/// stream back in order; on a timeout the client fails over to the mirror
/// partner and re-sends **only the unserved tail** (`regions[served..]`),
/// so regions already delivered are never refetched. The retry budget is
/// spent per list request, not per region.
#[derive(Debug, Clone)]
struct ListPartState {
    op: u64,
    server: ServerId,
    file: u64,
    /// Full per-server region list, in server-local coordinates.
    regions: Vec<Region>,
    /// Regions received and accepted so far.
    served: usize,
    attempts: u32,
    /// A batch already failed verification and the tail moved to the
    /// partner; a second mismatch means both replicas are corrupt.
    corrupt_failover: bool,
    /// Stripes queued for rewrite once the partner's bytes verify clean.
    repair: Vec<u64>,
    /// Earliest time a pending timeout may fire; accepted batches push it
    /// out (progress resets the clock).
    deadline: SimTime,
}

fn partner_of(s: ServerId) -> ServerId {
    ServerId {
        group: 1 - s.group,
        index: s.index,
    }
}

/// Split a sorted region list at its byte midpoint (cutting a region in
/// two if the midpoint lands inside it), for the dual-half schedule: the
/// first portion reads from one group, the rest from the other. A
/// single-region list degenerates to the contiguous dual-half plan.
fn split_at_midpoint(regions: &[Region]) -> (Vec<Region>, Vec<Region>) {
    let total: u64 = regions.iter().map(|r| r.len).sum();
    let half = total / 2;
    let (mut first, mut second) = (Vec::new(), Vec::new());
    let mut acc = 0u64;
    for r in regions {
        if acc >= half {
            second.push(*r);
        } else if acc + r.len <= half {
            first.push(*r);
        } else {
            let cut = half - acc;
            first.push(Region::new(r.offset, cut));
            second.push(Region::new(r.offset + cut, r.len - cut));
        }
        acc += r.len;
    }
    (first, second)
}

/// CEFT client component.
pub struct CeftClient {
    node: u32,
    net: CompId,
    meta: (u32, CompId),
    /// `groups[g][i]` = (node, iod component) of server `i` in group `g`.
    groups: [Vec<(u32, CompId)>; 2],
    files: HashMap<u64, FileEntry>,
    skips: Vec<ServerId>,
    dead: Vec<ServerId>,
    opens: HashMap<u64, PendingOpen>,
    ops: HashMap<u64, PendingOp>,
    parts: HashMap<u64, PartState>,
    list_parts: HashMap<u64, ListPartState>,
    next_op: u64,
    retry: RetryPolicy,
    retries: u64,
    failovers: u64,
    failures: u64,
    repaired: u64,
    /// Read scheduling mode (dual-half vs primary-only ablation).
    pub read_mode: ReadMode,
    /// Duplex write protocol.
    pub write_protocol: WriteProtocol,
    /// Alternates which group serves the first half of successive reads.
    flip: bool,
    read_latency: Summary,
    read_hist: LogHistogram,
    bytes_read: u64,
    bytes_written: u64,
    skipped_parts: u64,
    name: String,
}

impl CeftClient {
    /// New client on `node` with the two server groups (layout order).
    pub fn new(
        name: impl Into<String>,
        node: u32,
        net: CompId,
        meta: (u32, CompId),
        primary: Vec<(u32, CompId)>,
        mirror: Vec<(u32, CompId)>,
    ) -> Self {
        assert_eq!(primary.len(), mirror.len(), "groups must be equal-sized");
        CeftClient {
            node,
            net,
            meta,
            groups: [primary, mirror],
            files: HashMap::new(),
            skips: Vec::new(),
            dead: Vec::new(),
            opens: HashMap::new(),
            ops: HashMap::new(),
            parts: HashMap::new(),
            list_parts: HashMap::new(),
            next_op: 1,
            retry: RetryPolicy::disabled(),
            retries: 0,
            failovers: 0,
            failures: 0,
            repaired: 0,
            read_mode: ReadMode::DualHalf,
            write_protocol: WriteProtocol::ClientDuplex,
            flip: false,
            read_latency: Summary::new(),
            read_hist: LogHistogram::new(),
            bytes_read: 0,
            bytes_written: 0,
            skipped_parts: 0,
            name: name.into(),
        }
    }

    /// `(bytes read, bytes written)` through this client.
    pub fn bytes(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// Per-read latency summary.
    pub fn read_latency(&self) -> &Summary {
        &self.read_latency
    }

    /// Per-read latency distribution in microseconds, for tail
    /// percentiles (foreground p95 under rebuild, §12 of DESIGN.md).
    pub fn read_latency_hist(&self) -> &LogHistogram {
        &self.read_hist
    }

    /// Parts redirected away from hot servers.
    pub fn skipped_parts(&self) -> u64 {
        self.skipped_parts
    }

    /// Current skip set as seen by this client.
    pub fn skips(&self) -> &[ServerId] {
        &self.skips
    }

    /// Servers this client currently believes dead.
    pub fn dead(&self) -> &[ServerId] {
        &self.dead
    }

    /// Enable (or change) the request timeout/retry policy.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Requests re-sent after a timeout.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Timed-out reads re-routed to the mirror partner.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Operations that failed with [`ClientResp::Error`].
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Corrupt stripes rewritten from the mirror partner's good copy
    /// (read-repair).
    pub fn repaired_stripes(&self) -> u64 {
        self.repaired
    }

    /// Servers to avoid when planning reads: pushed skips plus servers
    /// presumed dead.
    fn avoid(&self) -> Vec<ServerId> {
        let mut v = self.skips.clone();
        for &d in &self.dead {
            if !v.contains(&d) {
                v.push(d);
            }
        }
        v
    }

    fn addr(&self, s: ServerId) -> (u32, CompId) {
        self.groups[s.group as usize][s.index as usize]
    }

    fn send_net(
        &self,
        ctx: &mut Ctx<'_, Ev>,
        dst: (u32, CompId),
        bytes: u64,
        payload: Box<dyn std::any::Any>,
    ) {
        ctx.send(
            self.net,
            Ev::Net(NetSend {
                src_node: self.node,
                dst_node: dst.0,
                bytes,
                dst: dst.1,
                payload,
            }),
        );
    }

    /// (Re-)send one per-server request after `delay`, arming its timeout.
    fn send_part(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64, state: &PartState, delay: SimTime) {
        let me = ctx.self_id();
        let node = self.node;
        let dst = self.addr(state.server);
        let (bytes, payload): (u64, Box<dyn std::any::Any>) = match state.kind {
            OpKind::Read => (
                CTRL_BYTES,
                Box::new(IodRead {
                    file: state.file,
                    offset: state.offset,
                    len: state.len,
                    reply: me,
                    reply_node: node,
                    token,
                }),
            ),
            OpKind::Write => (
                state.len + CTRL_BYTES,
                Box::new(IodWrite {
                    file: state.file,
                    offset: state.offset,
                    len: state.len,
                    sync: false,
                    reply: me,
                    reply_node: node,
                    token,
                    forward_to: state.forward_to,
                    forward_sync: state.forward_sync,
                }),
            ),
        };
        ctx.schedule_in(
            delay,
            self.net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: dst.0,
                bytes,
                dst: dst.1,
                payload,
            }),
        );
        if self.retry.enabled() {
            ctx.wake_in(delay + self.retry.timeout, Ev::Timer(token));
        }
    }

    /// (Re-)send the unserved tail of one per-server list request after
    /// `delay`, arming (or pushing out) its timeout.
    fn send_list_part(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        token: u64,
        state: &ListPartState,
        delay: SimTime,
    ) {
        let me = ctx.self_id();
        let node = self.node;
        let dst = self.addr(state.server);
        let tail = state.regions[state.served..].to_vec();
        let bytes = list_req_wire_bytes(tail.len());
        ctx.schedule_in(
            delay,
            self.net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: dst.0,
                bytes,
                dst: dst.1,
                payload: Box::new(IodReadList {
                    file: state.file,
                    first: state.served as u64,
                    regions: tail,
                    reply: me,
                    reply_node: node,
                    token,
                }),
            }),
        );
        if self.retry.enabled() {
            ctx.wake_in(delay + self.retry.timeout, Ev::Timer(token));
        }
    }

    /// Abandon a whole operation: a server (and, for reads, its partner
    /// too) exhausted the retry budget.
    fn fail_op(&mut self, ctx: &mut Ctx<'_, Ev>, op_id: u64, error: IoError) {
        let Some(op) = self.ops.remove(&op_id) else {
            return;
        };
        self.parts.retain(|_, s| s.op != op_id);
        self.list_parts.retain(|_, s| s.op != op_id);
        self.failures += 1;
        ctx.send(
            op.reply_to,
            Ev::User(Envelope::local(ClientResp::Error { tag: op.tag, error })),
        );
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64) {
        if let Some(mut state) = self.parts.remove(&token) {
            if state.attempts >= self.retry.max_retries {
                self.fail_op(ctx, state.op, IoError::DataServerTimeout);
                return;
            }
            if state.kind == OpKind::Read {
                // Fail over: the mirror partner holds an identical replica
                // of this range, so re-issue the read there. Alternates on
                // successive attempts (partner is an involution), covering
                // a transiently-slow partner as well.
                state.server = partner_of(state.server);
                self.failovers += 1;
            }
            let delay = backoff_delay(
                state.attempts,
                self.retry.base_backoff,
                self.retry.max_backoff,
            );
            state.attempts += 1;
            self.retries += 1;
            self.send_part(ctx, token, &state, delay);
            self.parts.insert(token, state);
            return;
        }
        if let Some(state) = self.list_parts.get_mut(&token) {
            if ctx.now() < state.deadline {
                // Stale timer: a batch arrived since it was armed and
                // pushed the real deadline out.
                return;
            }
            if state.attempts >= self.retry.max_retries {
                let op = state.op;
                self.fail_op(ctx, op, IoError::DataServerTimeout);
                return;
            }
            // Fail over to the mirror partner, re-requesting only the
            // unserved tail of the list: regions already streamed back
            // before the crash are kept.
            state.server = partner_of(state.server);
            self.failovers += 1;
            let delay = backoff_delay(
                state.attempts,
                self.retry.base_backoff,
                self.retry.max_backoff,
            );
            state.attempts += 1;
            self.retries += 1;
            let mut state = self.list_parts.remove(&token).unwrap();
            state.deadline = ctx
                .now()
                .saturating_add(delay)
                .saturating_add(self.retry.timeout);
            self.send_list_part(ctx, token, &state, delay);
            self.list_parts.insert(token, state);
            return;
        }
        if let Some(open) = self.opens.get_mut(&token) {
            if open.attempts >= self.retry.max_retries {
                let open = self.opens.remove(&token).unwrap();
                self.failures += 1;
                ctx.send(
                    open.reply_to,
                    Ev::User(Envelope::local(ClientResp::Error {
                        tag: open.tag,
                        error: IoError::MetaTimeout,
                    })),
                );
                return;
            }
            let delay = backoff_delay(
                open.attempts,
                self.retry.base_backoff,
                self.retry.max_backoff,
            );
            open.attempts += 1;
            self.retries += 1;
            let file = open.file;
            let me = ctx.self_id();
            let node = self.node;
            let meta = self.meta;
            ctx.schedule_in(
                delay,
                self.net,
                Ev::Net(NetSend {
                    src_node: node,
                    dst_node: meta.0,
                    bytes: CTRL_BYTES,
                    dst: meta.1,
                    payload: Box::new(CeftOpen {
                        file,
                        reply: me,
                        reply_node: node,
                        token,
                    }),
                }),
            );
            ctx.wake_in(delay + self.retry.timeout, Ev::Timer(token));
        }
        // Anything else: a stale timer for a part that already completed.
    }

    fn handle_req(&mut self, ctx: &mut Ctx<'_, Ev>, req: ClientReq) {
        match req {
            ClientReq::Open {
                file,
                reply_to,
                tag,
            } => {
                let token = ctx.fresh_token();
                self.opens.insert(
                    token,
                    PendingOpen {
                        file,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        attempts: 0,
                    },
                );
                let me = ctx.self_id();
                let node = self.node;
                let meta = self.meta;
                self.send_net(
                    ctx,
                    meta,
                    CTRL_BYTES,
                    Box::new(CeftOpen {
                        file,
                        reply: me,
                        reply_node: node,
                        token,
                    }),
                );
                if self.retry.enabled() {
                    ctx.wake_in(self.retry.timeout, Ev::Timer(token));
                }
            }
            ClientReq::Read {
                file,
                offset,
                len,
                reply_to,
                tag,
            } => {
                let entry = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("read of unopened file {file}"))
                    .clone();
                let first_group = u8::from(self.flip);
                self.flip = !self.flip;
                let avoid = self.avoid();
                let parts = match self.read_mode {
                    ReadMode::DualHalf => entry.layout.plan_read(offset, len, first_group, &avoid),
                    ReadMode::PrimaryOnly => entry.layout.plan_single_group(offset, len, 0, &avoid),
                };
                if parts.is_empty() {
                    ctx.send(
                        reply_to,
                        Ev::User(Envelope::local(ClientResp::ReadDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Read,
                        remaining: parts.len() as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len,
                    },
                );
                for p in parts {
                    if p.redirected {
                        self.skipped_parts += 1;
                    }
                    let token = ctx.fresh_token();
                    let state = PartState {
                        op,
                        server: p.server,
                        file,
                        offset: p.local_offset,
                        len: p.len,
                        kind: OpKind::Read,
                        forward_to: None,
                        forward_sync: false,
                        attempts: 0,
                        corrupt_failover: false,
                        repair: Vec::new(),
                    };
                    self.send_part(ctx, token, &state, SimTime::ZERO);
                    self.parts.insert(token, state);
                }
            }
            ClientReq::ReadList {
                file,
                regions,
                reply_to,
                tag,
            } => {
                if let Err(e) = validate_regions(&regions) {
                    panic!("ReadList with invalid region list: {e}");
                }
                let entry = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("read of unopened file {file}"))
                    .clone();
                let first_group = u8::from(self.flip);
                self.flip = !self.flip;
                let avoid = self.avoid();
                let total: u64 = regions.iter().map(|r| r.len).sum();
                // Dual-half over the whole list: split at the byte
                // midpoint, first portion from one group, rest from the
                // other (all 2N servers participate, like `plan_read`).
                let halves: [(Vec<Region>, u8); 2] = match self.read_mode {
                    ReadMode::DualHalf => {
                        let (a, b) = split_at_midpoint(&regions);
                        [(a, first_group), (b, 1 - first_group)]
                    }
                    ReadMode::PrimaryOnly => [(regions, 0), (Vec::new(), 0)],
                };
                // One aggregated request per involved physical server;
                // processing the halves in logical order keeps each
                // server's list sorted even under skip substitution.
                let n = entry.layout.group_size() as usize;
                let mut lists: Vec<Vec<Region>> = vec![Vec::new(); 2 * n];
                for (half, group) in &halves {
                    for lr in half {
                        for p in entry
                            .layout
                            .plan_single_group(lr.offset, lr.len, *group, &avoid)
                        {
                            if p.redirected {
                                self.skipped_parts += 1;
                            }
                            let lane = p.server.group as usize * n + p.server.index as usize;
                            lists[lane].push(Region::new(p.local_offset, p.len));
                        }
                    }
                }
                let involved = lists.iter().filter(|l| !l.is_empty()).count();
                if involved == 0 {
                    ctx.send(
                        reply_to,
                        Ev::User(Envelope::local(ClientResp::ReadDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Read,
                        remaining: involved as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len: total,
                    },
                );
                for (lane, list) in lists.into_iter().enumerate() {
                    if list.is_empty() {
                        continue;
                    }
                    debug_assert!(validate_regions(&list).is_ok());
                    let server = ServerId {
                        group: (lane / n) as u8,
                        index: (lane % n) as u32,
                    };
                    let token = ctx.fresh_token();
                    let state = ListPartState {
                        op,
                        server,
                        file,
                        regions: list,
                        served: 0,
                        attempts: 0,
                        corrupt_failover: false,
                        repair: Vec::new(),
                        deadline: ctx.now().saturating_add(self.retry.timeout),
                    };
                    self.send_list_part(ctx, token, &state, SimTime::ZERO);
                    self.list_parts.insert(token, state);
                }
            }
            ClientReq::Write {
                file,
                offset,
                len,
                reply_to,
                tag,
            } => {
                let entry = self
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("write of unopened file {file}"))
                    .clone();
                // The extent reaches both groups in full; how depends on
                // the duplex protocol.
                let mut parts = entry.layout.plan_single_group(offset, len, 0, &[]);
                if self.write_protocol == WriteProtocol::ClientDuplex {
                    parts.extend(entry.layout.plan_single_group(offset, len, 1, &[]));
                }
                if parts.is_empty() {
                    ctx.send(
                        reply_to,
                        Ev::User(Envelope::local(ClientResp::WriteDone {
                            tag,
                            latency: SimTime::ZERO,
                            len: 0,
                        })),
                    );
                    return;
                }
                let op = self.next_op;
                self.next_op += 1;
                self.ops.insert(
                    op,
                    PendingOp {
                        kind: OpKind::Write,
                        remaining: parts.len() as u32,
                        reply_to,
                        tag,
                        started: ctx.now(),
                        len,
                    },
                );
                for p in parts {
                    let token = ctx.fresh_token();
                    // Server-forwarding protocols hand the mirror hop to
                    // the primary iod.
                    let forward_to = match self.write_protocol {
                        WriteProtocol::ClientDuplex => None,
                        _ => Some(self.addr(entry.layout.partner(p.server))),
                    };
                    let forward_sync = self.write_protocol == WriteProtocol::ServerSync;
                    let state = PartState {
                        op,
                        server: p.server,
                        file,
                        offset: p.local_offset,
                        len: p.len,
                        kind: OpKind::Write,
                        forward_to,
                        forward_sync,
                        attempts: 0,
                        corrupt_failover: false,
                        repair: Vec::new(),
                    };
                    self.send_part(ctx, token, &state, SimTime::ZERO);
                    self.parts.insert(token, state);
                }
            }
        }
    }

    /// A read answered. Clean data completes the part; a checksum mismatch
    /// triggers read-repair: re-fetch the range from the mirror partner
    /// (which holds an identical replica) and rewrite the bad stripes with
    /// the partner's good bytes — all without spending any retry budget,
    /// since corruption is deterministic, not transient.
    fn on_read_resp(&mut self, ctx: &mut Ctx<'_, Ev>, r: IodReadResp) {
        if r.corrupt.is_empty() {
            self.flush_repairs(ctx, r.token);
            self.part_done(ctx, r.token);
            return;
        }
        // Unknown tokens: stragglers of failed/retried operations.
        let Some(mut state) = self.parts.remove(&r.token) else {
            return;
        };
        if state.corrupt_failover {
            // The partner's copy is corrupt too — nothing left to read.
            self.fail_op(ctx, state.op, IoError::Corrupt);
            return;
        }
        // Queue the bad stripes for rewrite and re-fetch the whole part
        // from the partner, immediately. The rewrite itself waits until the
        // partner's bytes verify clean: repairing first would blindly
        // clear the evidence when both replicas turn out to be corrupt.
        state.repair = r.corrupt;
        state.server = partner_of(state.server);
        state.corrupt_failover = true;
        self.failovers += 1;
        self.send_part(ctx, r.token, &state, SimTime::ZERO);
        self.parts.insert(r.token, state);
    }

    /// Accept one streamed batch of a list request: clean batches advance
    /// `served`; a corrupt batch is rejected and the tail (that batch
    /// included) moves to the mirror partner, with the bad stripes queued
    /// for read-repair — no retry budget spent, corruption is
    /// deterministic, not transient.
    fn on_list_resp(&mut self, ctx: &mut Ctx<'_, Ev>, r: IodReadListResp) {
        // Unknown tokens: stragglers of completed or failed operations.
        let Some(state) = self.list_parts.get_mut(&r.token) else {
            return;
        };
        if r.first != state.served as u64 {
            // Stale or duplicate batch from a superseded attempt.
            return;
        }
        if !r.corrupt.is_empty() {
            if state.corrupt_failover {
                // The partner's copy is corrupt too — nothing left to
                // read.
                let op = state.op;
                self.fail_op(ctx, op, IoError::Corrupt);
                return;
            }
            state.repair.extend(r.corrupt);
            state.server = partner_of(state.server);
            state.corrupt_failover = true;
            self.failovers += 1;
            let mut state = self.list_parts.remove(&r.token).unwrap();
            state.deadline = ctx.now().saturating_add(self.retry.timeout);
            self.send_list_part(ctx, r.token, &state, SimTime::ZERO);
            self.list_parts.insert(r.token, state);
            return;
        }
        state.served += r.count as usize;
        if state.served < state.regions.len() {
            // More batches are coming; progress pushes the timeout out.
            if self.retry.enabled() {
                state.deadline = ctx.now().saturating_add(self.retry.timeout);
                ctx.wake_in(self.retry.timeout, Ev::Timer(r.token));
            }
            return;
        }
        // List complete. Whatever served the final regions verified
        // clean, so flush any queued repairs against its copy.
        let mut state = self.list_parts.remove(&r.token).unwrap();
        let stripes = std::mem::take(&mut state.repair);
        self.send_repair_writes(ctx, state.file, state.server, stripes);
        self.finish_part_of(ctx, state.op);
    }

    /// The partner's copy verified clean: rewrite the stripes that failed
    /// verification on the original server with the good bytes. The acks
    /// come back with unregistered tokens and are dropped by `part_done`.
    fn flush_repairs(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64) {
        let Some((file, good_server, stripes)) = self
            .parts
            .get_mut(&token)
            .map(|state| (state.file, state.server, std::mem::take(&mut state.repair)))
        else {
            return;
        };
        self.send_repair_writes(ctx, file, good_server, stripes);
    }

    /// Rewrite `stripes` on `good_server`'s mirror partner with the good
    /// copy just fetched from `good_server`.
    fn send_repair_writes(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        file: u64,
        good_server: ServerId,
        stripes: Vec<u64>,
    ) {
        if stripes.is_empty() {
            return;
        }
        let stripe = self
            .files
            .get(&file)
            .map(|e| e.layout.stripe.stripe_size)
            .unwrap_or(64 << 10);
        let me = ctx.self_id();
        let dst = self.addr(partner_of(good_server));
        for s in stripes {
            let token = ctx.fresh_token();
            self.send_net(
                ctx,
                dst,
                stripe + CTRL_BYTES,
                Box::new(IodWrite {
                    file,
                    offset: s * stripe,
                    len: stripe,
                    sync: false,
                    reply: me,
                    reply_node: self.node,
                    token,
                    forward_to: None,
                    forward_sync: false,
                }),
            );
            self.repaired += 1;
        }
    }

    fn part_done(&mut self, ctx: &mut Ctx<'_, Ev>, token: u64) {
        // Unknown tokens are expected under retries: a duplicate answer to
        // a re-sent request, or a straggler of an operation that already
        // failed. Both are dropped.
        let Some(state) = self.parts.remove(&token) else {
            return;
        };
        self.finish_part_of(ctx, state.op);
    }

    /// One per-server part of `op_id` fully delivered; complete the
    /// operation when it was the last.
    fn finish_part_of(&mut self, ctx: &mut Ctx<'_, Ev>, op_id: u64) {
        let Some(op) = self.ops.get_mut(&op_id) else {
            return;
        };
        op.remaining -= 1;
        if op.remaining > 0 {
            return;
        }
        let op = self.ops.remove(&op_id).unwrap();
        let latency = ctx.now().saturating_sub(op.started);
        let resp = match op.kind {
            OpKind::Read => {
                self.bytes_read += op.len;
                self.read_latency.record(latency.as_secs_f64());
                self.read_hist.record((latency.as_secs_f64() * 1e6) as u64);
                ClientResp::ReadDone {
                    tag: op.tag,
                    latency,
                    len: op.len,
                }
            }
            OpKind::Write => {
                self.bytes_written += op.len;
                ClientResp::WriteDone {
                    tag: op.tag,
                    latency,
                    len: op.len,
                }
            }
        };
        ctx.send(op.reply_to, Ev::User(Envelope::local(resp)));
    }
}

impl Component<Ev> for CeftClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let env = match ev {
            Ev::User(env) => env,
            Ev::Timer(token) => {
                self.on_timeout(ctx, token);
                return;
            }
            _ => return,
        };
        match env.payload.downcast::<ClientReq>() {
            Ok(req) => self.handle_req(ctx, *req),
            Err(other) => match other.downcast::<CeftOpenResp>() {
                Ok(resp) => {
                    let resp = *resp;
                    // Unknown token: duplicate reply to a retried open.
                    let Some(open) = self.opens.remove(&resp.token) else {
                        return;
                    };
                    self.files.insert(
                        open.file,
                        FileEntry {
                            layout: resp.layout,
                            size: resp.size,
                        },
                    );
                    self.skips = resp.skips;
                    self.dead = resp.dead;
                    let latency = ctx.now().saturating_sub(open.started);
                    ctx.send(
                        open.reply_to,
                        Ev::User(Envelope::local(ClientResp::OpenDone {
                            tag: open.tag,
                            latency,
                        })),
                    );
                }
                Err(other) => match other.downcast::<SkipUpdate>() {
                    Ok(u) => {
                        self.skips = u.skips;
                        self.dead = u.dead;
                    }
                    Err(other) => match other.downcast::<IodReadResp>() {
                        Ok(r) => self.on_read_resp(ctx, *r),
                        Err(other) => match other.downcast::<IodReadListResp>() {
                            Ok(r) => self.on_list_resp(ctx, *r),
                            Err(other) => match other.downcast::<IodWriteResp>() {
                                Ok(w) => self.part_done(ctx, w.token),
                                Err(_) => debug_assert!(false, "ceft client got unknown message"),
                            },
                        },
                    },
                },
            },
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}
