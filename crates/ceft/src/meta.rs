//! CEFT-PVFS metadata server.
//!
//! Besides serving mirrored stripe layouts, the metadata server
//! "periodically collects the system resource utilization information from
//! all data servers and determines the I/O service schemes" (paper §3):
//! load monitors on the server nodes report disk utilization every
//! heartbeat; servers whose utilization crosses a threshold — while their
//! mirror partner stays cool — are put in the *skip set*, which is pushed
//! to every subscribed client.

use std::collections::HashMap;

use parblast_hwsim::{Ev, NetSend};
use parblast_pvfs::CTRL_BYTES;
use parblast_simcore::{CompId, Component, Ctx, FcfsStation, SimTime};

use crate::group::MirroredLayout;
use crate::msg::{CeftOpen, CeftOpenResp, LoadReport, ServerId, SkipUpdate};

/// Skip-policy knobs.
#[derive(Debug, Clone)]
pub struct SkipPolicy {
    /// A server is *hot* when its heartbeat utilization exceeds this.
    pub hot_threshold: f64,
    /// A hot server is only skipped while its partner is below this.
    pub partner_cool_threshold: f64,
    /// Consecutive hot heartbeats required before skipping (debounce).
    pub hot_count: u32,
    /// Consecutive cool heartbeats required before un-skipping.
    pub cool_count: u32,
}

impl Default for SkipPolicy {
    fn default() -> Self {
        SkipPolicy {
            hot_threshold: 0.85,
            partner_cool_threshold: 0.7,
            hot_count: 2,
            cool_count: 3,
        }
    }
}

#[derive(Debug, Clone)]
struct FileEntry {
    layout: MirroredLayout,
    size: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct ServerState {
    utilization: f64,
    hot_streak: u32,
    cool_streak: u32,
    skipped: bool,
    /// Missed enough heartbeats to be presumed crashed.
    dead: bool,
    /// When the last heartbeat arrived.
    last_report: SimTime,
}

/// CEFT metadata server component.
pub struct CeftMeta {
    node: u32,
    net: CompId,
    files: HashMap<u64, FileEntry>,
    station: FcfsStation,
    service: SimTime,
    policy: SkipPolicy,
    servers: HashMap<ServerId, ServerState>,
    clients: Vec<(u32, CompId)>,
    opens: u64,
    skip_changes: u64,
    /// Heartbeat interval; [`SimTime::ZERO`] disables dead-server sweeps.
    heartbeat: SimTime,
    name: String,
}

impl CeftMeta {
    /// New metadata server on `node`.
    pub fn new(
        name: impl Into<String>,
        node: u32,
        net: CompId,
        service: SimTime,
        policy: SkipPolicy,
    ) -> Self {
        CeftMeta {
            node,
            net,
            files: HashMap::new(),
            station: FcfsStation::new(SimTime::ZERO),
            service,
            policy,
            servers: HashMap::new(),
            clients: Vec::new(),
            opens: 0,
            skip_changes: 0,
            heartbeat: SimTime::ZERO,
            name: name.into(),
        }
    }

    /// Enable dead-server detection: a server that has been silent for
    /// 2.5 heartbeat intervals is presumed crashed. The deployer must also
    /// schedule an initial `Ev::Timer` at this component to start the
    /// sweep.
    pub fn set_heartbeat(&mut self, interval: SimTime) {
        self.heartbeat = interval;
    }

    /// Register a file (setup-time).
    pub fn register(&mut self, file: u64, layout: MirroredLayout, size: u64) {
        self.files.insert(file, FileEntry { layout, size });
    }

    /// Current skip set.
    pub fn skips(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|(_, s)| s.skipped)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Servers currently presumed dead.
    pub fn dead(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|(_, s)| s.dead)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Opens served.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Times the skip set changed.
    pub fn skip_changes(&self) -> u64 {
        self.skip_changes
    }

    fn push_skips(&mut self, ctx: &mut Ctx<'_, Ev>) {
        self.skip_changes += 1;
        let skips = self.skips();
        let dead = self.dead();
        for &(node, comp) in &self.clients {
            ctx.send(
                self.net,
                Ev::Net(NetSend {
                    src_node: self.node,
                    dst_node: node,
                    bytes: CTRL_BYTES,
                    dst: comp,
                    payload: Box::new(SkipUpdate {
                        skips: skips.clone(),
                        dead: dead.clone(),
                    }),
                }),
            );
        }
    }

    /// Dead-server sweep: any server silent for more than 2.5 heartbeat
    /// intervals is presumed crashed, and the change is pushed to every
    /// subscribed client so read plans fail over to mirror partners.
    fn sweep_dead(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let grace = SimTime::from_nanos(self.heartbeat.as_nanos().saturating_mul(5) / 2);
        let now = ctx.now();
        let mut changed = false;
        for st in self.servers.values_mut() {
            if !st.dead && now.saturating_sub(st.last_report) > grace {
                st.dead = true;
                changed = true;
            }
        }
        if changed {
            self.push_skips(ctx);
        }
    }

    fn on_report(&mut self, ctx: &mut Ctx<'_, Ev>, report: LoadReport) {
        let policy = self.policy.clone();
        let mut revived = false;
        {
            let st = self.servers.entry(report.server).or_default();
            st.utilization = report.utilization;
            st.last_report = ctx.now();
            if st.dead {
                // A heartbeat from a presumed-dead server: it is back.
                st.dead = false;
                revived = true;
            }
            if report.utilization >= policy.hot_threshold {
                st.hot_streak += 1;
                st.cool_streak = 0;
            } else {
                st.cool_streak += 1;
                st.hot_streak = 0;
            }
        }
        let partner = ServerId {
            group: 1 - report.server.group,
            index: report.server.index,
        };
        let partner_util = self
            .servers
            .get(&partner)
            .map(|s| s.utilization)
            .unwrap_or(0.0);
        let st = self.servers.get_mut(&report.server).expect("just inserted");
        let mut changed = false;
        if !st.skipped
            && st.hot_streak >= policy.hot_count
            && partner_util < policy.partner_cool_threshold
        {
            st.skipped = true;
            changed = true;
        } else if st.skipped && st.cool_streak >= policy.cool_count {
            st.skipped = false;
            changed = true;
        }
        if changed || revived {
            self.push_skips(ctx);
        }
    }

    fn on_open(&mut self, ctx: &mut Ctx<'_, Ev>, req: CeftOpen) {
        self.opens += 1;
        if !self
            .clients
            .iter()
            .any(|&(n, c)| n == req.reply_node && c == req.reply)
        {
            self.clients.push((req.reply_node, req.reply));
        }
        let entry = self
            .files
            .get(&req.file)
            .unwrap_or_else(|| panic!("open of unregistered file {}", req.file))
            .clone();
        let done = self.station.submit(ctx.now(), self.service);
        let resp = CeftOpenResp {
            token: req.token,
            layout: entry.layout,
            size: entry.size,
            skips: self.skips(),
            dead: self.dead(),
        };
        let (node, net) = (self.node, self.net);
        ctx.schedule_at(
            done,
            net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: req.reply_node,
                bytes: CTRL_BYTES,
                dst: req.reply,
                payload: Box::new(resp),
            }),
        );
    }
}

impl Component<Ev> for CeftMeta {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let env = match ev {
            Ev::User(env) => env,
            Ev::Timer(_) => {
                if self.heartbeat > SimTime::ZERO {
                    self.sweep_dead(ctx);
                    ctx.wake_in(self.heartbeat, Ev::Timer(0));
                }
                return;
            }
            _ => return,
        };
        match env.payload.downcast::<CeftOpen>() {
            Ok(open) => self.on_open(ctx, *open),
            Err(other) => match other.downcast::<LoadReport>() {
                Ok(r) => self.on_report(ctx, *r),
                Err(_) => debug_assert!(false, "ceft meta got unknown message"),
            },
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_hwsim::Envelope;

    fn report(eng: &mut parblast_simcore::Engine<Ev>, id: CompId, s: ServerId, util: f64) {
        eng.schedule(
            eng.now(),
            id,
            Ev::User(Envelope::local(LoadReport {
                server: s,
                utilization: util,
            })),
        );
        eng.run();
    }

    #[test]
    fn skip_requires_consecutive_hot_reports() {
        let mut eng: parblast_simcore::Engine<Ev> = parblast_simcore::Engine::new(0);
        let meta = eng.add(CeftMeta::new(
            "meta",
            0,
            CompId::NONE,
            SimTime::from_micros(450),
            SkipPolicy::default(),
        ));
        let hot = ServerId { group: 0, index: 1 };
        report(&mut eng, meta, hot, 0.95);
        assert!(eng.component::<CeftMeta>(meta).skips().is_empty());
        report(&mut eng, meta, hot, 0.95);
        assert_eq!(eng.component::<CeftMeta>(meta).skips(), vec![hot]);
    }

    #[test]
    fn unskip_after_cool_streak() {
        let mut eng: parblast_simcore::Engine<Ev> = parblast_simcore::Engine::new(0);
        let meta = eng.add(CeftMeta::new(
            "meta",
            0,
            CompId::NONE,
            SimTime::from_micros(450),
            SkipPolicy::default(),
        ));
        let hot = ServerId { group: 1, index: 0 };
        for _ in 0..2 {
            report(&mut eng, meta, hot, 1.0);
        }
        assert_eq!(eng.component::<CeftMeta>(meta).skips(), vec![hot]);
        for _ in 0..3 {
            report(&mut eng, meta, hot, 0.1);
        }
        assert!(eng.component::<CeftMeta>(meta).skips().is_empty());
    }

    #[test]
    fn no_skip_when_partner_also_hot() {
        let mut eng: parblast_simcore::Engine<Ev> = parblast_simcore::Engine::new(0);
        let meta = eng.add(CeftMeta::new(
            "meta",
            0,
            CompId::NONE,
            SimTime::from_micros(450),
            SkipPolicy::default(),
        ));
        let a = ServerId { group: 0, index: 2 };
        let b = ServerId { group: 1, index: 2 };
        // Both replicas hot: neither may be skipped.
        for _ in 0..4 {
            report(&mut eng, meta, a, 0.95);
            report(&mut eng, meta, b, 0.95);
        }
        assert!(eng.component::<CeftMeta>(meta).skips().is_empty());
    }
}
