//! CEFT-PVFS metadata server.
//!
//! Besides serving mirrored stripe layouts, the metadata server
//! "periodically collects the system resource utilization information from
//! all data servers and determines the I/O service schemes" (paper §3):
//! load monitors on the server nodes report disk utilization every
//! heartbeat; servers whose utilization crosses a threshold — while their
//! mirror partner stays cool — are put in the *skip set*, which is pushed
//! to every subscribed client.

use std::collections::HashMap;

use parblast_hwsim::{Ev, NetSend};
use parblast_pvfs::{IodRead, IodReadResp, IodWrite, IodWriteResp, CTRL_BYTES};
use parblast_simcore::{CompId, Component, Ctx, FcfsStation, SimTime};

use crate::group::MirroredLayout;
use crate::msg::{CeftOpen, CeftOpenResp, LoadReport, ServerId, SkipUpdate};

/// Rebuild copy unit (one meta-driven partner-read + revived-write round
/// trip per chunk).
const REBUILD_CHUNK: u64 = 1 << 20;

/// Timer tag for a rebuild pacing wake-up (tag 0 is the dead-server
/// sweep).
fn rebuild_tag(s: ServerId) -> u64 {
    (1 << 40) | ((s.group as u64) << 32) | s.index as u64
}

fn decode_rebuild_tag(tag: u64) -> Option<ServerId> {
    (tag & (1 << 40) != 0).then_some(ServerId {
        group: ((tag >> 32) & 0xff) as u8,
        index: (tag & 0xffff_ffff) as u32,
    })
}

/// Skip-policy knobs.
#[derive(Debug, Clone)]
pub struct SkipPolicy {
    /// A server is *hot* when its heartbeat utilization exceeds this.
    pub hot_threshold: f64,
    /// A hot server is only skipped while its partner is below this.
    pub partner_cool_threshold: f64,
    /// Consecutive hot heartbeats required before skipping (debounce).
    pub hot_count: u32,
    /// Consecutive cool heartbeats required before un-skipping.
    pub cool_count: u32,
}

impl Default for SkipPolicy {
    fn default() -> Self {
        SkipPolicy {
            hot_threshold: 0.85,
            partner_cool_threshold: 0.7,
            hot_count: 2,
            cool_count: 3,
        }
    }
}

#[derive(Debug, Clone)]
struct FileEntry {
    layout: MirroredLayout,
    size: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct ServerState {
    utilization: f64,
    hot_streak: u32,
    cool_streak: u32,
    skipped: bool,
    /// Missed enough heartbeats to be presumed crashed.
    dead: bool,
    /// Online resync in progress: the server is heartbeating again but its
    /// replica is stale, so it stays excluded from reads (`dead` remains
    /// set) until the rebuild completes.
    rebuilding: bool,
    /// When the last heartbeat arrived.
    last_report: SimTime,
}

/// One in-flight online resync: the metadata server copies every file's
/// local share from the mirror partner to the revived server, chunk by
/// chunk, paced to at most `resync_rate` bytes per second.
#[derive(Debug)]
struct Rebuild {
    /// `(file, local share length)` segments left to copy, plus a cursor
    /// into the first one.
    segments: Vec<(u64, u64)>,
    seg: usize,
    cursor: u64,
    /// The in-flight chunk, if any: `(file, offset, len, started)`.
    chunk: Option<(u64, u64, u64, SimTime)>,
}

/// CEFT metadata server component.
pub struct CeftMeta {
    node: u32,
    net: CompId,
    files: HashMap<u64, FileEntry>,
    station: FcfsStation,
    service: SimTime,
    policy: SkipPolicy,
    servers: HashMap<ServerId, ServerState>,
    clients: Vec<(u32, CompId)>,
    opens: u64,
    skip_changes: u64,
    /// Heartbeat interval; [`SimTime::ZERO`] disables dead-server sweeps.
    heartbeat: SimTime,
    /// Online-resync rate cap in bytes/s (`None` = instant rejoin, the
    /// legacy behavior; `Some(0)` = unpaced copy).
    resync_rate: Option<u64>,
    /// Data-server addresses by `[group][index]`, needed to drive rebuild
    /// copies. Empty until [`CeftMeta::set_rebuild`].
    groups: [Vec<(u32, CompId)>; 2],
    rebuilds: HashMap<ServerId, Rebuild>,
    /// In-flight rebuild chunk tokens → rebuilding server.
    rebuild_tokens: HashMap<u64, ServerId>,
    resyncs_completed: u64,
    resync_bytes: u64,
    /// Stripes the rebuild read found corrupt on the partner (lost
    /// redundancy: nothing intact remains to copy from).
    resync_unrepairable: u64,
    name: String,
}

impl CeftMeta {
    /// New metadata server on `node`.
    pub fn new(
        name: impl Into<String>,
        node: u32,
        net: CompId,
        service: SimTime,
        policy: SkipPolicy,
    ) -> Self {
        CeftMeta {
            node,
            net,
            files: HashMap::new(),
            station: FcfsStation::new(SimTime::ZERO),
            service,
            policy,
            servers: HashMap::new(),
            clients: Vec::new(),
            opens: 0,
            skip_changes: 0,
            heartbeat: SimTime::ZERO,
            resync_rate: None,
            groups: [Vec::new(), Vec::new()],
            rebuilds: HashMap::new(),
            rebuild_tokens: HashMap::new(),
            resyncs_completed: 0,
            resync_bytes: 0,
            resync_unrepairable: 0,
            name: name.into(),
        }
    }

    /// Enable online resync: a revived server is *not* returned to service
    /// on its first heartbeat; instead the metadata server copies its local
    /// share of every file back from the mirror partner at up to
    /// `bytes_per_s` (0 = unpaced) and only then clears the dead flag.
    pub fn set_rebuild(
        &mut self,
        bytes_per_s: u64,
        primary: Vec<(u32, CompId)>,
        mirror: Vec<(u32, CompId)>,
    ) {
        self.resync_rate = Some(bytes_per_s);
        self.groups = [primary, mirror];
    }

    /// `(completed resyncs, bytes copied, unrepairable stripes seen)`.
    pub fn resync_stats(&self) -> (u64, u64, u64) {
        (
            self.resyncs_completed,
            self.resync_bytes,
            self.resync_unrepairable,
        )
    }

    /// Servers currently rebuilding (heartbeating but still excluded from
    /// reads).
    pub fn rebuilding(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|(_, s)| s.rebuilding)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Enable dead-server detection: a server that has been silent for
    /// 2.5 heartbeat intervals is presumed crashed. The deployer must also
    /// schedule an initial `Ev::Timer` at this component to start the
    /// sweep.
    pub fn set_heartbeat(&mut self, interval: SimTime) {
        self.heartbeat = interval;
    }

    /// Register a file (setup-time).
    pub fn register(&mut self, file: u64, layout: MirroredLayout, size: u64) {
        self.files.insert(file, FileEntry { layout, size });
    }

    /// Current skip set.
    pub fn skips(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|(_, s)| s.skipped)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Servers currently presumed dead.
    pub fn dead(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|(_, s)| s.dead)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Opens served.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Times the skip set changed.
    pub fn skip_changes(&self) -> u64 {
        self.skip_changes
    }

    fn push_skips(&mut self, ctx: &mut Ctx<'_, Ev>) {
        self.skip_changes += 1;
        let skips = self.skips();
        let dead = self.dead();
        for &(node, comp) in &self.clients {
            ctx.send(
                self.net,
                Ev::Net(NetSend {
                    src_node: self.node,
                    dst_node: node,
                    bytes: CTRL_BYTES,
                    dst: comp,
                    payload: Box::new(SkipUpdate {
                        skips: skips.clone(),
                        dead: dead.clone(),
                    }),
                }),
            );
        }
    }

    /// Dead-server sweep: any server silent for more than 2.5 heartbeat
    /// intervals is presumed crashed, and the change is pushed to every
    /// subscribed client so read plans fail over to mirror partners. A
    /// rebuilding server that goes silent again has its resync cancelled
    /// (it restarts from scratch on the next heartbeat).
    fn sweep_dead(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let grace = SimTime::from_nanos(self.heartbeat.as_nanos().saturating_mul(5) / 2);
        let now = ctx.now();
        let mut changed = false;
        let mut cancelled = Vec::new();
        for (&id, st) in self.servers.iter_mut() {
            if now.saturating_sub(st.last_report) > grace {
                if st.rebuilding {
                    st.rebuilding = false;
                    cancelled.push(id);
                }
                if !st.dead {
                    st.dead = true;
                    changed = true;
                }
            }
        }
        for id in cancelled {
            self.rebuilds.remove(&id);
            self.rebuild_tokens.retain(|_, s| *s != id);
        }
        if changed {
            self.push_skips(ctx);
        }
    }

    /// Begin an online resync for `server` (just heartbeated back from
    /// dead). No-op while its mirror partner is also dead — there is no
    /// intact replica to copy from; the next heartbeat retries.
    fn start_rebuild(&mut self, ctx: &mut Ctx<'_, Ev>, server: ServerId) {
        let partner = ServerId {
            group: 1 - server.group,
            index: server.index,
        };
        if self.servers.get(&partner).is_some_and(|s| s.dead) {
            return;
        }
        let mut segments: Vec<(u64, u64)> = self
            .files
            .iter()
            .map(|(&f, e)| (f, e.layout.stripe.server_share(e.size, server.index)))
            .filter(|&(_, n)| n > 0)
            .collect();
        segments.sort_unstable();
        if let Some(st) = self.servers.get_mut(&server) {
            st.rebuilding = true;
        }
        self.rebuilds.insert(
            server,
            Rebuild {
                segments,
                seg: 0,
                cursor: 0,
                chunk: None,
            },
        );
        self.step_rebuild(ctx, server);
    }

    /// Issue the next rebuild chunk: read it from the mirror partner; the
    /// response handler forwards the bytes to the revived server.
    fn step_rebuild(&mut self, ctx: &mut Ctx<'_, Ev>, server: ServerId) {
        let next = {
            let Some(rb) = self.rebuilds.get_mut(&server) else {
                return;
            };
            if rb.chunk.is_some() {
                return;
            }
            match rb.segments.get(rb.seg) {
                None => None,
                Some(&(file, local_len)) => {
                    let len = REBUILD_CHUNK.min(local_len - rb.cursor);
                    rb.chunk = Some((file, rb.cursor, len, ctx.now()));
                    Some((file, rb.cursor, len))
                }
            }
        };
        let Some((file, offset, len)) = next else {
            self.finish_rebuild(ctx, server);
            return;
        };
        let src = self.groups[(1 - server.group) as usize][server.index as usize];
        let token = ctx.fresh_token();
        self.rebuild_tokens.insert(token, server);
        let me = ctx.self_id();
        let (node, net) = (self.node, self.net);
        ctx.send(
            net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: src.0,
                bytes: CTRL_BYTES,
                dst: src.1,
                payload: Box::new(IodRead {
                    file,
                    offset,
                    len,
                    reply: me,
                    reply_node: node,
                    token,
                }),
            }),
        );
    }

    /// Rebuild chunk arrived from the partner: push it to the revived
    /// server. Corrupt stripes in the partner's copy are counted as
    /// unrepairable (the only other replica is the stale one being rebuilt)
    /// but the copy proceeds — a stale-but-flagged stripe is no worse.
    fn on_rebuild_read(&mut self, ctx: &mut Ctx<'_, Ev>, r: IodReadResp) {
        let Some(server) = self.rebuild_tokens.remove(&r.token) else {
            return;
        };
        self.resync_unrepairable += r.corrupt.len() as u64;
        let Some(rb) = self.rebuilds.get(&server) else {
            return;
        };
        let Some((file, offset, len, _)) = rb.chunk else {
            return;
        };
        let dst = self.groups[server.group as usize][server.index as usize];
        let token = ctx.fresh_token();
        self.rebuild_tokens.insert(token, server);
        let me = ctx.self_id();
        let (node, net) = (self.node, self.net);
        ctx.send(
            net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: dst.0,
                bytes: len + CTRL_BYTES,
                dst: dst.1,
                payload: Box::new(IodWrite {
                    file,
                    offset,
                    len,
                    sync: false,
                    reply: me,
                    reply_node: node,
                    token,
                    forward_to: None,
                    forward_sync: false,
                }),
            }),
        );
    }

    /// The revived server acknowledged a rebuild chunk: advance the cursor
    /// and pace the next chunk so the copy never exceeds the resync rate.
    fn on_rebuild_write(&mut self, ctx: &mut Ctx<'_, Ev>, w: IodWriteResp) {
        let Some(server) = self.rebuild_tokens.remove(&w.token) else {
            return;
        };
        let earliest = {
            let Some(rb) = self.rebuilds.get_mut(&server) else {
                return;
            };
            let Some((_, offset, len, started)) = rb.chunk.take() else {
                return;
            };
            self.resync_bytes += len;
            rb.cursor = offset + len;
            if rb.cursor >= rb.segments[rb.seg].1 {
                rb.seg += 1;
                rb.cursor = 0;
            }
            match len
                .saturating_mul(1_000_000_000)
                .checked_div(self.resync_rate.unwrap_or(0))
            {
                Some(pace) => started + SimTime::from_nanos(pace),
                None => ctx.now(),
            }
        };
        if earliest <= ctx.now() {
            self.step_rebuild(ctx, server);
        } else {
            ctx.wake_in(
                earliest.saturating_sub(ctx.now()),
                Ev::Timer(rebuild_tag(server)),
            );
        }
    }

    /// Resync complete: the replica is consistent again, so the server
    /// rejoins read service and every client learns immediately.
    fn finish_rebuild(&mut self, ctx: &mut Ctx<'_, Ev>, server: ServerId) {
        self.rebuilds.remove(&server);
        if let Some(st) = self.servers.get_mut(&server) {
            st.dead = false;
            st.rebuilding = false;
            st.hot_streak = 0;
            st.cool_streak = 0;
        }
        self.resyncs_completed += 1;
        self.push_skips(ctx);
    }

    fn on_report(&mut self, ctx: &mut Ctx<'_, Ev>, report: LoadReport) {
        let policy = self.policy.clone();
        let mut revived = false;
        let mut needs_rebuild = false;
        {
            let st = self.servers.entry(report.server).or_default();
            st.utilization = report.utilization;
            st.last_report = ctx.now();
            if st.dead {
                // A heartbeat from a presumed-dead server: it is back —
                // but with online resync enabled its replica is stale, so
                // it stays excluded from reads until rebuilt.
                if self.resync_rate.is_some() {
                    needs_rebuild = !st.rebuilding;
                } else {
                    st.dead = false;
                    revived = true;
                }
            }
            if report.utilization >= policy.hot_threshold {
                st.hot_streak += 1;
                st.cool_streak = 0;
            } else {
                st.cool_streak += 1;
                st.hot_streak = 0;
            }
        }
        let partner = ServerId {
            group: 1 - report.server.group,
            index: report.server.index,
        };
        let partner_util = self
            .servers
            .get(&partner)
            .map(|s| s.utilization)
            .unwrap_or(0.0);
        let st = self.servers.get_mut(&report.server).expect("just inserted");
        let mut changed = false;
        if !st.skipped
            && st.hot_streak >= policy.hot_count
            && partner_util < policy.partner_cool_threshold
        {
            st.skipped = true;
            changed = true;
        } else if st.skipped && st.cool_streak >= policy.cool_count {
            st.skipped = false;
            changed = true;
        }
        if changed || revived {
            self.push_skips(ctx);
        }
        if needs_rebuild {
            self.start_rebuild(ctx, report.server);
        }
    }

    fn on_open(&mut self, ctx: &mut Ctx<'_, Ev>, req: CeftOpen) {
        self.opens += 1;
        if !self
            .clients
            .iter()
            .any(|&(n, c)| n == req.reply_node && c == req.reply)
        {
            self.clients.push((req.reply_node, req.reply));
        }
        let entry = self
            .files
            .get(&req.file)
            .unwrap_or_else(|| panic!("open of unregistered file {}", req.file))
            .clone();
        let done = self.station.submit(ctx.now(), self.service);
        let resp = CeftOpenResp {
            token: req.token,
            layout: entry.layout,
            size: entry.size,
            skips: self.skips(),
            dead: self.dead(),
        };
        let (node, net) = (self.node, self.net);
        ctx.schedule_at(
            done,
            net,
            Ev::Net(NetSend {
                src_node: node,
                dst_node: req.reply_node,
                bytes: CTRL_BYTES,
                dst: req.reply,
                payload: Box::new(resp),
            }),
        );
    }
}

impl Component<Ev> for CeftMeta {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let env = match ev {
            Ev::User(env) => env,
            Ev::Timer(tag) => {
                if let Some(server) = decode_rebuild_tag(tag) {
                    self.step_rebuild(ctx, server);
                } else if self.heartbeat > SimTime::ZERO {
                    self.sweep_dead(ctx);
                    ctx.wake_in(self.heartbeat, Ev::Timer(0));
                }
                return;
            }
            _ => return,
        };
        match env.payload.downcast::<CeftOpen>() {
            Ok(open) => self.on_open(ctx, *open),
            Err(other) => match other.downcast::<LoadReport>() {
                Ok(r) => self.on_report(ctx, *r),
                Err(other) => match other.downcast::<IodReadResp>() {
                    Ok(r) => self.on_rebuild_read(ctx, *r),
                    Err(other) => match other.downcast::<IodWriteResp>() {
                        Ok(w) => self.on_rebuild_write(ctx, *w),
                        Err(_) => debug_assert!(false, "ceft meta got unknown message"),
                    },
                },
            },
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_hwsim::Envelope;

    fn report(eng: &mut parblast_simcore::Engine<Ev>, id: CompId, s: ServerId, util: f64) {
        eng.schedule(
            eng.now(),
            id,
            Ev::User(Envelope::local(LoadReport {
                server: s,
                utilization: util,
            })),
        );
        eng.run();
    }

    #[test]
    fn skip_requires_consecutive_hot_reports() {
        let mut eng: parblast_simcore::Engine<Ev> = parblast_simcore::Engine::new(0);
        let meta = eng.add(CeftMeta::new(
            "meta",
            0,
            CompId::NONE,
            SimTime::from_micros(450),
            SkipPolicy::default(),
        ));
        let hot = ServerId { group: 0, index: 1 };
        report(&mut eng, meta, hot, 0.95);
        assert!(eng.component::<CeftMeta>(meta).skips().is_empty());
        report(&mut eng, meta, hot, 0.95);
        assert_eq!(eng.component::<CeftMeta>(meta).skips(), vec![hot]);
    }

    #[test]
    fn unskip_after_cool_streak() {
        let mut eng: parblast_simcore::Engine<Ev> = parblast_simcore::Engine::new(0);
        let meta = eng.add(CeftMeta::new(
            "meta",
            0,
            CompId::NONE,
            SimTime::from_micros(450),
            SkipPolicy::default(),
        ));
        let hot = ServerId { group: 1, index: 0 };
        for _ in 0..2 {
            report(&mut eng, meta, hot, 1.0);
        }
        assert_eq!(eng.component::<CeftMeta>(meta).skips(), vec![hot]);
        for _ in 0..3 {
            report(&mut eng, meta, hot, 0.1);
        }
        assert!(eng.component::<CeftMeta>(meta).skips().is_empty());
    }

    #[test]
    fn revived_server_stays_excluded_until_resync_completes() {
        use parblast_hwsim::{Cluster, HwParams};
        use parblast_pvfs::Iod;
        let mut eng: parblast_simcore::Engine<Ev> = parblast_simcore::Engine::new(0);
        let c = Cluster::build(&mut eng, 3, HwParams::default());
        let iod_p = eng.add(Iod::new("iod.p0", 0, c.nodes[0].fs, c.net));
        let iod_m = eng.add(Iod::new("iod.m0", 1, c.nodes[1].fs, c.net));
        let mut meta = CeftMeta::new(
            "meta",
            2,
            c.net,
            SimTime::from_micros(450),
            SkipPolicy::default(),
        );
        meta.set_heartbeat(SimTime::from_secs(1));
        meta.set_rebuild(0, vec![(0, iod_p)], vec![(1, iod_m)]);
        meta.register(5, MirroredLayout::new(64 << 10, 1), 256 << 10);
        let meta = eng.add(meta);
        eng.schedule(SimTime::from_secs(1), meta, Ev::Timer(0));

        let primary = ServerId { group: 0, index: 0 };
        let mirror = ServerId { group: 1, index: 0 };
        let beat = |eng: &mut parblast_simcore::Engine<Ev>, t: u64, s: ServerId| {
            eng.schedule(
                SimTime::from_secs(t),
                meta,
                Ev::User(Envelope::local(LoadReport {
                    server: s,
                    utilization: 0.1,
                })),
            );
        };
        // The mirror heartbeats steadily; the primary reports once, goes
        // silent (crashed), and comes back at t = 6.
        for t in 0..10 {
            beat(&mut eng, t, mirror);
        }
        beat(&mut eng, 0, primary);
        for t in 6..10 {
            beat(&mut eng, t, primary);
        }
        // Silent past 2.5 heartbeats: presumed dead.
        eng.run_until(SimTime::from_secs_f64(4.5));
        assert!(eng.component::<CeftMeta>(meta).dead().contains(&primary));
        // The heartbeat returns: the rebuild starts immediately, but the
        // stale replica stays excluded from reads while it runs.
        eng.run_until(SimTime::from_secs_f64(6.001));
        let m = eng.component::<CeftMeta>(meta);
        assert_eq!(m.rebuilding(), vec![primary]);
        assert!(
            m.dead().contains(&primary),
            "a rebuilding server must not serve reads"
        );
        // The (unpaced) 256 KiB copy completes and the server rejoins.
        eng.run_until(SimTime::from_secs(9));
        let m = eng.component::<CeftMeta>(meta);
        assert!(m.rebuilding().is_empty());
        assert!(!m.dead().contains(&primary), "rejoins after the rebuild");
        assert_eq!(m.resync_stats(), (1, 256 << 10, 0));
    }

    #[test]
    fn no_skip_when_partner_also_hot() {
        let mut eng: parblast_simcore::Engine<Ev> = parblast_simcore::Engine::new(0);
        let meta = eng.add(CeftMeta::new(
            "meta",
            0,
            CompId::NONE,
            SimTime::from_micros(450),
            SkipPolicy::default(),
        ));
        let a = ServerId { group: 0, index: 2 };
        let b = ServerId { group: 1, index: 2 };
        // Both replicas hot: neither may be skipped.
        for _ in 0..4 {
            report(&mut eng, meta, a, 0.95);
            report(&mut eng, meta, b, 0.95);
        }
        assert!(eng.component::<CeftMeta>(meta).skips().is_empty());
    }
}
