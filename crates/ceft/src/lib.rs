//! # parblast-ceft
//!
//! Simulated CEFT-PVFS (Cost-Effective, Fault-Tolerant PVFS; Zhu et al.
//! 2003): a RAID-10-style extension of PVFS that stripes data over a
//! primary group of servers and mirrors it to a second group.
//!
//! The redundancy is exploited exactly as in the paper:
//!
//! * **Doubled read parallelism** — every read fetches its first half from
//!   one group and its second half from the other, so all `2N` servers
//!   participate (§3, "Improved read performance" [6]);
//! * **Hot-spot skipping** — load monitors report per-server disk
//!   utilization to the metadata server each heartbeat; servers that stay
//!   hot while their mirror partner stays cool are put in a skip set that
//!   clients use to redirect reads to the partner (§4.5, Figure 3);
//! * **Duplex writes** — writes go to both groups before completing, the
//!   cost of fault tolerance (Figure 7's slight CEFT overhead).
//!
//! The iod data path is shared with [`parblast_pvfs`].

#![warn(missing_docs)]

pub mod client;
pub mod group;
pub mod meta;
pub mod monitor;
pub mod msg;

pub use client::{CeftClient, ReadMode, WriteProtocol};
pub use group::{MirroredLayout, ReadPart};
pub use meta::{CeftMeta, SkipPolicy};
pub use monitor::LoadMonitor;
pub use msg::{CeftOpen, CeftOpenResp, LoadReport, ServerId, SkipUpdate};

use parblast_hwsim::{Cluster, Disk, Ev};
use parblast_pvfs::Iod;
use parblast_simcore::{CompId, Engine, SimTime};

/// A deployed CEFT-PVFS instance.
#[derive(Debug, Clone)]
pub struct Ceft {
    /// Metadata server address.
    pub meta: (u32, CompId),
    /// Primary-group data servers in layout order.
    pub primary: Vec<(u32, CompId)>,
    /// Mirror-group data servers in layout order.
    pub mirror: Vec<(u32, CompId)>,
    /// Load monitors (one per data server).
    pub monitors: Vec<CompId>,
    /// Stripe size for new files.
    pub stripe_size: u64,
    /// Client read mode applied by [`Ceft::add_client`].
    pub read_mode: ReadMode,
    /// Duplex write protocol applied by [`Ceft::add_client`].
    pub write_protocol: WriteProtocol,
    net: CompId,
}

/// Deployment knobs.
#[derive(Debug, Clone)]
pub struct CeftConfig {
    /// Stripe size (paper: 64 KB).
    pub stripe_size: u64,
    /// Metadata service time per request (slightly above PVFS's: CEFT
    /// manages more metadata, §4.4).
    pub meta_service: SimTime,
    /// Heartbeat interval for load collection.
    pub heartbeat: SimTime,
    /// Per-request iod overhead (CEFT manages more metadata than PVFS).
    pub iod_overhead: SimTime,
    /// Client read-scheduling mode (dual-half vs the primary-only
    /// ablation).
    pub read_mode: ReadMode,
    /// Duplex write protocol.
    pub write_protocol: WriteProtocol,
    /// Skip policy.
    pub policy: SkipPolicy,
    /// Online-resync rate cap in bytes/s for revived servers. `None`
    /// (default) keeps the legacy instant rejoin: the first heartbeat from
    /// a presumed-dead server returns it to read service immediately.
    /// `Some(r)` holds a revived server out of service while the metadata
    /// server copies its local share of every file back from the mirror
    /// partner at up to `r` bytes/s (`Some(0)` = unpaced).
    pub resync_rate: Option<u64>,
}

impl Default for CeftConfig {
    fn default() -> Self {
        CeftConfig {
            stripe_size: 64 << 10,
            meta_service: SimTime::from_micros(450),
            heartbeat: SimTime::from_secs(5),
            iod_overhead: SimTime::from_millis(3),
            read_mode: ReadMode::DualHalf,
            write_protocol: WriteProtocol::ClientDuplex,
            policy: SkipPolicy::default(),
            resync_rate: None,
        }
    }
}

impl Ceft {
    /// Deploy CEFT-PVFS: metadata server on `meta_node`, data servers on
    /// `primary_nodes` mirrored by `mirror_nodes` (equal length, layout
    /// order). Load monitors start heartbeating immediately.
    pub fn deploy(
        eng: &mut Engine<Ev>,
        cluster: &Cluster,
        meta_node: u32,
        primary_nodes: &[u32],
        mirror_nodes: &[u32],
        cfg: &CeftConfig,
    ) -> Ceft {
        assert_eq!(
            primary_nodes.len(),
            mirror_nodes.len(),
            "mirror group must match primary group"
        );
        assert!(!primary_nodes.is_empty(), "CEFT needs data servers");
        let mut meta_comp = CeftMeta::new(
            "ceft.meta",
            meta_node,
            cluster.net,
            cfg.meta_service,
            cfg.policy.clone(),
        );
        meta_comp.set_heartbeat(cfg.heartbeat);
        let meta = eng.add(meta_comp);
        // Dead-server sweep rides the same heartbeat cadence as the load
        // reports it watches for.
        eng.schedule(cfg.heartbeat, meta, Ev::Timer(0));
        let meta_addr = (meta_node, meta);
        let mut monitors = Vec::new();
        let mut deploy_group = |eng: &mut Engine<Ev>, nodes: &[u32], group: u8| {
            nodes
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    let node = &cluster.nodes[n as usize];
                    let mut daemon =
                        Iod::new(format!("ceft.iod.g{group}.{i}"), n, node.fs, cluster.net);
                    daemon.set_overhead(cfg.iod_overhead);
                    let iod = eng.add(daemon);
                    let gauge = eng.component::<Disk>(node.disk).gauge();
                    let mon = eng.add(LoadMonitor::new(
                        format!("ceft.mon.g{group}.{i}"),
                        ServerId {
                            group,
                            index: i as u32,
                        },
                        n,
                        cluster.net,
                        meta_addr,
                        gauge,
                        cfg.heartbeat,
                    ));
                    monitors.push(mon);
                    eng.schedule(SimTime::ZERO, mon, Ev::Timer(0));
                    (n, iod)
                })
                .collect::<Vec<_>>()
        };
        let primary = deploy_group(eng, primary_nodes, 0);
        let mirror = deploy_group(eng, mirror_nodes, 1);
        if let Some(rate) = cfg.resync_rate {
            eng.component_mut::<CeftMeta>(meta)
                .set_rebuild(rate, primary.clone(), mirror.clone());
        }
        Ceft {
            meta: meta_addr,
            primary,
            mirror,
            monitors,
            stripe_size: cfg.stripe_size,
            read_mode: cfg.read_mode,
            write_protocol: cfg.write_protocol,
            net: cluster.net,
        }
    }

    /// Register a file with the metadata server (setup-time).
    pub fn register_file(&self, eng: &mut Engine<Ev>, file: u64, size: u64) {
        let layout = MirroredLayout::new(self.stripe_size, self.primary.len() as u32);
        eng.component_mut::<CeftMeta>(self.meta.1)
            .register(file, layout, size);
    }

    /// Create a client component on `node`.
    pub fn add_client(&self, eng: &mut Engine<Ev>, node: u32) -> CompId {
        let mut client = CeftClient::new(
            format!("ceft.client{node}"),
            node,
            self.net,
            self.meta,
            self.primary.clone(),
            self.mirror.clone(),
        );
        client.read_mode = self.read_mode;
        client.write_protocol = self.write_protocol;
        eng.add(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_hwsim::{start_stressor, DiskStressor, Envelope, HwParams, StressorConfig, MIB};
    use parblast_pvfs::{ClientReq, ClientResp};
    use parblast_simcore::{Component, Ctx};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Scripted application: open, then chain reads.
    struct App {
        client: CompId,
        file: u64,
        reads: Vec<(u64, u64)>,
        next: usize,
        log: Rc<RefCell<Vec<(SimTime, ClientResp)>>>,
    }
    impl Component<Ev> for App {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Timer(_) => {
                    let me = ctx.self_id();
                    ctx.send(
                        self.client,
                        Ev::User(Envelope::local(ClientReq::Open {
                            file: self.file,
                            reply_to: me,
                            tag: 0,
                        })),
                    );
                }
                Ev::User(env) => {
                    let resp: ClientResp = env.expect();
                    self.log.borrow_mut().push((ctx.now(), resp));
                    if self.next < self.reads.len() {
                        let (offset, len) = self.reads[self.next];
                        self.next += 1;
                        let me = ctx.self_id();
                        ctx.send(
                            self.client,
                            Ev::User(Envelope::local(ClientReq::Read {
                                file: self.file,
                                offset,
                                len,
                                reply_to: me,
                                tag: self.next as u64,
                            })),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn seq_reads(total: u64, chunk: u64) -> Vec<(u64, u64)> {
        (0..total.div_ceil(chunk))
            .map(|i| (i * chunk, chunk.min(total - i * chunk)))
            .collect()
    }

    /// 4+4 CEFT deployment with a client on node 8; returns (read seconds,
    /// skipped part count).
    fn ceft_read_time(stress_node: Option<u32>, total: u64) -> (f64, u64) {
        let mut eng: Engine<Ev> = Engine::new(3);
        let cluster = Cluster::build(&mut eng, 9, HwParams::default());
        let ceft = Ceft::deploy(
            &mut eng,
            &cluster,
            8,
            &[0, 1, 2, 3],
            &[4, 5, 6, 7],
            &CeftConfig::default(),
        );
        ceft.register_file(&mut eng, 1, total);
        let client = ceft.add_client(&mut eng, 8);
        if let Some(n) = stress_node {
            let st = eng.add(DiskStressor::new(
                "stress",
                cluster.nodes[n as usize].fs,
                StressorConfig::default(),
            ));
            start_stressor(&mut eng, st, SimTime::ZERO);
        }
        let log = Rc::new(RefCell::new(vec![]));
        let app = eng.add(App {
            client,
            file: 1,
            reads: seq_reads(total, 8 * MIB),
            next: 0,
            log: log.clone(),
        });
        // Start after the skip policy has had a chance to see reports.
        eng.schedule(SimTime::from_secs(10), app, Ev::Timer(0));
        eng.run_until(SimTime::from_secs(4000));
        let v = log.borrow();
        let t_open = v[0].0;
        let t_done = v.last().unwrap().0;
        let skipped = eng.component::<CeftClient>(client).skipped_parts();
        (t_done.saturating_sub(t_open).as_secs_f64(), skipped)
    }

    #[test]
    fn dual_half_read_uses_all_eight_servers() {
        let mut eng: Engine<Ev> = Engine::new(3);
        let cluster = Cluster::build(&mut eng, 9, HwParams::default());
        let ceft = Ceft::deploy(
            &mut eng,
            &cluster,
            8,
            &[0, 1, 2, 3],
            &[4, 5, 6, 7],
            &CeftConfig::default(),
        );
        ceft.register_file(&mut eng, 1, 64 * MIB);
        let client = ceft.add_client(&mut eng, 8);
        let log = Rc::new(RefCell::new(vec![]));
        let app = eng.add(App {
            client,
            file: 1,
            reads: vec![(0, 64 * MIB)],
            next: 0,
            log: log.clone(),
        });
        eng.schedule(SimTime::ZERO, app, Ev::Timer(0));
        eng.run_until(SimTime::from_secs(100));
        for &(_, iod) in ceft.primary.iter().chain(&ceft.mirror) {
            let (reads, bytes, _, _) = eng.component::<Iod>(iod).stats();
            assert!(reads >= 1, "every server participates");
            assert_eq!(bytes, 8 * MIB, "each of 8 servers serves 1/8");
        }
    }

    #[test]
    fn stressed_server_is_skipped_and_read_survives() {
        let total = 256 * MIB;
        let (t_clean, skipped_clean) = ceft_read_time(None, total);
        let (t_stressed, skipped_stressed) = ceft_read_time(Some(2), total);
        assert_eq!(skipped_clean, 0);
        assert!(skipped_stressed > 0, "hot server must be skipped");
        // Degradation stays small — the paper's factor ~2, nowhere near
        // PVFS's collapse.
        let factor = t_stressed / t_clean;
        assert!(factor < 4.0, "factor = {factor}");
        // With detection complete before the read starts, the redirected
        // read can be nearly as fast as the clean one.
        assert!(factor > 0.9, "factor = {factor}");
    }

    /// Drive one 4 MiB write through a given protocol; returns
    /// (ack latency seconds, client-node tx bytes, per-group iod write byte
    /// totals).
    fn write_with_protocol(protocol: WriteProtocol) -> (f64, u64, (u64, u64)) {
        let mut eng: Engine<Ev> = Engine::new(3);
        let cluster = Cluster::build(&mut eng, 9, HwParams::default());
        let ceft = Ceft::deploy(
            &mut eng,
            &cluster,
            8,
            &[0, 1],
            &[2, 3],
            &CeftConfig {
                write_protocol: protocol,
                ..CeftConfig::default()
            },
        );
        ceft.register_file(&mut eng, 1, 16 * MIB);
        let client = ceft.add_client(&mut eng, 8);
        struct W {
            client: CompId,
            done_at: Rc<RefCell<Option<SimTime>>>,
        }
        impl Component<Ev> for W {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                match ev {
                    Ev::Timer(_) => {
                        let me = ctx.self_id();
                        ctx.send(
                            self.client,
                            Ev::User(Envelope::local(ClientReq::Open {
                                file: 1,
                                reply_to: me,
                                tag: 0,
                            })),
                        );
                    }
                    Ev::User(env) => match env.expect::<ClientResp>() {
                        ClientResp::OpenDone { .. } => {
                            let me = ctx.self_id();
                            ctx.send(
                                self.client,
                                Ev::User(Envelope::local(ClientReq::Write {
                                    file: 1,
                                    offset: 0,
                                    len: 4 * MIB,
                                    reply_to: me,
                                    tag: 1,
                                })),
                            );
                        }
                        ClientResp::WriteDone { .. } => {
                            *self.done_at.borrow_mut() = Some(ctx.now());
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
        }
        let done_at = Rc::new(RefCell::new(None));
        let w = eng.add(W {
            client,
            done_at: done_at.clone(),
        });
        eng.schedule(SimTime::ZERO, w, Ev::Timer(0));
        eng.run_until(SimTime::from_secs(120));
        let latency = done_at.borrow().expect("write acked").as_secs_f64();
        let tx = eng
            .component::<parblast_hwsim::Network>(cluster.net)
            .nic_bytes(8)
            .0;
        let group_bytes = |grp: &[(u32, CompId)]| -> u64 {
            grp.iter()
                .map(|&(_, id)| eng.component::<Iod>(id).stats().3)
                .sum()
        };
        (
            latency,
            tx,
            (group_bytes(&ceft.primary), group_bytes(&ceft.mirror)),
        )
    }

    #[test]
    fn all_write_protocols_duplicate_the_data() {
        for protocol in [
            WriteProtocol::ClientDuplex,
            WriteProtocol::ServerSync,
            WriteProtocol::ServerAsync,
        ] {
            let (_, _, (p, m)) = write_with_protocol(protocol);
            assert_eq!(p, 4 * MIB, "{protocol:?}: primary bytes");
            assert_eq!(m, 4 * MIB, "{protocol:?}: mirror bytes");
        }
    }

    #[test]
    fn server_protocols_halve_client_traffic() {
        let (_, tx_dup, _) = write_with_protocol(WriteProtocol::ClientDuplex);
        let (_, tx_srv, _) = write_with_protocol(WriteProtocol::ServerSync);
        assert!(
            tx_dup > tx_srv + 3 * MIB,
            "client duplex tx {tx_dup} vs server duplex {tx_srv}"
        );
    }

    #[test]
    fn async_acks_faster_than_sync_forwarding() {
        let (t_sync, _, _) = write_with_protocol(WriteProtocol::ServerSync);
        let (t_async, _, _) = write_with_protocol(WriteProtocol::ServerAsync);
        assert!(
            t_async < t_sync,
            "async {t_async} should ack before sync {t_sync}"
        );
    }

    #[test]
    fn duplex_write_hits_both_groups() {
        let mut eng: Engine<Ev> = Engine::new(3);
        let cluster = Cluster::build(&mut eng, 9, HwParams::default());
        let ceft = Ceft::deploy(
            &mut eng,
            &cluster,
            8,
            &[0, 1],
            &[2, 3],
            &CeftConfig::default(),
        );
        ceft.register_file(&mut eng, 1, 16 * MIB);
        let client = ceft.add_client(&mut eng, 8);
        struct W {
            client: CompId,
            done: Rc<RefCell<bool>>,
        }
        impl Component<Ev> for W {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                match ev {
                    Ev::Timer(_) => {
                        let me = ctx.self_id();
                        ctx.send(
                            self.client,
                            Ev::User(Envelope::local(ClientReq::Open {
                                file: 1,
                                reply_to: me,
                                tag: 0,
                            })),
                        );
                    }
                    Ev::User(env) => match env.expect::<ClientResp>() {
                        ClientResp::OpenDone { .. } => {
                            let me = ctx.self_id();
                            ctx.send(
                                self.client,
                                Ev::User(Envelope::local(ClientReq::Write {
                                    file: 1,
                                    offset: 0,
                                    len: 4 * MIB,
                                    reply_to: me,
                                    tag: 1,
                                })),
                            );
                        }
                        ClientResp::WriteDone { len, .. } => {
                            assert_eq!(len, 4 * MIB);
                            *self.done.borrow_mut() = true;
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
        }
        let done = Rc::new(RefCell::new(false));
        let w = eng.add(W {
            client,
            done: done.clone(),
        });
        eng.schedule(SimTime::ZERO, w, Ev::Timer(0));
        eng.run_until(SimTime::from_secs(60));
        assert!(*done.borrow());
        // Every server in both groups got half the extent.
        for &(_, iod) in ceft.primary.iter().chain(&ceft.mirror) {
            let (_, _, w, bw) = eng.component::<Iod>(iod).stats();
            assert_eq!(w, 1);
            assert_eq!(bw, 2 * MIB);
        }
    }
}
