//! CEFT-PVFS protocol messages.
//!
//! The data path reuses the PVFS iod messages ([`parblast_pvfs::IodRead`]
//! etc.); CEFT adds mirrored-layout opens, periodic load reports from the
//! data servers, and skip-set pushes from the metadata server to clients.

use parblast_simcore::CompId;

use crate::group::MirroredLayout;

pub use parblast_pio::layout::ServerId;

/// Open request to the CEFT metadata server. Doubles as a client
/// subscription for skip-set updates.
#[derive(Debug, Clone)]
pub struct CeftOpen {
    /// Global file id.
    pub file: u64,
    /// Requesting component.
    pub reply: CompId,
    /// Requesting component's node.
    pub reply_node: u32,
    /// Correlation token.
    pub token: u64,
}

/// Open response: layout plus the current skip set.
#[derive(Debug, Clone)]
pub struct CeftOpenResp {
    /// Echoed token.
    pub token: u64,
    /// Mirrored layout of the file.
    pub layout: MirroredLayout,
    /// File size.
    pub size: u64,
    /// Servers currently marked hot (to be skipped).
    pub skips: Vec<ServerId>,
    /// Servers currently presumed dead (missed heartbeats); reads must
    /// fail over to their mirror partners.
    pub dead: Vec<ServerId>,
}

/// Periodic load report from a server node's monitor to the metadata
/// server.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Reporting server.
    pub server: ServerId,
    /// Disk utilization over the last heartbeat interval, `0.0..=1.0`.
    pub utilization: f64,
}

/// Skip-set push from the metadata server to subscribed clients.
#[derive(Debug, Clone)]
pub struct SkipUpdate {
    /// Servers to skip from now on.
    pub skips: Vec<ServerId>,
    /// Servers presumed dead (missed heartbeats) — avoid them like skips,
    /// until a fresh heartbeat revives them.
    pub dead: Vec<ServerId>,
}
