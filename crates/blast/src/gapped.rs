//! Gapped alignment: X-drop gapped extension (scoring stage) and banded
//! global alignment with traceback (reporting stage).
//!
//! The X-drop extension is the NCBI `ALIGN_EX`-style dynamic-band DP: rows
//! advance along the query, the live cell window widens and narrows as
//! cells fall more than `x_drop` below the running best, and extension in
//! each direction stops when a row goes empty. It returns score and
//! end-points only; per-column traceback for the final report is recomputed
//! with a banded global alignment over the (small) aligned ranges.

use crate::matrix::{GapPenalties, Scorer};

const NEG: i32 = i32::MIN / 4;

/// Result of a one-directional X-drop extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtensionResult {
    /// Best score achieved (≥ 0; 0 means no extension helped).
    pub score: i32,
    /// Query residues consumed at the best cell.
    pub q_ext: usize,
    /// Subject residues consumed at the best cell.
    pub s_ext: usize,
}

/// Reusable DP buffers for the X-drop gapped extension. One gapped
/// extension needs five subject-length rows plus two reversed-prefix
/// copies; allocating them per call dominated the extension cost on the
/// hot path, so [`xdrop_extend_with`]/[`extend_gapped_with`] recycle the
/// buffers here across calls (and, via `ScanWorkspace`, across subjects,
/// fragments and batched queries).
#[derive(Debug, Default)]
pub struct GappedWorkspace {
    h_prev: Vec<i32>,
    f_prev: Vec<i32>,
    h_row: Vec<i32>,
    e_row: Vec<i32>,
    f_row: Vec<i32>,
    left_q: Vec<u8>,
    left_s: Vec<u8>,
}

impl GappedWorkspace {
    /// Empty workspace; buffers grow to the largest extension seen.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reset `buf` to `n` copies of `v` without shrinking capacity.
#[inline]
fn refill(buf: &mut Vec<i32>, n: usize, v: i32) {
    buf.clear();
    buf.resize(n, v);
}

/// X-drop gapped extension of `query` vs `subject` starting at their
/// beginnings (callers slice/reverse to anchor). Affine gaps; `x_drop` in
/// raw score units. Allocates fresh DP rows; hot paths should use
/// [`xdrop_extend_with`].
pub fn xdrop_extend(
    query: &[u8],
    subject: &[u8],
    scorer: &Scorer,
    gaps: GapPenalties,
    x_drop: i32,
) -> ExtensionResult {
    xdrop_extend_with(
        query,
        subject,
        scorer,
        gaps,
        x_drop,
        &mut GappedWorkspace::new(),
    )
}

/// [`xdrop_extend`] with caller-provided DP buffers. The rows are
/// re-initialized to the exact state the allocating version starts from,
/// so results are identical call for call.
#[allow(clippy::needless_range_loop)] // absolute-j indexing mirrors the DP recurrences
pub fn xdrop_extend_with(
    query: &[u8],
    subject: &[u8],
    scorer: &Scorer,
    gaps: GapPenalties,
    x_drop: i32,
    ws: &mut GappedWorkspace,
) -> ExtensionResult {
    let n = subject.len();
    if n == 0 || query.is_empty() {
        return ExtensionResult {
            score: 0,
            q_ext: 0,
            s_ext: 0,
        };
    }
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;

    let mut best = 0;
    let mut best_cell = (0usize, 0usize);

    // Previous row (absolute j indexing over [lo_prev, hi_prev]).
    let mut lo_prev = 0usize;
    let mut hi_prev = 0usize;
    refill(&mut ws.h_prev, n + 1, 0);
    refill(&mut ws.f_prev, n + 1, NEG);
    let h_prev = &mut ws.h_prev;
    let f_prev = &mut ws.f_prev;
    // Row 0: leading gap in the query.
    for j in 1..=n {
        let v = -gaps.open - ext * j as i32;
        if v <= -x_drop {
            break;
        }
        h_prev[j] = v;
        hi_prev = j;
    }

    refill(&mut ws.h_row, n + 1, NEG);
    refill(&mut ws.e_row, n + 1, NEG);
    refill(&mut ws.f_row, n + 1, NEG);
    let h_row = &mut ws.h_row;
    let e_row = &mut ws.e_row;
    let f_row = &mut ws.f_row;

    for i in 1..=query.len() {
        let qc = query[i - 1];
        let jlo = lo_prev;
        let jhi = (hi_prev + 1).min(n);
        let mut row_lo = usize::MAX;
        let mut row_hi = 0usize;
        for j in jlo..=jhi {
            // F: gap in subject (vertical), from previous row same j.
            let f = if j >= lo_prev && j <= hi_prev {
                (h_prev[j] - open_ext).max(f_prev[j] - ext)
            } else {
                NEG
            };
            // E: gap in query (horizontal), from current row j-1.
            let e = if j > jlo {
                (h_row[j - 1] - open_ext).max(e_row[j - 1] - ext)
            } else {
                NEG
            };
            // M: diagonal from previous row j-1.
            let m = if j >= 1 && j > lo_prev && j - 1 <= hi_prev && h_prev[j - 1] > NEG / 2 {
                h_prev[j - 1] + scorer.score(qc, subject[j - 1])
            } else {
                NEG
            };
            let mut h = m.max(e).max(f);
            if h < best - x_drop {
                h = NEG;
            }
            h_row[j] = h;
            e_row[j] = if h > NEG / 2 { e } else { NEG };
            f_row[j] = if h > NEG / 2 { f } else { NEG };
            if h > NEG / 2 {
                if h > best {
                    best = h;
                    best_cell = (i, j);
                }
                if row_lo == usize::MAX {
                    row_lo = j;
                }
                row_hi = j;
            }
        }
        if row_lo == usize::MAX {
            break; // row died: extension complete
        }
        // Current row becomes the previous row; clear only the touched span.
        for j in jlo..=jhi {
            h_prev[j] = h_row[j];
            f_prev[j] = f_row[j];
            h_row[j] = NEG;
            e_row[j] = NEG;
            f_row[j] = NEG;
        }
        lo_prev = row_lo;
        hi_prev = row_hi;
    }

    ExtensionResult {
        score: best,
        q_ext: best_cell.0,
        s_ext: best_cell.1,
    }
}

/// Bidirectional gapped extension anchored at `(q0, s0)` (the anchor pair
/// itself is scored by the right extension). Returns `(score, q_range,
/// s_range)`. Allocating convenience wrapper over [`extend_gapped_with`].
pub fn extend_gapped(
    query: &[u8],
    subject: &[u8],
    q0: usize,
    s0: usize,
    scorer: &Scorer,
    gaps: GapPenalties,
    x_drop: i32,
) -> (i32, std::ops::Range<usize>, std::ops::Range<usize>) {
    extend_gapped_with(
        query,
        subject,
        q0,
        s0,
        scorer,
        gaps,
        x_drop,
        &mut GappedWorkspace::new(),
    )
}

/// [`extend_gapped`] with reusable DP rows and reversed-prefix buffers.
#[allow(clippy::too_many_arguments)]
pub fn extend_gapped_with(
    query: &[u8],
    subject: &[u8],
    q0: usize,
    s0: usize,
    scorer: &Scorer,
    gaps: GapPenalties,
    x_drop: i32,
    ws: &mut GappedWorkspace,
) -> (i32, std::ops::Range<usize>, std::ops::Range<usize>) {
    let right = xdrop_extend_with(&query[q0..], &subject[s0..], scorer, gaps, x_drop, ws);
    // Take the reversed-prefix buffers out so the workspace rows can be
    // borrowed mutably for the left extension.
    let mut left_q = std::mem::take(&mut ws.left_q);
    let mut left_s = std::mem::take(&mut ws.left_s);
    left_q.clear();
    left_q.extend(query[..q0].iter().rev().copied());
    left_s.clear();
    left_s.extend(subject[..s0].iter().rev().copied());
    let left = xdrop_extend_with(&left_q, &left_s, scorer, gaps, x_drop, ws);
    ws.left_q = left_q;
    ws.left_s = left_s;
    (
        left.score + right.score,
        (q0 - left.q_ext)..(q0 + right.q_ext),
        (s0 - left.s_ext)..(s0 + right.s_ext),
    )
}

/// One aligned column in a traceback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Query and subject residues aligned (match or mismatch).
    Sub,
    /// Gap in the query (subject residue unmatched).
    InsSubject,
    /// Gap in the subject (query residue unmatched).
    InsQuery,
}

/// Alignment summary statistics from a traceback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlignStats {
    /// Aligned columns.
    pub length: usize,
    /// Identical pairs.
    pub identities: usize,
    /// Substituted (non-identical) pairs.
    pub mismatches: usize,
    /// Gap openings.
    pub gap_opens: usize,
    /// Total gapped columns.
    pub gap_letters: usize,
}

/// Banded global alignment of `query` vs `subject` with affine gaps and
/// full traceback. `extra_band` widens the band beyond the length
/// difference. Returns `(score, ops)`.
pub fn banded_global(
    query: &[u8],
    subject: &[u8],
    scorer: &Scorer,
    gaps: GapPenalties,
    extra_band: usize,
) -> (i32, Vec<AlignOp>) {
    let (m, n) = (query.len(), subject.len());
    if m == 0 {
        return (
            if n == 0 { 0 } else { -gaps.cost(n as i32) },
            vec![AlignOp::InsSubject; n],
        );
    }
    if n == 0 {
        return (-gaps.cost(m as i32), vec![AlignOp::InsQuery; m]);
    }
    let band = (m as i64 - n as i64).unsigned_abs() as usize + extra_band.max(1);
    let width = 2 * band + 1;
    let idx = |i: usize, j: i64| -> Option<usize> {
        // j ranges over [i - band, i + band] mapped onto [0, width).
        let off = j - (i as i64 - band as i64);
        if off < 0 || off >= width as i64 {
            None
        } else {
            Some(off as usize)
        }
    };
    let open_ext = gaps.open + gaps.extend;
    let ext = gaps.extend;
    // 3 DP matrices H/E/F stored banded; traceback bytes per state.
    let mut h = vec![vec![NEG; width]; m + 1];
    let mut e = vec![vec![NEG; width]; m + 1];
    let mut f = vec![vec![NEG; width]; m + 1];
    // Traceback: 0=diag,1=from E,2=from F for H; for E: bit, for F: bit.
    let mut bt_h = vec![vec![0u8; width]; m + 1];
    let mut bt_e = vec![vec![0u8; width]; m + 1];
    let mut bt_f = vec![vec![0u8; width]; m + 1];

    if let Some(k) = idx(0, 0) {
        h[0][k] = 0;
    }
    for j in 1..=n as i64 {
        if let Some(k) = idx(0, j) {
            e[0][k] = -gaps.open - ext * j as i32;
            h[0][k] = e[0][k];
            bt_h[0][k] = 1;
            bt_e[0][k] = if j > 1 { 1 } else { 0 }; // 1 = extend, 0 = open
        }
    }
    for i in 1..=m {
        let jlo = (i as i64 - band as i64).max(0);
        let jhi = (i as i64 + band as i64).min(n as i64);
        for j in jlo..=jhi {
            let k = idx(i, j).unwrap();
            // F (gap in subject: vertical from i-1, same j).
            let fv = {
                let up_h = idx(i - 1, j).map_or(NEG, |k2| h[i - 1][k2]);
                let up_f = idx(i - 1, j).map_or(NEG, |k2| f[i - 1][k2]);
                if up_h - open_ext >= up_f - ext {
                    bt_f[i][k] = 0;
                    up_h - open_ext
                } else {
                    bt_f[i][k] = 1;
                    up_f - ext
                }
            };
            f[i][k] = fv;
            // E (gap in query: horizontal from j-1, same i).
            let ev = if j > 0 {
                let left_h = idx(i, j - 1).map_or(NEG, |k2| h[i][k2]);
                let left_e = idx(i, j - 1).map_or(NEG, |k2| e[i][k2]);
                if left_h - open_ext >= left_e - ext {
                    bt_e[i][k] = 0;
                    left_h - open_ext
                } else {
                    bt_e[i][k] = 1;
                    left_e - ext
                }
            } else {
                NEG
            };
            e[i][k] = ev;
            // H.
            let diag = if j > 0 {
                idx(i - 1, j - 1).map_or(NEG, |k2| h[i - 1][k2])
            } else {
                NEG
            };
            let mv = if diag > NEG / 2 {
                diag + scorer.score(query[i - 1], subject[j as usize - 1])
            } else {
                NEG
            };
            let (hv, tb) = if mv >= ev && mv >= fv {
                (mv, 0u8)
            } else if ev >= fv {
                (ev, 1u8)
            } else {
                (fv, 2u8)
            };
            h[i][k] = hv;
            bt_h[i][k] = tb;
        }
    }

    let score = idx(m, n as i64).map_or(NEG, |k| h[m][k]);
    // Traceback from (m, n) in state H.
    let mut ops_rev = Vec::with_capacity(m + n);
    let (mut i, mut j) = (m, n as i64);
    let mut state = 0u8; // 0=H,1=E,2=F
    while i > 0 || j > 0 {
        let k = idx(i, j).expect("in band");
        match state {
            0 => match bt_h[i][k] {
                0 if i > 0 && j > 0 => {
                    ops_rev.push(AlignOp::Sub);
                    i -= 1;
                    j -= 1;
                }
                1 => state = 1,
                2 => state = 2,
                _ => {
                    // Degenerate: fall back to gaps to terminate.
                    if j > 0 {
                        state = 1;
                    } else {
                        state = 2;
                    }
                }
            },
            1 => {
                ops_rev.push(AlignOp::InsSubject);
                let was_extend = bt_e[i][k] == 1;
                j -= 1;
                state = if was_extend { 1 } else { 0 };
            }
            _ => {
                ops_rev.push(AlignOp::InsQuery);
                let was_extend = bt_f[i][k] == 1;
                i -= 1;
                state = if was_extend { 2 } else { 0 };
            }
        }
    }
    ops_rev.reverse();
    (score, ops_rev)
}

/// Compute alignment statistics by walking ops over the aligned ranges.
pub fn align_stats(query: &[u8], subject: &[u8], ops: &[AlignOp]) -> AlignStats {
    let mut st = AlignStats {
        length: ops.len(),
        ..Default::default()
    };
    let (mut qi, mut si) = (0usize, 0usize);
    let mut in_gap = false;
    for &op in ops {
        match op {
            AlignOp::Sub => {
                if query[qi] == subject[si] {
                    st.identities += 1;
                } else {
                    st.mismatches += 1;
                }
                qi += 1;
                si += 1;
                in_gap = false;
            }
            AlignOp::InsSubject => {
                if !in_gap {
                    st.gap_opens += 1;
                }
                st.gap_letters += 1;
                si += 1;
                in_gap = true;
            }
            AlignOp::InsQuery => {
                if !in_gap {
                    st.gap_opens += 1;
                }
                st.gap_letters += 1;
                qi += 1;
                in_gap = true;
            }
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::encode_nt_seq;

    fn nt() -> Scorer {
        Scorer::Nucleotide {
            reward: 1,
            penalty: -3,
        }
    }
    fn g() -> GapPenalties {
        GapPenalties::blastn()
    }

    #[test]
    fn xdrop_perfect_extension() {
        let q = encode_nt_seq(b"ACGTACGTACGT");
        let s = q.clone();
        let r = xdrop_extend(&q, &s, &nt(), g(), 20);
        assert_eq!(r.score, 12);
        assert_eq!((r.q_ext, r.s_ext), (12, 12));
    }

    #[test]
    fn xdrop_stops_at_junk() {
        let q = encode_nt_seq(b"ACGTACGTCCCCCCCC");
        let s = encode_nt_seq(b"ACGTACGTGGGGGGGG");
        let r = xdrop_extend(&q, &s, &nt(), g(), 6);
        assert_eq!(r.score, 8);
        assert_eq!((r.q_ext, r.s_ext), (8, 8));
    }

    #[test]
    fn xdrop_crosses_insertion() {
        // Subject has a 2-base insertion; with gaps the extension should
        // bridge it: 8 matches, gap(2) = −9, then 12 more matches.
        let q = encode_nt_seq(b"ACGTACGTTTGCATGCATGC");
        let s = encode_nt_seq(b"ACGTACGTGGTTGCATGCATGC");
        let r = xdrop_extend(&q, &s, &nt(), g(), 25);
        // Best: 20 matches − gap cost 9 = 11.
        assert_eq!(r.score, 20 - 9);
        assert_eq!(r.q_ext, 20);
        assert_eq!(r.s_ext, 22);
    }

    #[test]
    fn bidirectional_extension_covers_hsp() {
        let q = encode_nt_seq(b"TTTTACGTACGTACGTTTTT");
        let s = encode_nt_seq(b"GGGGACGTACGTACGTGGGG");
        // Anchor inside the common core.
        let (score, qr, sr) = extend_gapped(&q, &s, 8, 8, &nt(), g(), 8);
        assert_eq!(score, 12);
        assert_eq!(qr, 4..16);
        assert_eq!(sr, 4..16);
    }

    #[test]
    fn banded_global_identity() {
        let q = encode_nt_seq(b"ACGTACGT");
        let (score, ops) = banded_global(&q, &q, &nt(), g(), 4);
        assert_eq!(score, 8);
        assert!(ops.iter().all(|&o| o == AlignOp::Sub));
        let st = align_stats(&q, &q, &ops);
        assert_eq!(st.identities, 8);
        assert_eq!(st.mismatches, 0);
        assert_eq!(st.gap_opens, 0);
    }

    #[test]
    fn banded_global_with_gap() {
        let q = encode_nt_seq(b"ACGTACGT");
        let s = encode_nt_seq(b"ACGTTACGT"); // one inserted T in subject
        let (score, ops) = banded_global(&q, &s, &nt(), g(), 4);
        assert_eq!(score, 8 - 7); // 8 matches − gap(1)
        let st = align_stats(&q, &s, &ops);
        assert_eq!(st.identities, 8);
        assert_eq!(st.gap_opens, 1);
        assert_eq!(st.gap_letters, 1);
        assert_eq!(st.length, 9);
    }

    #[test]
    fn banded_global_mismatch_vs_gap_choice() {
        let q = encode_nt_seq(b"AAAATTTT");
        let s = encode_nt_seq(b"AAAACTTT");
        let (score, ops) = banded_global(&q, &s, &nt(), g(), 4);
        // One mismatch (−3) beats two gaps (−14): 7 − 3 = 4.
        assert_eq!(score, 4);
        let st = align_stats(&q, &s, &ops);
        assert_eq!(st.mismatches, 1);
        assert_eq!(st.identities, 7);
    }

    #[test]
    fn empty_inputs() {
        let q = encode_nt_seq(b"ACG");
        let (score, ops) = banded_global(&q, &[], &nt(), g(), 2);
        assert_eq!(ops.len(), 3);
        assert_eq!(score, -(5 + 2 * 3));
        let r = xdrop_extend(&[], &q, &nt(), g(), 10);
        assert_eq!(r.score, 0);
    }
}
