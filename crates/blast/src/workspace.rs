//! Flat, reusable per-scan state for the seed-scanning hot path.
//!
//! The scanner tracks per-diagonal state (last extension end, last seed
//! position) keyed by the NCBI-style offset diagonal `diag = s - q + qlen`
//! ∈ `[0, qlen + slen]`. A `HashMap<i64, _>` there costs a hash + probe
//! per seed hit and reallocates per subject; [`DiagTracker`] is the flat
//! replacement — one array slot per diagonal, validated by an epoch
//! counter so moving to the next subject is O(1) instead of a clear.

/// Epoch-validated flat map from diagonal index to a `u32` value, with
/// `HashMap::get`/`insert` semantics. Reused across subjects via
/// [`DiagTracker::begin`].
#[derive(Debug, Default)]
pub struct DiagTracker {
    epoch: Vec<u32>,
    val: Vec<u32>,
    cur: u32,
}

impl DiagTracker {
    /// Empty tracker; arrays grow to the widest subject seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new scan over `ndiags` diagonals: all slots read as empty.
    pub fn begin(&mut self, ndiags: usize) {
        if self.val.len() < ndiags {
            self.val.resize(ndiags, 0);
            self.epoch.resize(ndiags, 0);
        }
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            // Epoch wrapped after 2^32 scans: hard-clear once so stale
            // epoch-0 entries can't read as current.
            self.epoch.fill(0);
            self.cur = 1;
        }
    }

    /// Value stored for diagonal `d` in the current scan, if any.
    #[inline]
    pub fn get(&self, d: usize) -> Option<u32> {
        if self.epoch[d] == self.cur {
            Some(self.val[d])
        } else {
            None
        }
    }

    /// Store `v` for diagonal `d`.
    #[inline]
    pub fn set(&mut self, d: usize, v: u32) {
        self.epoch[d] = self.cur;
        self.val[d] = v;
    }

    /// Store `v` for diagonal `d`, returning the previously stored value
    /// (the `HashMap::insert` return contract).
    #[inline]
    pub fn replace(&mut self, d: usize, v: u32) -> Option<u32> {
        let prev = self.get(d);
        self.set(d, v);
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tracker_matches_hashmap_semantics() {
        let mut t = DiagTracker::new();
        let mut m: HashMap<usize, u32> = HashMap::new();
        t.begin(64);
        let ops = [(3usize, 7u32), (3, 9), (10, 1), (63, 2), (10, 4)];
        for (d, v) in ops {
            assert_eq!(t.get(d), m.get(&d).copied(), "get before insert {d}");
            assert_eq!(t.replace(d, v), m.insert(d, v), "insert {d}");
        }
        // New scan: everything reads empty again without clearing.
        t.begin(64);
        for d in [3usize, 10, 63] {
            assert_eq!(t.get(d), None, "stale value survived begin() at {d}");
        }
    }

    #[test]
    fn tracker_grows_between_scans() {
        let mut t = DiagTracker::new();
        t.begin(4);
        t.set(3, 5);
        t.begin(100);
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(99), None);
        t.set(99, 1);
        assert_eq!(t.get(99), Some(1));
    }
}
