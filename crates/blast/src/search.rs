//! The BLAST search pipeline: word hits → ungapped X-drop extension →
//! (optionally) gapped X-drop extension → E-value filtering → reporting.
//!
//! Nucleotide searches (blastn) scan both query strands with exact-word
//! seeds and one-hit triggering; protein searches (blastp and the
//! translated programs) use the 3-mer neighborhood lookup with two-hit
//! triggering on a diagonal, like NCBI BLAST 2.x.

use parblast_seqdb::{reverse_complement, unpack_2bit_into, PackedVolume, SeqType, Volume};

use crate::dust::{dust_mask, DustParams};
use crate::extend::extend_ungapped;
use crate::gapped::{align_stats, banded_global, extend_gapped_with, GappedWorkspace};
use crate::karlin::{gapped_params, scorer_params, KarlinParams};
use crate::lookup::{AaLookup, BatchedNtLookup, MaskedContext, NtLookup, MAX_BATCH_CONTEXTS};
use crate::matrix::{GapPenalties, Scorer};
use crate::report::{Hit, Hsp};
use crate::translate::six_frames;
use crate::workspace::DiagTracker;

/// Which BLAST program to run (§2.1 of the paper lists all five).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Program {
    /// Nucleotide query vs nucleotide database.
    Blastn,
    /// Protein query vs protein database.
    Blastp,
    /// Translated nucleotide query vs protein database.
    Blastx,
    /// Protein query vs translated nucleotide database.
    Tblastn,
    /// Translated query vs translated database (ungapped, like NCBI).
    Tblastx,
}

/// Whole-database statistics used for E-values. mpiBLAST passes the *full*
/// database figures even when a worker searches a single fragment, so that
/// E-values are identical to an unsegmented search — we do the same.
#[derive(Debug, Clone, Copy)]
pub struct DbStats {
    /// Total residues in the database.
    pub residues: u64,
    /// Number of sequences.
    pub nseq: u64,
}

/// Search parameters.
#[derive(Debug, Clone)]
pub struct SearchParams {
    /// Scoring system.
    pub scorer: Scorer,
    /// Affine gap penalties.
    pub gaps: GapPenalties,
    /// Word size (blastn 11, protein 3).
    pub word_size: usize,
    /// Protein neighborhood threshold T.
    pub neighbor_threshold: i32,
    /// Two-hit window A (0 = one-hit triggering).
    pub two_hit_window: usize,
    /// Ungapped X-drop, raw score units.
    pub x_drop_ungapped: i32,
    /// Gapped X-drop, raw score units.
    pub x_drop_gapped: i32,
    /// Bit-score threshold that triggers a gapped extension.
    pub gap_trigger_bits: f64,
    /// E-value report cutoff.
    pub evalue: f64,
    /// Perform gapped extensions.
    pub gapped: bool,
    /// DUST low-complexity query masking (blastn only; `None` disables).
    /// Soft masking: masked regions seed nothing but extensions may cross
    /// them — NCBI blastn's 2003 default behaviour.
    pub dust: Option<DustParams>,
    /// Keep at most this many hits (by best E-value).
    pub max_hits: usize,
}

impl SearchParams {
    /// blastn defaults as used in the paper's era (W=11, +1/−3, gap 5/2).
    pub fn blastn() -> Self {
        SearchParams {
            scorer: Scorer::Nucleotide {
                reward: 1,
                penalty: -3,
            },
            gaps: GapPenalties::blastn(),
            word_size: 11,
            neighbor_threshold: 0,
            two_hit_window: 0,
            x_drop_ungapped: 16,
            x_drop_gapped: 30,
            gap_trigger_bits: 25.0,
            evalue: 10.0,
            gapped: true,
            dust: Some(DustParams::default()),
            max_hits: 500,
        }
    }

    /// blastp defaults (W=3, T=11, BLOSUM62, gap 11/1, two-hit A=40).
    pub fn blastp() -> Self {
        SearchParams {
            scorer: Scorer::Blosum62,
            gaps: GapPenalties::blastp(),
            word_size: 3,
            neighbor_threshold: 11,
            two_hit_window: 40,
            x_drop_ungapped: 7,
            x_drop_gapped: 15,
            gap_trigger_bits: 22.0,
            evalue: 10.0,
            gapped: true,
            dust: None,
            max_hits: 500,
        }
    }
}

pub(crate) struct StatsCtx {
    pub(crate) ungapped: KarlinParams,
    pub(crate) gapped: KarlinParams,
    pub(crate) space: f64,
    pub(crate) gap_trigger_raw: i32,
    pub(crate) cutoff_raw: i32,
}

pub(crate) fn stats_ctx(params: &SearchParams, query_len: usize, db: DbStats) -> StatsCtx {
    let ungapped = scorer_params(&params.scorer).expect("scoring system has valid statistics");
    let gapped = gapped_params(&params.scorer, params.gaps).unwrap_or(ungapped);
    let reporting = if params.gapped { gapped } else { ungapped };
    let space = reporting.search_space(query_len as u64, db.residues, db.nseq);
    // Raw score that reaches gap_trigger bits under ungapped stats.
    let gap_trigger_raw = ((params.gap_trigger_bits * std::f64::consts::LN_2 + ungapped.k.ln())
        / ungapped.lambda)
        .ceil() as i32;
    // Raw score whose E-value equals the cutoff (quick pre-filter).
    let cutoff_raw = ((params.evalue / (reporting.k * space)).ln() / -reporting.lambda)
        .ceil()
        .max(1.0) as i32;
    StatsCtx {
        ungapped,
        gapped,
        space,
        gap_trigger_raw,
        cutoff_raw,
    }
}

/// One query context: a residue string plus its frame annotation.
pub(crate) struct QueryCtx {
    pub(crate) codes: Vec<u8>,
    pub(crate) frame: i8,
}

/// Candidate HSP in context coordinates.
#[derive(Clone)]
pub(crate) struct Candidate {
    pub(crate) score: i32,
    pub(crate) q_range: std::ops::Range<usize>,
    pub(crate) s_range: std::ops::Range<usize>,
    pub(crate) q_frame: i8,
    pub(crate) s_frame: i8,
    pub(crate) gapped: bool,
}

/// Reusable per-thread scratch for [`search_volume_with`] /
/// [`search_packed_with`]: flat diagonal trackers, the lazy subject-unpack
/// buffer, candidate lists, and the gapped-DP rows. One workspace serves
/// any number of searches — subjects, fragments, and batched queries all
/// recycle the same memory, so the per-subject scan path performs no heap
/// allocation at all.
#[derive(Default)]
pub struct ScanWorkspace {
    diag_end: DiagTracker,
    last_hit: DiagTracker,
    subject: Vec<u8>,
    subject_valid: bool,
    unpacks: u64,
    cands: Vec<Candidate>,
    kept: Vec<Candidate>,
    gapped: GappedWorkspace,
}

impl ScanWorkspace {
    /// Empty workspace; buffers grow to the largest subject seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many subject unpacks this workspace has performed (lifetime
    /// count). In the sequential per-query path every query that seeds a
    /// given subject re-unpacks it; the batched path shares one unpack —
    /// the engine bench asserts the drop.
    pub fn unpacks(&self) -> u64 {
        self.unpacks
    }
}

/// Most queries one fused kernel pass can serve: each blastn query brings
/// two strand contexts and the batched lookup holds
/// [`MAX_BATCH_CONTEXTS`] contexts. Larger batches are chunked
/// transparently by [`search_packed_batch_with`].
pub const MAX_FUSED_BATCH: usize = MAX_BATCH_CONTEXTS / 2;

/// Per-context scratch for the fused batched scan: its own diagonal
/// tracker (diagonal redundancy is a per-context notion) and its own
/// candidate list (so the interleaved fused scan can be demuxed back into
/// exactly the sequential per-context candidate order).
#[derive(Default)]
struct CtxScratch {
    diag_end: DiagTracker,
    cands: Vec<Candidate>,
}

/// Reusable scratch for [`search_packed_batch_with`]: per-context diagonal
/// trackers and candidate lists, ONE shared subject-unpack buffer for the
/// whole batch, and shared gapped-DP rows. Like [`ScanWorkspace`], one
/// workspace serves any number of batches and grows to the largest
/// subject/batch seen.
#[derive(Default)]
pub struct BatchScanWorkspace {
    ctx: Vec<CtxScratch>,
    subject: Vec<u8>,
    unpacks: u64,
    merged: Vec<Candidate>,
    kept: Vec<Candidate>,
    gapped: GappedWorkspace,
    /// Fallback scratch for programs without a fused kernel (everything
    /// but blastn), which run the sequential per-query path.
    solo: ScanWorkspace,
}

impl BatchScanWorkspace {
    /// Empty workspace; buffers grow to the largest batch seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many subject unpacks this workspace has performed (lifetime
    /// count, including any sequential-fallback searches).
    pub fn unpacks(&self) -> u64 {
        self.unpacks + self.solo.unpacks
    }
}

/// A nucleotide subject in either representation the scanner accepts.
#[derive(Clone, Copy)]
enum SubjectRef<'a> {
    /// Decoded codes, one residue per byte.
    Codes(&'a [u8]),
    /// 2-bit packed bytes plus residue count.
    Packed { bytes: &'a [u8], len: usize },
}

impl SubjectRef<'_> {
    fn len(&self) -> usize {
        match self {
            SubjectRef::Codes(c) => c.len(),
            SubjectRef::Packed { len, .. } => *len,
        }
    }
}

/// Search one subject (one frame) with one nucleotide query context. For
/// packed subjects the codes are unpacked lazily into `ws.subject` on the
/// first seed hit — subjects that never seed are scanned entirely in
/// packed form.
fn scan_nt_context(
    lookup: &NtLookup,
    qctx: &QueryCtx,
    subject: SubjectRef<'_>,
    s_frame: i8,
    params: &SearchParams,
    st: &StatsCtx,
    ws: &mut ScanWorkspace,
) {
    let query = &qctx.codes;
    let qlen = query.len();
    ws.diag_end.begin(qlen + subject.len() + 1);
    match subject {
        SubjectRef::Codes(codes) => {
            lookup.scan(codes, |qp, sp| {
                nt_hit(
                    query,
                    codes,
                    qp as usize,
                    sp as usize,
                    lookup.word,
                    qctx.frame,
                    s_frame,
                    params,
                    st,
                    &mut ws.diag_end,
                    &mut ws.gapped,
                    &mut ws.cands,
                );
            });
        }
        SubjectRef::Packed { bytes, len } => {
            lookup.scan_packed(bytes, len, |qp, sp| {
                if !ws.subject_valid {
                    unpack_2bit_into(bytes, len, &mut ws.subject);
                    ws.subject_valid = true;
                    ws.unpacks += 1;
                }
                nt_hit(
                    query,
                    &ws.subject,
                    qp as usize,
                    sp as usize,
                    lookup.word,
                    qctx.frame,
                    s_frame,
                    params,
                    st,
                    &mut ws.diag_end,
                    &mut ws.gapped,
                    &mut ws.cands,
                );
            });
        }
    }
}

/// One nucleotide seed hit: diagonal-redundancy check, ungapped extension,
/// candidate emission. Mirrors the pre-workspace kernel exactly, with the
/// diagonal `HashMap` replaced by the flat tracker (`diag = s − q + qlen`).
#[allow(clippy::too_many_arguments)]
#[inline]
fn nt_hit(
    query: &[u8],
    subject: &[u8],
    qp: usize,
    sp: usize,
    word: usize,
    q_frame: i8,
    s_frame: i8,
    params: &SearchParams,
    st: &StatsCtx,
    diag_end: &mut DiagTracker,
    gws: &mut GappedWorkspace,
    out: &mut Vec<Candidate>,
) {
    let diag = sp + query.len() - qp;
    if let Some(end) = diag_end.get(diag) {
        if sp < end as usize {
            return;
        }
    }
    let hsp = extend_ungapped(
        query,
        subject,
        qp,
        sp,
        word,
        &params.scorer,
        params.x_drop_ungapped,
    );
    diag_end.set(diag, hsp.s_end as u32);
    push_candidate(
        hsp,
        query,
        subject,
        q_frame,
        s_frame,
        params.gapped,
        params,
        st,
        gws,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn push_candidate(
    hsp: crate::extend::UngappedHsp,
    query: &[u8],
    subject: &[u8],
    q_frame: i8,
    s_frame: i8,
    do_gapped: bool,
    params: &SearchParams,
    st: &StatsCtx,
    gws: &mut GappedWorkspace,
    out: &mut Vec<Candidate>,
) {
    if do_gapped && hsp.score >= st.gap_trigger_raw {
        // Anchor the gapped extension at the midpoint of the ungapped HSP.
        let mid = hsp.len() / 2;
        let (score, qr, sr) = extend_gapped_with(
            query,
            subject,
            hsp.q_start + mid,
            hsp.s_start + mid,
            &params.scorer,
            params.gaps,
            params.x_drop_gapped,
            gws,
        );
        if score >= st.cutoff_raw {
            out.push(Candidate {
                score,
                q_range: qr,
                s_range: sr,
                q_frame,
                s_frame,
                gapped: true,
            });
        }
    } else if hsp.score >= st.cutoff_raw {
        out.push(Candidate {
            score: hsp.score,
            q_range: hsp.q_start..hsp.q_end,
            s_range: hsp.s_start..hsp.s_end,
            q_frame,
            s_frame,
            gapped: false,
        });
    }
}

/// Search one subject (one frame) with one protein query context.
#[allow(clippy::too_many_arguments)]
fn scan_aa_context(
    lookup: &AaLookup,
    qctx: &QueryCtx,
    subject: &[u8],
    s_frame: i8,
    params: &SearchParams,
    st: &StatsCtx,
    do_gapped: bool,
    ws: &mut ScanWorkspace,
) {
    let query = &qctx.codes;
    let qlen = query.len();
    let ndiags = qlen + subject.len() + 1;
    ws.diag_end.begin(ndiags);
    ws.last_hit.begin(ndiags);
    let two_hit = params.two_hit_window;
    lookup.scan(subject, |qp, sp| {
        let (qp, sp) = (qp as usize, sp as usize);
        let diag = sp + qlen - qp;
        if let Some(end) = ws.diag_end.get(diag) {
            if sp < end as usize {
                return;
            }
        }
        if two_hit > 0 {
            let prev = ws.last_hit.replace(diag, sp as u32);
            let trigger = match prev {
                Some(p) => sp > p as usize && sp - p as usize <= two_hit,
                None => false,
            };
            if !trigger {
                return;
            }
        }
        let hsp = extend_ungapped(
            query,
            subject,
            qp,
            sp,
            lookup.word,
            &params.scorer,
            params.x_drop_ungapped,
        );
        ws.diag_end.set(diag, hsp.s_end as u32);
        push_candidate(
            hsp,
            query,
            subject,
            qctx.frame,
            s_frame,
            do_gapped,
            params,
            st,
            &mut ws.gapped,
            &mut ws.cands,
        );
    });
}

/// Annotate candidates into final HSPs: cull contained duplicates, compute
/// alignment statistics and E-values. `cands` and `kept` are workspace
/// buffers (consumed and reused); `subject_ctxs` maps each subject frame
/// to its decoded codes by linear search (at most six frames).
fn finalize(
    cands: &mut [Candidate],
    kept: &mut Vec<Candidate>,
    query_ctxs: &[QueryCtx],
    subject_ctxs: &[(i8, &[u8])],
    params: &SearchParams,
    st: &StatsCtx,
) -> Vec<Hsp> {
    cands.sort_by_key(|c| std::cmp::Reverse(c.score));
    kept.clear();
    'outer: for c in cands.iter() {
        for k in kept.iter() {
            if k.q_frame == c.q_frame
                && k.s_frame == c.s_frame
                && c.q_range.start >= k.q_range.start
                && c.q_range.end <= k.q_range.end
                && c.s_range.start >= k.s_range.start
                && c.s_range.end <= k.s_range.end
            {
                continue 'outer; // contained in a better HSP
            }
        }
        kept.push(c.clone());
    }
    let mut out = Vec::with_capacity(kept.len());
    for c in kept.iter() {
        let kp = if c.gapped { st.gapped } else { st.ungapped };
        let evalue = kp.evalue(c.score, st.space);
        if evalue > params.evalue {
            continue;
        }
        let qctx = query_ctxs
            .iter()
            .find(|q| q.frame == c.q_frame)
            .expect("query context");
        let subject = subject_ctxs
            .iter()
            .find(|(f, _)| *f == c.s_frame)
            .expect("subject context")
            .1;
        let qslice = &qctx.codes[c.q_range.clone()];
        let sslice = &subject[c.s_range.clone()];
        let (_, ops) = banded_global(qslice, sslice, &params.scorer, params.gaps, 16);
        let stats = align_stats(qslice, sslice, &ops);
        // Map minus-strand nucleotide query coordinates back to the
        // forward query (see module docs).
        let (q_start, q_end) = if c.q_frame == -1 && params.word_size > 3 {
            let m = qctx.codes.len();
            (m - c.q_range.end, m - c.q_range.start)
        } else {
            (c.q_range.start, c.q_range.end)
        };
        out.push(Hsp {
            score: c.score,
            bit_score: kp.bit_score(c.score),
            evalue,
            q_start,
            q_end,
            s_start: c.s_range.start,
            s_end: c.s_range.end,
            q_frame: c.q_frame,
            s_frame: c.s_frame,
            align_len: stats.length,
            identities: stats.identities,
            mismatches: stats.mismatches,
            gap_opens: stats.gap_opens,
        });
    }
    out.sort_by_key(|h| std::cmp::Reverse(h.score));
    out
}

/// Run `program` for one query over one database volume. Convenience
/// wrapper over [`search_volume_with`] with a throwaway workspace.
pub fn search_volume(
    program: Program,
    query: &[u8],
    volume: &Volume,
    params: &SearchParams,
    db: DbStats,
) -> Vec<Hit> {
    search_volume_with(
        program,
        query,
        volume,
        params,
        db,
        &mut ScanWorkspace::new(),
    )
}

/// [`search_volume`] with a caller-provided [`ScanWorkspace`], so repeated
/// searches (across fragments, worker-thread jobs, or batched queries)
/// reuse scan and DP buffers instead of reallocating them.
pub fn search_volume_with(
    program: Program,
    query: &[u8],
    volume: &Volume,
    params: &SearchParams,
    db: DbStats,
    ws: &mut ScanWorkspace,
) -> Vec<Hit> {
    match program {
        Program::Blastn => {
            assert_eq!(volume.seq_type, SeqType::Nucleotide, "blastn needs a nt db");
            search_blastn(query, NtSubjects::Decoded(volume), params, db, ws)
        }
        Program::Blastp => {
            assert_eq!(volume.seq_type, SeqType::Protein, "blastp needs an aa db");
            let ctxs = vec![QueryCtx {
                codes: query.to_vec(),
                frame: 1,
            }];
            search_protein(&ctxs, query.len(), volume, false, params, db, true, ws)
        }
        Program::Blastx => {
            assert_eq!(volume.seq_type, SeqType::Protein, "blastx needs an aa db");
            let ctxs: Vec<QueryCtx> = six_frames(query)
                .into_iter()
                .map(|f| QueryCtx {
                    codes: f.codes,
                    frame: f.frame,
                })
                .collect();
            let eff_len = query.len() / 3;
            search_protein(&ctxs, eff_len, volume, false, params, db, true, ws)
        }
        Program::Tblastn => {
            assert_eq!(
                volume.seq_type,
                SeqType::Nucleotide,
                "tblastn needs a nt db"
            );
            let ctxs = vec![QueryCtx {
                codes: query.to_vec(),
                frame: 1,
            }];
            search_protein(&ctxs, query.len(), volume, true, params, db, true, ws)
        }
        Program::Tblastx => {
            assert_eq!(
                volume.seq_type,
                SeqType::Nucleotide,
                "tblastx needs a nt db"
            );
            let ctxs: Vec<QueryCtx> = six_frames(query)
                .into_iter()
                .map(|f| QueryCtx {
                    codes: f.codes,
                    frame: f.frame,
                })
                .collect();
            let eff_len = query.len() / 3;
            // NCBI tblastx is ungapped-only.
            search_protein(&ctxs, eff_len, volume, true, params, db, false, ws)
        }
    }
}

/// Run `program` for one query over a packed volume. For blastn this is
/// the zero-decode hot path: the scanner reads 2-bit packed subject bytes
/// directly and only seed-hit subjects are unpacked. Other programs decode
/// the volume first (exactly what [`Volume::read_from`] used to do).
pub fn search_packed(
    program: Program,
    query: &[u8],
    volume: &PackedVolume,
    params: &SearchParams,
    db: DbStats,
) -> Vec<Hit> {
    search_packed_with(
        program,
        query,
        volume,
        params,
        db,
        &mut ScanWorkspace::new(),
    )
}

/// [`search_packed`] with a caller-provided reusable [`ScanWorkspace`].
pub fn search_packed_with(
    program: Program,
    query: &[u8],
    volume: &PackedVolume,
    params: &SearchParams,
    db: DbStats,
    ws: &mut ScanWorkspace,
) -> Vec<Hit> {
    match program {
        Program::Blastn => {
            assert_eq!(volume.seq_type, SeqType::Nucleotide, "blastn needs a nt db");
            search_blastn(query, NtSubjects::Packed(volume), params, db, ws)
        }
        _ => {
            let decoded = volume.to_volume();
            search_volume_with(program, query, &decoded, params, db, ws)
        }
    }
}

/// Run `program` for a whole batch of queries over one packed volume with
/// the fused multi-query kernel. Convenience wrapper over
/// [`search_packed_batch_with`] with a throwaway workspace.
pub fn search_packed_batch(
    program: Program,
    queries: &[&[u8]],
    volume: &PackedVolume,
    params: &SearchParams,
    db: DbStats,
) -> Vec<Vec<Hit>> {
    search_packed_batch_with(
        program,
        queries,
        volume,
        params,
        db,
        &mut BatchScanWorkspace::new(),
    )
}

/// [`search_packed_batch`] with a caller-provided reusable
/// [`BatchScanWorkspace`].
///
/// For blastn this is the fused hot path: the batch's seed tables are
/// merged into one [`BatchedNtLookup`] and the seed word rolls across the
/// packed volume bytes **once per fragment for the whole batch** instead
/// of once per query — scan cost is per-pass, extension cost stays
/// per-query. Batches larger than [`MAX_FUSED_BATCH`] queries are chunked.
/// Results are hit-for-hit identical to `queries.len()` sequential
/// [`search_packed_with`] calls: same candidates in the same insertion
/// order, so every downstream tie-break (stable score sort, containment
/// cull, E-value ranking) resolves identically.
///
/// Programs other than blastn have no fused kernel and fall back to the
/// sequential per-query path.
pub fn search_packed_batch_with(
    program: Program,
    queries: &[&[u8]],
    volume: &PackedVolume,
    params: &SearchParams,
    db: DbStats,
    ws: &mut BatchScanWorkspace,
) -> Vec<Vec<Hit>> {
    match program {
        Program::Blastn => {
            assert_eq!(volume.seq_type, SeqType::Nucleotide, "blastn needs a nt db");
            let mut out = Vec::with_capacity(queries.len());
            for chunk in queries.chunks(MAX_FUSED_BATCH) {
                out.extend(search_blastn_batch(chunk, volume, params, db, ws));
            }
            out
        }
        _ => queries
            .iter()
            .map(|q| search_packed_with(program, q, volume, params, db, &mut ws.solo))
            .collect(),
    }
}

/// One fused chunk (≤ [`MAX_FUSED_BATCH`] queries) of the batched blastn
/// search: one merged lookup, one rolled pass per subject, per-context
/// demux into the sequential candidate order.
fn search_blastn_batch(
    queries: &[&[u8]],
    volume: &PackedVolume,
    params: &SearchParams,
    db: DbStats,
    ws: &mut BatchScanWorkspace,
) -> Vec<Vec<Hit>> {
    let b = queries.len();
    if b == 0 {
        return Vec::new();
    }
    // Per-query statistics and strand contexts; context index `2q` is
    // query q's plus strand, `2q + 1` its minus strand — the order the
    // sequential path scans them.
    let stats: Vec<StatsCtx> = queries
        .iter()
        .map(|q| stats_ctx(params, q.len(), db))
        .collect();
    let ctxs: Vec<[QueryCtx; 2]> = queries
        .iter()
        .map(|q| {
            [
                QueryCtx {
                    codes: q.to_vec(),
                    frame: 1,
                },
                QueryCtx {
                    codes: reverse_complement(q),
                    frame: -1,
                },
            ]
        })
        .collect();
    let masks: Vec<Vec<(usize, usize)>> = ctxs
        .iter()
        .flat_map(|pair| pair.iter())
        .map(|c| {
            params
                .dust
                .map(|d| dust_mask(&c.codes, d))
                .unwrap_or_default()
        })
        .collect();
    let merged_ctxs: Vec<MaskedContext> = ctxs
        .iter()
        .flat_map(|pair| pair.iter())
        .zip(&masks)
        .map(|(c, m)| (c.codes.as_slice(), m.as_slice()))
        .collect();
    let lookup = BatchedNtLookup::build_masked(&merged_ctxs, params.word_size);

    if ws.ctx.len() < 2 * b {
        ws.ctx.resize_with(2 * b, CtxScratch::default);
    }
    // Split the workspace into disjoint field borrows once: the scan
    // closure needs the context scratch, the shared unpack buffer, and
    // the gapped rows simultaneously.
    let BatchScanWorkspace {
        ctx: ctx_ws,
        subject,
        unpacks,
        merged,
        kept,
        gapped,
        ..
    } = ws;

    let mut per_query: Vec<Vec<Hit>> = (0..b).map(|_| Vec::new()).collect();
    for si in 0..volume.nseq() {
        let bytes = volume.packed(si);
        let slen = volume.seq_len(si);
        let mut subject_valid = false;
        for (c, cs) in ctx_ws.iter_mut().enumerate().take(2 * b) {
            cs.cands.clear();
            cs.diag_end.begin(ctxs[c / 2][c % 2].codes.len() + slen + 1);
        }
        lookup.scan_packed_batched(bytes, slen, |ctx, qp, sp| {
            if !subject_valid {
                unpack_2bit_into(bytes, slen, subject);
                subject_valid = true;
                *unpacks += 1;
            }
            let c = ctx as usize;
            let qctx = &ctxs[c / 2][c % 2];
            let cs = &mut ctx_ws[c];
            nt_hit(
                &qctx.codes,
                subject,
                qp as usize,
                sp as usize,
                lookup.word,
                qctx.frame,
                qctx.frame, // s_frame mirrors the context, as sequentially
                params,
                &stats[c / 2],
                &mut cs.diag_end,
                gapped,
                &mut cs.cands,
            );
        });
        for (qi, hits) in per_query.iter_mut().enumerate() {
            // Reassemble this query's sequential candidate order: the
            // whole plus-strand scan precedes the whole minus-strand
            // scan, exactly as `search_blastn_range` appends them.
            merged.clear();
            merged.append(&mut ctx_ws[2 * qi].cands);
            merged.append(&mut ctx_ws[2 * qi + 1].cands);
            if merged.is_empty() {
                continue;
            }
            // Any candidate implies a seed hit, so the shared lazy
            // unpack has filled `subject` by now.
            let codes: &[u8] = subject;
            let subject_ctxs = [(1i8, codes), (-1i8, codes)];
            let hsps = finalize(merged, kept, &ctxs[qi], &subject_ctxs, params, &stats[qi]);
            if !hsps.is_empty() {
                hits.push(Hit {
                    subject_id: volume.id(si),
                    subject_index: si,
                    hsps,
                });
            }
        }
    }
    per_query
        .into_iter()
        .map(|hits| rank(hits, params.max_hits))
        .collect()
}

/// The blastn subject source: a decoded volume or a packed one.
#[derive(Clone, Copy)]
enum NtSubjects<'a> {
    Decoded(&'a Volume),
    Packed(&'a PackedVolume),
}

impl NtSubjects<'_> {
    fn nseq(&self) -> usize {
        match self {
            NtSubjects::Decoded(v) => v.sequences.len(),
            NtSubjects::Packed(p) => p.nseq(),
        }
    }

    fn id(&self, i: usize) -> String {
        match self {
            NtSubjects::Decoded(v) => v.sequences[i].id().to_string(),
            NtSubjects::Packed(p) => p.id(i),
        }
    }
}

/// Search only subjects `[range.start, range.end)` of a packed nucleotide
/// volume, returning **unranked** hits (blastn only). Per-subject scanning
/// is independent and the final ranking is a single sort over all hits, so
/// concatenating range results in subject order and applying [`rank_hits`]
/// once reproduces [`search_packed_with`] hit for hit — the property the
/// streaming scan path relies on: search subjects as their bytes arrive
/// through a [`parblast_seqdb::PackedVolumeStream`], rank at the end.
pub fn search_packed_range_with(
    query: &[u8],
    volume: &PackedVolume,
    range: std::ops::Range<usize>,
    params: &SearchParams,
    db: DbStats,
    ws: &mut ScanWorkspace,
) -> Vec<Hit> {
    assert_eq!(volume.seq_type, SeqType::Nucleotide, "blastn needs a nt db");
    search_blastn_range(query, NtSubjects::Packed(volume), range, params, db, ws)
}

/// The final ranking applied by every search entry point: sort by best
/// E-value (ties broken by score) and keep the top `max_hits`. Exposed so
/// range-searched hits can be merged and ranked exactly once.
pub fn rank_hits(hits: Vec<Hit>, max_hits: usize) -> Vec<Hit> {
    rank(hits, max_hits)
}

fn search_blastn(
    query: &[u8],
    subjects: NtSubjects<'_>,
    params: &SearchParams,
    db: DbStats,
    ws: &mut ScanWorkspace,
) -> Vec<Hit> {
    let nseq = subjects.nseq();
    let hits = search_blastn_range(query, subjects, 0..nseq, params, db, ws);
    rank(hits, params.max_hits)
}

fn search_blastn_range(
    query: &[u8],
    subjects: NtSubjects<'_>,
    range: std::ops::Range<usize>,
    params: &SearchParams,
    db: DbStats,
    ws: &mut ScanWorkspace,
) -> Vec<Hit> {
    let st = stats_ctx(params, query.len(), db);
    let ctxs = [
        QueryCtx {
            codes: query.to_vec(),
            frame: 1,
        },
        QueryCtx {
            codes: reverse_complement(query),
            frame: -1,
        },
    ];
    let lookups: Vec<NtLookup> = ctxs
        .iter()
        .map(|c| {
            let mask = params
                .dust
                .map(|d| dust_mask(&c.codes, d))
                .unwrap_or_default();
            NtLookup::build_masked(&c.codes, params.word_size, &mask)
        })
        .collect();
    let mut hits = Vec::new();
    for si in range {
        ws.cands.clear();
        ws.subject_valid = false;
        let sref = match subjects {
            NtSubjects::Decoded(v) => SubjectRef::Codes(&v.sequences[si].codes),
            NtSubjects::Packed(p) => SubjectRef::Packed {
                bytes: p.packed(si),
                len: p.seq_len(si),
            },
        };
        for (ctx, lk) in ctxs.iter().zip(&lookups) {
            // Minus-strand matches carry s_frame −1 (reported with
            // reversed subject coordinates, NCBI-style).
            let s_frame = ctx.frame;
            scan_nt_context(lk, ctx, sref, s_frame, params, &st, ws);
        }
        if ws.cands.is_empty() {
            continue; // hitless subject: never unpacked, nothing to report
        }
        // Any candidate implies at least one seed hit, so for the packed
        // path the lazy unpack has filled `ws.subject` by now.
        let codes: &[u8] = match subjects {
            NtSubjects::Decoded(v) => &v.sequences[si].codes,
            NtSubjects::Packed(_) => &ws.subject,
        };
        let subject_ctxs = [(1i8, codes), (-1i8, codes)];
        let hsps = finalize(
            &mut ws.cands,
            &mut ws.kept,
            &ctxs,
            &subject_ctxs,
            params,
            &st,
        );
        if !hsps.is_empty() {
            hits.push(Hit {
                subject_id: subjects.id(si),
                subject_index: si,
                hsps,
            });
        }
    }
    hits
}

#[allow(clippy::too_many_arguments)]
fn search_protein(
    query_ctxs: &[QueryCtx],
    eff_query_len: usize,
    volume: &Volume,
    translate_db: bool,
    params: &SearchParams,
    db: DbStats,
    gapped_allowed: bool,
    ws: &mut ScanWorkspace,
) -> Vec<Hit> {
    let db_eff = if translate_db {
        DbStats {
            residues: db.residues / 3,
            nseq: db.nseq,
        }
    } else {
        db
    };
    let st = stats_ctx(params, eff_query_len.max(1), db_eff);
    let lookups: Vec<AaLookup> = query_ctxs
        .iter()
        .map(|c| {
            AaLookup::build(
                &c.codes,
                params.word_size,
                &params.scorer,
                params.neighbor_threshold,
            )
        })
        .collect();
    let do_gapped = params.gapped && gapped_allowed;
    let mut hits = Vec::new();
    for (si, subject) in volume.sequences.iter().enumerate() {
        let translated;
        let subject_frames: Vec<(i8, &[u8])> = if translate_db {
            translated = six_frames(&subject.codes);
            translated
                .iter()
                .map(|f| (f.frame, f.codes.as_slice()))
                .collect()
        } else {
            vec![(1i8, subject.codes.as_slice())]
        };
        ws.cands.clear();
        for &(s_frame, scodes) in &subject_frames {
            for (ctx, lk) in query_ctxs.iter().zip(&lookups) {
                scan_aa_context(lk, ctx, scodes, s_frame, params, &st, do_gapped, ws);
            }
        }
        if ws.cands.is_empty() {
            continue;
        }
        let hsps = finalize(
            &mut ws.cands,
            &mut ws.kept,
            query_ctxs,
            &subject_frames,
            params,
            &st,
        );
        if !hsps.is_empty() {
            hits.push(Hit {
                subject_id: subject.id().to_string(),
                subject_index: si,
                hsps,
            });
        }
    }
    rank(hits, params.max_hits)
}

pub(crate) fn rank(mut hits: Vec<Hit>, max_hits: usize) -> Vec<Hit> {
    hits.sort_by(|a, b| {
        a.best_evalue()
            .partial_cmp(&b.best_evalue())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.best_score().cmp(&a.best_score()))
    });
    hits.truncate(max_hits);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::blastdb::DbSequence;
    use parblast_seqdb::{encode_aa_seq, encode_nt_seq};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn nt_volume(seqs: &[(&str, Vec<u8>)]) -> Volume {
        Volume {
            seq_type: SeqType::Nucleotide,
            sequences: seqs
                .iter()
                .map(|(d, c)| DbSequence {
                    defline: d.to_string(),
                    codes: c.clone(),
                })
                .collect(),
        }
    }

    fn random_nt(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..4u8)).collect()
    }

    fn db_stats(v: &Volume) -> DbStats {
        DbStats {
            residues: v.residues(),
            nseq: v.sequences.len() as u64,
        }
    }

    #[test]
    fn blastn_finds_planted_query() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut subject = random_nt(&mut rng, 5000);
        let query = random_nt(&mut rng, 568);
        subject.splice(2000..2000, query.iter().copied());
        let v = nt_volume(&[
            ("target seq", subject),
            ("decoy", random_nt(&mut rng, 5000)),
        ]);
        let hits = search_volume(
            Program::Blastn,
            &query,
            &v,
            &SearchParams::blastn(),
            db_stats(&v),
        );
        assert!(!hits.is_empty());
        assert_eq!(hits[0].subject_id, "target");
        let top = &hits[0].hsps[0];
        assert!(top.evalue < 1e-100);
        assert_eq!(top.q_start, 0);
        assert_eq!(top.q_end, 568);
        assert_eq!(top.s_start, 2000);
        assert_eq!(top.s_end, 2568);
        assert_eq!(top.identities, top.align_len);
    }

    #[test]
    fn blastn_finds_reverse_strand_match() {
        let mut rng = StdRng::seed_from_u64(2);
        let query = random_nt(&mut rng, 300);
        let rc = reverse_complement(&query);
        let mut subject = random_nt(&mut rng, 3000);
        subject.splice(1000..1000, rc.iter().copied());
        let v = nt_volume(&[("minus_target", subject)]);
        let hits = search_volume(
            Program::Blastn,
            &query,
            &v,
            &SearchParams::blastn(),
            db_stats(&v),
        );
        assert!(!hits.is_empty());
        let top = &hits[0].hsps[0];
        assert_eq!(top.q_frame, -1);
        assert_eq!(top.s_start, 1000);
        assert_eq!(top.s_end, 1300);
        assert_eq!((top.q_start, top.q_end), (0, 300));
    }

    #[test]
    fn blastn_tolerates_mutations() {
        let mut rng = StdRng::seed_from_u64(3);
        let query = random_nt(&mut rng, 568);
        let mut mutated = query.clone();
        // 5 % substitutions.
        for _ in 0..28 {
            let p = rng.random_range(0..mutated.len());
            mutated[p] = (mutated[p] + 1) & 3;
        }
        let mut subject = random_nt(&mut rng, 4000);
        subject.splice(500..500, mutated.iter().copied());
        let v = nt_volume(&[("m", subject)]);
        let hits = search_volume(
            Program::Blastn,
            &query,
            &v,
            &SearchParams::blastn(),
            db_stats(&v),
        );
        assert!(!hits.is_empty());
        let top = &hits[0].hsps[0];
        assert!(top.evalue < 1e-50);
        // Most of the query aligns.
        assert!(
            top.q_end - top.q_start > 500,
            "aligned {}",
            top.q_end - top.q_start
        );
        assert!(top.percent_identity() > 90.0);
    }

    #[test]
    fn blastn_bridges_an_indel() {
        let mut rng = StdRng::seed_from_u64(4);
        let query = random_nt(&mut rng, 400);
        let mut with_gap = query.clone();
        with_gap.splice(200..200, [0u8, 1, 2].iter().copied()); // 3-nt insertion
        let mut subject = random_nt(&mut rng, 2000);
        subject.splice(700..700, with_gap.iter().copied());
        let v = nt_volume(&[("g", subject)]);
        let hits = search_volume(
            Program::Blastn,
            &query,
            &v,
            &SearchParams::blastn(),
            db_stats(&v),
        );
        let top = &hits[0].hsps[0];
        assert!(top.gap_opens >= 1, "expected a gapped alignment");
        assert!(top.q_end - top.q_start > 380);
    }

    #[test]
    fn no_hits_in_unrelated_random_sequences() {
        let mut rng = StdRng::seed_from_u64(5);
        let query = random_nt(&mut rng, 568);
        let v = nt_volume(&[
            ("r1", random_nt(&mut rng, 3000)),
            ("r2", random_nt(&mut rng, 3000)),
        ]);
        let mut p = SearchParams::blastn();
        p.evalue = 1e-6; // strict cutoff: random 3 kb subjects can't pass
        let hits = search_volume(Program::Blastn, &query, &v, &p, db_stats(&v));
        assert!(hits.is_empty(), "false positives: {hits:?}");
    }

    #[test]
    fn blastp_finds_protein_match() {
        let q = encode_aa_seq(b"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQ");
        let mut subj = encode_aa_seq(b"GGGGGGGGGG");
        subj.extend_from_slice(&q);
        subj.extend(encode_aa_seq(b"PPPPPPPPPP"));
        let v = Volume {
            seq_type: SeqType::Protein,
            sequences: vec![
                DbSequence {
                    defline: "albumin fragment".into(),
                    codes: subj,
                },
                DbSequence {
                    defline: "junk".into(),
                    codes: encode_aa_seq(b"GAGAGAGAGAGAGAGAGAGAGAGAGAGA"),
                },
            ],
        };
        let hits = search_volume(
            Program::Blastp,
            &q,
            &v,
            &SearchParams::blastp(),
            db_stats(&v),
        );
        assert!(!hits.is_empty());
        assert_eq!(hits[0].subject_id, "albumin");
        let top = &hits[0].hsps[0];
        assert_eq!(top.s_start, 10);
        assert!(top.percent_identity() > 99.0);
    }

    #[test]
    fn blastx_finds_translated_match() {
        // Protein db contains the translation of the nt query's frame +2.
        let nt = encode_nt_seq(b"GATGAAATGGAAGCGTTGGTGCTGATTGCGTTTGCGCAGTATCTGCAACAG");
        let aa_frame2 = crate::translate::translate_frame(&nt, 1);
        let v = Volume {
            seq_type: SeqType::Protein,
            sequences: vec![DbSequence {
                defline: "protein target".into(),
                codes: aa_frame2.clone(),
            }],
        };
        let mut p = SearchParams::blastp();
        p.evalue = 1e3; // short test sequences
        let hits = search_volume(Program::Blastx, &nt, &v, &p, db_stats(&v));
        assert!(!hits.is_empty());
        assert_eq!(hits[0].hsps[0].q_frame, 2);
    }

    #[test]
    fn tblastn_finds_coding_region() {
        let protein = encode_aa_seq(b"MKWVTFISLLFLFSSAYSRGVFRRDAHKSE");
        // Reverse-translate via a codon per residue (pick any codon): easier
        // to build the nt subject from a known translation property — embed
        // the protein's coding sequence built from the translate table by
        // brute force.
        let mut nt = Vec::new();
        'aa: for &aa in &protein {
            for c1 in 0..4u8 {
                for c2 in 0..4u8 {
                    for c3 in 0..4u8 {
                        if crate::translate::translate_codon(c1, c2, c3) == aa {
                            nt.extend_from_slice(&[c1, c2, c3]);
                            continue 'aa;
                        }
                    }
                }
            }
            panic!("no codon for {aa}");
        }
        let mut subject = encode_nt_seq(b"CCCCCCCC");
        subject.extend_from_slice(&nt);
        subject.extend(encode_nt_seq(b"GGGGGGGG"));
        let v = nt_volume(&[("coding region", subject)]);
        let mut p = SearchParams::blastp();
        p.evalue = 1e3;
        let hits = search_volume(Program::Tblastn, &protein, &v, &p, db_stats(&v));
        assert!(!hits.is_empty());
        // The match is on some forward frame.
        assert!(hits[0].hsps[0].s_frame > 0);
    }

    #[test]
    fn tblastx_is_ungapped_but_finds_match() {
        let mut rng = StdRng::seed_from_u64(8);
        let core = random_nt(&mut rng, 240);
        let mut subject = random_nt(&mut rng, 600);
        subject.splice(300..300, core.iter().copied());
        let v = nt_volume(&[("tx", subject)]);
        let mut p = SearchParams::blastp();
        p.evalue = 1.0;
        let hits = search_volume(Program::Tblastx, &core, &v, &p, db_stats(&v));
        assert!(!hits.is_empty());
    }

    #[test]
    fn evalues_scale_with_database_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let query = random_nt(&mut rng, 100);
        let mut subject = random_nt(&mut rng, 1000);
        subject.splice(100..100, query.iter().copied());
        let v = nt_volume(&[("t", subject)]);
        let small = search_volume(
            Program::Blastn,
            &query,
            &v,
            &SearchParams::blastn(),
            DbStats {
                residues: 10_000,
                nseq: 10,
            },
        );
        let large = search_volume(
            Program::Blastn,
            &query,
            &v,
            &SearchParams::blastn(),
            DbStats {
                residues: 2_700_000_000,
                nseq: 1_760_000,
            },
        );
        let e_small = small[0].hsps[0].evalue;
        let e_large = large[0].hsps[0].evalue;
        assert!(
            e_large > e_small * 1e3,
            "e_small={e_small} e_large={e_large}"
        );
    }

    #[test]
    fn dust_suppresses_low_complexity_noise() {
        // A query that is half real signal, half poly-A, against subjects
        // full of poly-A runs: with DUST only the real signal seeds.
        let mut rng = StdRng::seed_from_u64(12);
        let signal = random_nt(&mut rng, 200);
        let mut query = signal.clone();
        query.extend(std::iter::repeat_n(0u8, 200)); // poly-A half
        let mut subject_noise = vec![0u8; 3000]; // pure poly-A subject
        subject_noise.extend(random_nt(&mut rng, 500));
        let mut subject_signal = random_nt(&mut rng, 1000);
        subject_signal.splice(400..400, signal.iter().copied());
        let v = nt_volume(&[("noise", subject_noise), ("signal", subject_signal)]);

        let mut with_dust = SearchParams::blastn();
        assert!(with_dust.dust.is_some(), "blastn defaults enable DUST");
        with_dust.evalue = 1e-6;
        let hits = search_volume(Program::Blastn, &query, &v, &with_dust, db_stats(&v));
        assert_eq!(hits.len(), 1, "only the real signal: {hits:?}");
        assert_eq!(hits[0].subject_id, "signal");

        let mut no_dust = with_dust.clone();
        no_dust.dust = None;
        let hits = search_volume(Program::Blastn, &query, &v, &no_dust, db_stats(&v));
        assert!(
            hits.iter().any(|h| h.subject_id == "noise"),
            "without DUST the poly-A subject matches: {hits:?}"
        );
    }

    #[test]
    fn dust_soft_masking_extends_through_repeats() {
        // An alignment straddling a masked region still extends through it
        // (soft masking): plant signal-A + poly-A + signal-B contiguously.
        let mut rng = StdRng::seed_from_u64(13);
        let mut region = random_nt(&mut rng, 150);
        region.extend(std::iter::repeat_n(0u8, 100));
        region.extend(random_nt(&mut rng, 150));
        let mut subject = random_nt(&mut rng, 2000);
        subject.splice(700..700, region.iter().copied());
        let v = nt_volume(&[("s", subject)]);
        let hits = search_volume(
            Program::Blastn,
            &region,
            &v,
            &SearchParams::blastn(),
            db_stats(&v),
        );
        let top = &hits[0].hsps[0];
        // The full 400-nt region aligns despite the masked middle.
        assert!(
            top.q_end - top.q_start >= 380,
            "aligned {}",
            top.q_end - top.q_start
        );
        assert_eq!(top.identities, top.align_len);
    }

    #[test]
    fn hits_are_ranked_by_evalue() {
        let mut rng = StdRng::seed_from_u64(10);
        let query = random_nt(&mut rng, 200);
        // Perfect copy vs half copy.
        let mut s1 = random_nt(&mut rng, 1000);
        s1.splice(0..0, query.iter().copied());
        let mut s2 = random_nt(&mut rng, 1000);
        s2.splice(0..0, query[..100].iter().copied());
        let v = nt_volume(&[("half", s2), ("full", s1)]);
        let hits = search_volume(
            Program::Blastn,
            &query,
            &v,
            &SearchParams::blastn(),
            db_stats(&v),
        );
        assert_eq!(hits[0].subject_id, "full");
        assert_eq!(hits[1].subject_id, "half");
    }

    #[test]
    fn batched_search_is_hit_for_hit_identical_to_sequential() {
        use parblast_seqdb::{extract_query, SyntheticConfig, SyntheticNt, VolumeWriter};

        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 60_000,
            seed: 33,
            ..Default::default()
        });
        let mut buf = std::io::Cursor::new(Vec::new());
        let mut w = VolumeWriter::new(&mut buf, SeqType::Nucleotide).unwrap();
        let mut sources = Vec::new();
        while let Some((d, c)) = g.next() {
            sources.push(c.clone());
            w.add_codes(&d, &c).unwrap();
        }
        w.finish().unwrap();
        let bytes = buf.into_inner();
        let packed = PackedVolume::read_from(&mut bytes.as_slice()).unwrap();
        let db = DbStats {
            residues: packed.residues(),
            nseq: packed.nseq() as u64,
        };
        let params = SearchParams::blastn();
        // A mix of planted queries (each hits a different subject, one on
        // the minus strand) and random misses; 10 queries forces the
        // MAX_FUSED_BATCH chunking path.
        let mut rng = StdRng::seed_from_u64(33);
        let queries: Vec<Vec<u8>> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    let q = extract_query(&sources[i % sources.len()], 300, 0.02, 33 + i as u64);
                    if i % 6 == 0 {
                        reverse_complement(&q)
                    } else {
                        q
                    }
                } else {
                    random_nt(&mut rng, 350)
                }
            })
            .collect();
        let refs: Vec<&[u8]> = queries.iter().map(|q| q.as_slice()).collect();

        let mut ws = ScanWorkspace::new();
        let sequential: Vec<Vec<Hit>> = refs
            .iter()
            .map(|q| search_packed_with(Program::Blastn, q, &packed, &params, db, &mut ws))
            .collect();
        assert!(
            sequential.iter().any(|h| !h.is_empty()),
            "vacuous comparison"
        );

        let mut bws = BatchScanWorkspace::new();
        let batched =
            search_packed_batch_with(Program::Blastn, &refs, &packed, &params, db, &mut bws);
        assert_eq!(
            format!("{sequential:?}"),
            format!("{batched:?}"),
            "fused batch must be hit-for-hit identical"
        );
        // The whole batch shares one unpack per seeded subject: strictly
        // fewer unpacks than the per-query path on this hit-heavy mix.
        assert!(
            bws.unpacks() < ws.unpacks(),
            "batched unpacks {} !< sequential {}",
            bws.unpacks(),
            ws.unpacks()
        );
    }

    #[test]
    fn batched_search_non_blastn_falls_back_to_sequential() {
        let q1 = encode_aa_seq(b"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQ");
        let q2 = encode_aa_seq(b"GAGAGAGAGAGAGAGA");
        let mut subj = encode_aa_seq(b"GGGGGGGGGG");
        subj.extend_from_slice(&q1);
        let v = Volume {
            seq_type: SeqType::Protein,
            sequences: vec![DbSequence {
                defline: "t".into(),
                codes: subj,
            }],
        };
        let packed = {
            let mut buf = std::io::Cursor::new(Vec::new());
            let mut w = parblast_seqdb::VolumeWriter::new(&mut buf, SeqType::Protein).unwrap();
            for s in &v.sequences {
                w.add_codes(&s.defline, &s.codes).unwrap();
            }
            w.finish().unwrap();
            let bytes = buf.into_inner();
            PackedVolume::read_from(&mut bytes.as_slice()).unwrap()
        };
        let params = SearchParams::blastp();
        let db = db_stats(&v);
        let refs: Vec<&[u8]> = vec![&q1, &q2];
        let batched = search_packed_batch(Program::Blastp, &refs, &packed, &params, db);
        let sequential: Vec<Vec<Hit>> = refs
            .iter()
            .map(|q| search_packed(Program::Blastp, q, &packed, &params, db))
            .collect();
        assert_eq!(format!("{sequential:?}"), format!("{batched:?}"));
        assert!(!batched[0].is_empty());
    }

    #[test]
    fn range_search_concatenated_and_ranked_equals_full_search() {
        use parblast_seqdb::{
            extract_query, PackedVolumeStream, SyntheticConfig, SyntheticNt, VolumeWriter,
        };

        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 80_000,
            seed: 21,
            ..Default::default()
        });
        let mut buf = std::io::Cursor::new(Vec::new());
        let mut w = VolumeWriter::new(&mut buf, SeqType::Nucleotide).unwrap();
        let mut query_src = None;
        let mut i = 0;
        while let Some((d, c)) = g.next() {
            if i == 2 {
                query_src = Some(c.clone());
            }
            w.add_codes(&d, &c).unwrap();
            i += 1;
        }
        w.finish().unwrap();
        let bytes = buf.into_inner();
        let packed = PackedVolume::read_from(&mut bytes.as_slice()).unwrap();
        let query = extract_query(&query_src.unwrap(), 400, 0.03, 21);
        let db = DbStats {
            residues: packed.residues(),
            nseq: packed.nseq() as u64,
        };
        let params = SearchParams::blastn();
        let full = search_packed(Program::Blastn, &query, &packed, &params, db);
        assert!(!full.is_empty(), "vacuous comparison");

        // Arbitrary subject split points, searched range by range with one
        // final rank.
        let mut ws = ScanWorkspace::new();
        let cuts = [0, 1, packed.nseq() / 2, packed.nseq()];
        let mut merged = Vec::new();
        for pair in cuts.windows(2) {
            merged.extend(search_packed_range_with(
                &query,
                &packed,
                pair[0]..pair[1],
                &params,
                db,
                &mut ws,
            ));
        }
        let merged = rank_hits(merged, params.max_hits);
        assert_eq!(format!("{full:?}"), format!("{merged:?}"), "split ranges");

        // The streaming consumption pattern: scan each subject the moment
        // its bytes arrive, rank once at the end.
        let mut src = bytes.as_slice();
        let mut stream = PackedVolumeStream::begin(&mut src).unwrap();
        let mut scanned = 0;
        let mut streamed = Vec::new();
        loop {
            let n = stream.feed(&mut src, 1536).unwrap();
            while scanned < stream.ready_seqs() {
                streamed.extend(search_packed_range_with(
                    &query,
                    stream.volume(),
                    scanned..scanned + 1,
                    &params,
                    db,
                    &mut ws,
                ));
                scanned += 1;
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(scanned, packed.nseq());
        let streamed = rank_hits(streamed, params.max_hits);
        assert_eq!(
            format!("{full:?}"),
            format!("{streamed:?}"),
            "streamed scan"
        );
    }
}
