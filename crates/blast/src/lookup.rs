//! Query word lookup tables.
//!
//! * [`NtLookup`] — blastn: exact `w`-mer matching via a direct-address
//!   table over the 2-bit alphabet (4^w cells, CSR-packed positions), the
//!   same structure NCBI's blastn scanner uses for its default `W=11`.
//! * [`AaLookup`] — blastp: 3-mer *neighborhood* lookup: every database
//!   word scoring ≥ T against some query word hits that query position.

use crate::dust::word_masked;
use crate::matrix::Scorer;

/// blastn exact-word lookup.
pub struct NtLookup {
    /// Word size (≤ 12 for the direct table).
    pub word: usize,
    mask: u32,
    /// Direct-address table: `0` = empty cell, else 1-based index into
    /// `ranges`. Allocated zeroed (so the kernel hands back untouched
    /// zero pages) and only the ~one-page-per-query-word cells are ever
    /// written — building never sweeps the 4^w cells, which is what made
    /// the old full-CSR prefix-sum build cost ~30 ms per query context.
    table: Vec<u32>,
    /// `[start, end)` slices of `positions`, one per non-empty cell.
    ranges: Vec<(u32, u32)>,
    positions: Vec<u32>,
    /// Presence bit vector (NCBI's `pv_array`): bit `c` set iff cell `c`
    /// has at least one query position. 4^11 bits = 512 KB vs the 16 MB
    /// `table`, so the almost-always-miss probe in the scan inner loop
    /// stays cache-resident. Only [`Self::scan_packed`] consults it;
    /// [`Self::scan`] is kept as the pre-optimization reference scanner.
    pv: Vec<u64>,
}

impl NtLookup {
    /// Build over a 2-bit-coded query (one "context"). Panics if `word`
    /// is 0 or > 12.
    pub fn build(query: &[u8], word: usize) -> Self {
        Self::build_masked(query, word, &[])
    }

    /// Build with soft masking: query words overlapping a masked interval
    /// produce no seeds (NCBI blastn's DUST behaviour).
    pub fn build_masked(query: &[u8], word: usize, mask: &[(usize, usize)]) -> Self {
        assert!(word > 0 && word <= 12, "word size must be 1..=12");
        let cells = 1usize << (2 * word);
        let code_mask = (cells - 1) as u32;
        // Collect (cell, qpos) once, then stable-sort by cell: work is
        // O(query) instead of O(4^w), and the stable sort preserves the
        // ascending-qpos order per cell the scanners emit.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(query.len());
        let mut w = 0u32;
        for (i, &c) in query.iter().enumerate() {
            w = ((w << 2) | c as u32) & code_mask;
            if i + 1 >= word && !word_masked(mask, i + 1 - word, word) {
                pairs.push((w, (i + 1 - word) as u32));
            }
        }
        pairs.sort_by_key(|&(cell, _)| cell);
        let mut table = vec![0u32; cells];
        let mut pv = vec![0u64; cells.div_ceil(64)];
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let mut positions = Vec::with_capacity(pairs.len());
        for &(cell, qpos) in &pairs {
            let c = cell as usize;
            if table[c] == 0 {
                ranges.push((positions.len() as u32, positions.len() as u32));
                table[c] = ranges.len() as u32;
                pv[c >> 6] |= 1u64 << (c & 63);
            }
            positions.push(qpos);
            ranges.last_mut().expect("just pushed").1 = positions.len() as u32;
        }
        NtLookup {
            word,
            mask: code_mask,
            table,
            ranges,
            positions,
            pv,
        }
    }

    /// Emit all hits for the rolled word `w` whose last residue is at
    /// subject index `i - 1`. The presence bit is checked first so the
    /// common no-hit case never touches the big direct table.
    #[inline(always)]
    fn probe<F: FnMut(u32, u32)>(&self, w: u32, i: usize, f: &mut F) {
        let cell = w as usize;
        if self.pv[cell >> 6] & (1u64 << (cell & 63)) == 0 {
            return;
        }
        let (lo, hi) = self.ranges[self.table[cell] as usize - 1];
        let spos = (i - self.word) as u32;
        for &qpos in &self.positions[lo as usize..hi as usize] {
            f(qpos, spos);
        }
    }

    /// Query positions whose `word`-mer equals `w`.
    #[inline]
    pub fn hits(&self, w: u32) -> &[u32] {
        let w = (w & self.mask) as usize;
        match self.table[w] {
            0 => &[],
            r => {
                let (lo, hi) = self.ranges[r as usize - 1];
                &self.positions[lo as usize..hi as usize]
            }
        }
    }

    /// Scan a 2-bit-coded subject, invoking `f(qpos, spos)` for every word
    /// hit.
    pub fn scan<F: FnMut(u32, u32)>(&self, subject: &[u8], mut f: F) {
        if subject.len() < self.word {
            return;
        }
        let mut w = 0u32;
        for (i, &c) in subject.iter().enumerate() {
            w = ((w << 2) | c as u32) & self.mask;
            if i + 1 >= self.word {
                let spos = (i + 1 - self.word) as u32;
                for &qpos in self.hits(w) {
                    f(qpos, spos);
                }
            }
        }
    }

    /// Scan a 2-bit *packed* subject (4 bases per byte, [`pack_2bit`]
    /// layout) of `nbases` residues, invoking `f(qpos, spos)` for every
    /// word hit — exactly the pairs [`Self::scan`] reports on the unpacked
    /// codes, in the same order. This is the blastn hot path: the seed
    /// word rolls across whole packed bytes so the subject never has to be
    /// expanded, and each candidate word is screened against the
    /// cache-resident presence bit vector so the big CSR arrays are only
    /// touched on a genuine hit (≈0.03% of probes for a 568-nt query at
    /// `W=11`).
    ///
    /// [`pack_2bit`]: parblast_seqdb::pack_2bit
    pub fn scan_packed<F: FnMut(u32, u32)>(&self, packed: &[u8], nbases: usize, mut f: F) {
        if nbases < self.word {
            return;
        }
        debug_assert!(packed.len() >= nbases.div_ceil(4));
        let mut w = 0u32;
        let mut i = 0usize; // residues consumed so far
        let full = nbases / 4;
        for &b in &packed[..full] {
            // Four rolled updates per byte, big-endian within the byte.
            for c in [(b >> 6) & 3, (b >> 4) & 3, (b >> 2) & 3, b & 3] {
                w = ((w << 2) | c as u32) & self.mask;
                i += 1;
                if i >= self.word {
                    self.probe(w, i, &mut f);
                }
            }
        }
        // Ragged tail: 1–3 residues in the final partial byte.
        for idx in full * 4..nbases {
            let c = (packed[idx / 4] >> (6 - 2 * (idx % 4))) & 3;
            w = ((w << 2) | c as u32) & self.mask;
            i += 1;
            if i >= self.word {
                self.probe(w, i, &mut f);
            }
        }
    }
}

/// Most contexts a [`BatchedNtLookup`] can merge: 8 queries × 2 strands.
/// The per-cell context tag is a `u16` bitmask, so this is a hard cap.
pub const MAX_BATCH_CONTEXTS: usize = 16;

/// One query context for a [`BatchedNtLookup`]: its 2-bit codes plus the
/// soft-mask intervals to exclude from seeding (empty slice = unmasked).
pub type MaskedContext<'a> = (&'a [u8], &'a [(usize, usize)]);

/// Fused multi-context blastn lookup: merges up to [`MAX_BATCH_CONTEXTS`]
/// query contexts (each query contributes a plus- and a minus-strand
/// context) into ONE direct-address table, so a single rolled pass over a
/// packed fragment serves the whole batch.
///
/// Layout mirrors [`NtLookup`] — direct table of 1-based `ranges`
/// indices, CSR-packed hit lists, 512 KB presence bit vector — with two
/// batch extensions:
///
/// * every hit-list entry is `(ctx, qpos)` so the scanner can demux each
///   seed to its owning context's diagonal tracker and extension stage;
/// * `ranges` is paired with a per-cell `ctx_masks` bitmask (bit `c` set
///   iff context `c` has at least one position in the cell). The merged
///   `pv` answers "does *anyone* want this word?" in one cache-resident
///   probe — the union of the B per-query vectors, which is the
///   "widened" presence structure: probe density grows with the batch
///   but the scan still rolls the word across the packed bytes exactly
///   once per fragment.
pub struct BatchedNtLookup {
    /// Word size (≤ 12, same direct-table cap as [`NtLookup`]).
    pub word: usize,
    mask: u32,
    nctx: usize,
    table: Vec<u32>,
    ranges: Vec<(u32, u32)>,
    /// `(ctx, qpos)` hit-list entries; within a cell, grouped by context
    /// ascending with ascending `qpos` inside each context — exactly the
    /// order B sequential per-context scans would report the cell's hits.
    entries: Vec<(u16, u32)>,
    /// Union presence bit vector over all merged contexts.
    pv: Vec<u64>,
    /// Per non-empty cell (parallel to `ranges`): bitmask of contexts
    /// with at least one position in the cell.
    ctx_masks: Vec<u16>,
}

impl BatchedNtLookup {
    /// Build over a batch of 2-bit-coded query contexts. Panics if `word`
    /// is 0 or > 12 or more than [`MAX_BATCH_CONTEXTS`] contexts are
    /// supplied.
    pub fn build(contexts: &[&[u8]], word: usize) -> Self {
        let masked: Vec<MaskedContext> = contexts.iter().map(|&c| (c, &[][..])).collect();
        Self::build_masked(&masked, word)
    }

    /// Build with per-context soft masking (same DUST semantics as
    /// [`NtLookup::build_masked`], applied context by context).
    pub fn build_masked(contexts: &[MaskedContext], word: usize) -> Self {
        assert!(word > 0 && word <= 12, "word size must be 1..=12");
        assert!(
            contexts.len() <= MAX_BATCH_CONTEXTS,
            "at most {MAX_BATCH_CONTEXTS} contexts per batched lookup"
        );
        let cells = 1usize << (2 * word);
        let code_mask = (cells - 1) as u32;
        // Collect (cell, ctx, qpos) once across the whole batch, then
        // stable-sort by cell: contexts are visited in order and each
        // context's positions ascend, so the per-cell entry order is
        // (ctx asc, qpos asc) — the sequential per-context scan order.
        let total: usize = contexts.iter().map(|(q, _)| q.len()).sum();
        let mut triples: Vec<(u32, u16, u32)> = Vec::with_capacity(total);
        for (ctx, (query, mask)) in contexts.iter().enumerate() {
            let mut w = 0u32;
            for (i, &c) in query.iter().enumerate() {
                w = ((w << 2) | c as u32) & code_mask;
                if i + 1 >= word && !word_masked(mask, i + 1 - word, word) {
                    triples.push((w, ctx as u16, (i + 1 - word) as u32));
                }
            }
        }
        triples.sort_by_key(|&(cell, _, _)| cell);
        let mut table = vec![0u32; cells];
        let mut pv = vec![0u64; cells.div_ceil(64)];
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let mut ctx_masks: Vec<u16> = Vec::new();
        let mut entries = Vec::with_capacity(triples.len());
        for &(cell, ctx, qpos) in &triples {
            let c = cell as usize;
            if table[c] == 0 {
                ranges.push((entries.len() as u32, entries.len() as u32));
                ctx_masks.push(0);
                table[c] = ranges.len() as u32;
                pv[c >> 6] |= 1u64 << (c & 63);
            }
            entries.push((ctx, qpos));
            ranges.last_mut().expect("just pushed").1 = entries.len() as u32;
            *ctx_masks.last_mut().expect("just pushed") |= 1u16 << ctx;
        }
        BatchedNtLookup {
            word,
            mask: code_mask,
            nctx: contexts.len(),
            table,
            ranges,
            entries,
            pv,
            ctx_masks,
        }
    }

    /// Number of merged contexts.
    #[inline]
    pub fn contexts(&self) -> usize {
        self.nctx
    }

    /// Context bitmask for word `w`: bit `c` set iff context `c` has at
    /// least one query position whose word equals `w`.
    #[inline]
    pub fn cell_mask(&self, w: u32) -> u16 {
        let cell = (w & self.mask) as usize;
        match self.table[cell] {
            0 => 0,
            r => self.ctx_masks[r as usize - 1],
        }
    }

    /// Emit all batch hits for the rolled word `w` whose last residue is
    /// at subject index `i - 1`, as `f(ctx, qpos, spos)`.
    #[inline(always)]
    fn probe<F: FnMut(u16, u32, u32)>(&self, w: u32, i: usize, f: &mut F) {
        let cell = w as usize;
        if self.pv[cell >> 6] & (1u64 << (cell & 63)) == 0 {
            return;
        }
        let (lo, hi) = self.ranges[self.table[cell] as usize - 1];
        let spos = (i - self.word) as u32;
        for &(ctx, qpos) in &self.entries[lo as usize..hi as usize] {
            f(ctx, qpos, spos);
        }
    }

    /// Scan a 2-bit packed subject of `nbases` residues ONCE for the
    /// whole batch, invoking `f(ctx, qpos, spos)` for every word hit of
    /// every merged context. For each context `c`, the subsequence of
    /// calls with `ctx == c` is exactly what that context's own
    /// [`NtLookup::scan_packed`] would report, in the same order — the
    /// fused pass is a strict interleaving of the B per-context scans.
    pub fn scan_packed_batched<F: FnMut(u16, u32, u32)>(
        &self,
        packed: &[u8],
        nbases: usize,
        mut f: F,
    ) {
        if nbases < self.word {
            return;
        }
        debug_assert!(packed.len() >= nbases.div_ceil(4));
        let mut w = 0u32;
        let mut i = 0usize;
        let full = nbases / 4;
        for &b in &packed[..full] {
            for c in [(b >> 6) & 3, (b >> 4) & 3, (b >> 2) & 3, b & 3] {
                w = ((w << 2) | c as u32) & self.mask;
                i += 1;
                if i >= self.word {
                    self.probe(w, i, &mut f);
                }
            }
        }
        for idx in full * 4..nbases {
            let c = (packed[idx / 4] >> (6 - 2 * (idx % 4))) & 3;
            w = ((w << 2) | c as u32) & self.mask;
            i += 1;
            if i >= self.word {
                self.probe(w, i, &mut f);
            }
        }
    }
}

/// blastp neighborhood lookup over 3-mers. Like [`NtLookup`], the table
/// is CSR-packed: one `starts` prefix-sum over the direct-address cells
/// plus one flat `positions` array, instead of a `Vec` allocation per
/// non-empty cell.
pub struct AaLookup {
    /// Word size (fixed 3 in practice; 2 allowed for tests).
    pub word: usize,
    alpha: usize,
    starts: Vec<u32>,
    positions: Vec<u32>,
}

impl AaLookup {
    /// Build over a protein query: cell for word `W` holds every query
    /// position whose word scores ≥ `threshold` against `W` (including the
    /// exact word itself if it passes).
    pub fn build(query: &[u8], word: usize, scorer: &Scorer, threshold: i32) -> Self {
        assert!(word == 2 || word == 3, "protein word size must be 2 or 3");
        let alpha = scorer.alphabet();
        let cells = alpha.pow(word as u32);
        let nwords = query.len().saturating_sub(word - 1);
        // For every query word, enumerate neighbor words scoring ≥ T.
        // 24^3 = 13824 candidates per query word: fine for real queries.
        // Collect (cell, qpos) pairs once, then counting-sort into CSR —
        // the stable fill preserves the ascending-qpos order per cell that
        // the old per-cell `Vec` pushes produced.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut stack_word = vec![0u8; word];
        for qpos in 0..nwords {
            let qw = &query[qpos..qpos + word];
            // Depth-first enumeration with score-bound pruning.
            enumerate_neighbors(
                qw,
                scorer,
                threshold,
                0,
                0,
                &mut stack_word,
                &mut |cell_word: &[u8]| {
                    let mut idx = 0usize;
                    for &c in cell_word {
                        idx = idx * alpha + c as usize;
                    }
                    pairs.push((idx as u32, qpos as u32));
                },
            );
        }
        let mut starts = vec![0u32; cells + 1];
        for &(cell, _) in &pairs {
            starts[cell as usize + 1] += 1;
        }
        for i in 1..=cells {
            starts[i] += starts[i - 1];
        }
        let mut positions = vec![0u32; pairs.len()];
        let mut cursor = starts.clone();
        for &(cell, qpos) in &pairs {
            positions[cursor[cell as usize] as usize] = qpos;
            cursor[cell as usize] += 1;
        }
        AaLookup {
            word,
            alpha,
            starts,
            positions,
        }
    }

    /// Query positions matching subject word starting at `sw`.
    #[inline]
    pub fn hits(&self, sw: &[u8]) -> &[u32] {
        let mut idx = 0usize;
        for &c in sw {
            idx = idx * self.alpha + c as usize;
        }
        &self.positions[self.starts[idx] as usize..self.starts[idx + 1] as usize]
    }

    /// Scan a protein subject, invoking `f(qpos, spos)` for every
    /// neighborhood hit.
    pub fn scan<F: FnMut(u32, u32)>(&self, subject: &[u8], mut f: F) {
        if subject.len() < self.word {
            return;
        }
        for spos in 0..=subject.len() - self.word {
            for &qpos in self.hits(&subject[spos..spos + self.word]) {
                f(qpos, spos as u32);
            }
        }
    }
}

/// Enumerate all words over the scorer's alphabet scoring ≥ `threshold`
/// against `qw`, with branch-and-bound pruning on the best possible
/// remaining score.
fn enumerate_neighbors(
    qw: &[u8],
    scorer: &Scorer,
    threshold: i32,
    depth: usize,
    score: i32,
    current: &mut [u8],
    emit: &mut impl FnMut(&[u8]),
) {
    if depth == qw.len() {
        if score >= threshold {
            emit(current);
        }
        return;
    }
    // Upper bound on the remaining positions: max matrix value (11 for
    // BLOSUM62's W–W) per position.
    let remaining_max = 11 * (qw.len() - depth - 1) as i32;
    for c in 0..scorer.alphabet() as u8 {
        let s = score + scorer.score(qw[depth], c);
        if s + remaining_max < threshold {
            continue;
        }
        current[depth] = c;
        enumerate_neighbors(qw, scorer, threshold, depth + 1, s, current, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::{encode_aa_seq, encode_nt_seq};

    #[test]
    fn nt_lookup_finds_exact_words() {
        let q = encode_nt_seq(b"ACGTACGTTT");
        let lk = NtLookup::build(&q, 4);
        // Word "ACGT" occurs at positions 0 and 4.
        let subject = encode_nt_seq(b"GGACGTGG");
        let mut hits = vec![];
        lk.scan(&subject, |qp, sp| hits.push((qp, sp)));
        assert_eq!(hits, vec![(0, 2), (4, 2)]);
    }

    #[test]
    fn nt_lookup_no_false_hits() {
        let q = encode_nt_seq(b"AAAAAAAA");
        let lk = NtLookup::build(&q, 6);
        let subject = encode_nt_seq(b"CCCCCCCCCC");
        let mut hits = 0;
        lk.scan(&subject, |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn nt_lookup_word_11_default() {
        // The blastn default word size used in the paper's searches.
        let q: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let lk = NtLookup::build(&q, 11);
        let mut hits = vec![];
        lk.scan(&q, |qp, sp| hits.push((qp, sp)));
        // Self-scan must include the diagonal (qp == sp) for every word.
        let diag = hits.iter().filter(|&&(q, s)| q == s).count();
        assert_eq!(diag, 64 - 10);
    }

    #[test]
    fn scan_packed_matches_scan_including_ragged_tails() {
        use parblast_seqdb::pack_2bit;
        for len in [7usize, 16, 33, 250, 255] {
            let subject: Vec<u8> = (0..len).map(|i| ((i * 31 + 7) % 4) as u8).collect();
            let q: Vec<u8> = (0..40).map(|i| ((i * 31 + 7) % 4) as u8).collect();
            for word in [4usize, 8, 11, 12] {
                let lk = NtLookup::build(&q, word);
                let mut a = vec![];
                lk.scan(&subject, |qp, sp| a.push((qp, sp)));
                let mut b = vec![];
                lk.scan_packed(&pack_2bit(&subject), len, |qp, sp| b.push((qp, sp)));
                assert_eq!(a, b, "len {len} word {word}");
                assert!(
                    word > 8 || len < word || !a.is_empty(),
                    "len {len} word {word}: vacuous comparison"
                );
            }
        }
    }

    #[test]
    fn scan_packed_subject_shorter_than_word() {
        let q = encode_nt_seq(b"ACGTACGTACGT");
        let lk = NtLookup::build(&q, 8);
        let mut hits = 0;
        let subj = encode_nt_seq(b"ACGTA");
        lk.scan_packed(&parblast_seqdb::pack_2bit(&subj), subj.len(), |_, _| {
            hits += 1
        });
        assert_eq!(hits, 0);
    }

    #[test]
    fn nt_subject_shorter_than_word() {
        let q = encode_nt_seq(b"ACGTACGTACGT");
        let lk = NtLookup::build(&q, 8);
        let mut hits = 0;
        lk.scan(&encode_nt_seq(b"ACG"), |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn batched_lookup_matches_per_context_scans() {
        use parblast_seqdb::pack_2bit;
        for len in [7usize, 16, 33, 250, 255] {
            let subject: Vec<u8> = (0..len).map(|i| ((i * 31 + 7) % 4) as u8).collect();
            let queries: Vec<Vec<u8>> = (0..5)
                .map(|q| {
                    (0..30 + q * 7)
                        .map(|i| ((i * 13 + q * 5 + 3) % 4) as u8)
                        .collect()
                })
                .collect();
            for word in [4usize, 8, 11] {
                let ctxs: Vec<&[u8]> = queries.iter().map(|q| q.as_slice()).collect();
                let blk = BatchedNtLookup::build(&ctxs, word);
                let mut fused: Vec<Vec<(u32, u32)>> = vec![vec![]; queries.len()];
                blk.scan_packed_batched(&pack_2bit(&subject), len, |ctx, qp, sp| {
                    fused[ctx as usize].push((qp, sp))
                });
                for (ci, q) in queries.iter().enumerate() {
                    let lk = NtLookup::build(q, word);
                    let mut solo = vec![];
                    lk.scan_packed(&pack_2bit(&subject), len, |qp, sp| solo.push((qp, sp)));
                    assert_eq!(fused[ci], solo, "len {len} word {word} ctx {ci}");
                }
            }
        }
    }

    #[test]
    fn batched_lookup_cell_masks_track_contexts() {
        let a = encode_nt_seq(b"ACGTACGT");
        let b = encode_nt_seq(b"ACGTTTTT");
        let blk = BatchedNtLookup::build(&[&a, &b], 4);
        assert_eq!(blk.contexts(), 2);
        // "ACGT" (cell 0b00011011) occurs in both; "TTTT" only in b;
        // "GGGG" in neither.
        let code = |s: &[u8]| -> u32 {
            encode_nt_seq(s)
                .iter()
                .fold(0u32, |w, &c| (w << 2) | c as u32)
        };
        assert_eq!(blk.cell_mask(code(b"ACGT")), 0b11);
        assert_eq!(blk.cell_mask(code(b"TTTT")), 0b10);
        assert_eq!(blk.cell_mask(code(b"GGGG")), 0);
    }

    #[test]
    #[should_panic(expected = "contexts per batched lookup")]
    fn batched_lookup_rejects_too_many_contexts() {
        let q = encode_nt_seq(b"ACGTACGT");
        let ctxs: Vec<&[u8]> = (0..MAX_BATCH_CONTEXTS + 1).map(|_| &q[..]).collect();
        let _ = BatchedNtLookup::build(&ctxs, 4);
    }

    #[test]
    fn aa_lookup_exact_word_hits_itself() {
        let q = encode_aa_seq(b"MKWVLAAR");
        let lk = AaLookup::build(&q, 3, &Scorer::Blosum62, 11);
        let mut hits = vec![];
        lk.scan(&q, |qp, sp| hits.push((qp, sp)));
        // Every position whose self-word scores ≥ 11 must self-hit.
        for qpos in 0..q.len() - 2 {
            let w = &q[qpos..qpos + 3];
            let self_score: i32 = w.iter().map(|&c| Scorer::Blosum62.score(c, c)).sum();
            if self_score >= 11 {
                assert!(
                    hits.contains(&(qpos as u32, qpos as u32)),
                    "missing self hit at {qpos}"
                );
            }
        }
    }

    #[test]
    fn aa_lookup_neighborhood_includes_similar_words() {
        // KKK vs RKK scores 2+5+5 = 12 ≥ 11 → neighbor.
        let q = encode_aa_seq(b"KKK");
        let lk = AaLookup::build(&q, 3, &Scorer::Blosum62, 11);
        let subj = encode_aa_seq(b"RKK");
        let mut hits = vec![];
        lk.scan(&subj, |qp, sp| hits.push((qp, sp)));
        assert_eq!(hits, vec![(0, 0)]);
        // But an unrelated word must not hit: GGG vs KKK = 3×(−2) = −6.
        let mut hits2 = 0;
        lk.scan(&encode_aa_seq(b"GGG"), |_, _| hits2 += 1);
        assert_eq!(hits2, 0);
    }

    #[test]
    fn aa_threshold_controls_neighborhood_size() {
        let q = encode_aa_seq(b"WWW");
        let loose = AaLookup::build(&q, 3, &Scorer::Blosum62, 8);
        let tight = AaLookup::build(&q, 3, &Scorer::Blosum62, 20);
        let count = |lk: &AaLookup| -> usize {
            (0..24u8)
                .flat_map(|a| (0..24u8).flat_map(move |b| (0..24u8).map(move |c| [a, b, c])))
                .map(|w| lk.hits(&w).len())
                .sum()
        };
        assert!(count(&loose) > count(&tight));
        assert!(count(&tight) >= 1); // WWW itself scores 33
    }
}
