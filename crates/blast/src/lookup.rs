//! Query word lookup tables.
//!
//! * [`NtLookup`] — blastn: exact `w`-mer matching via a direct-address
//!   table over the 2-bit alphabet (4^w cells, CSR-packed positions), the
//!   same structure NCBI's blastn scanner uses for its default `W=11`.
//! * [`AaLookup`] — blastp: 3-mer *neighborhood* lookup: every database
//!   word scoring ≥ T against some query word hits that query position.

use crate::dust::word_masked;
use crate::matrix::Scorer;

/// blastn exact-word lookup.
pub struct NtLookup {
    /// Word size (≤ 12 for the direct table).
    pub word: usize,
    mask: u32,
    starts: Vec<u32>,
    positions: Vec<u32>,
}

impl NtLookup {
    /// Build over a 2-bit-coded query (one "context"). Panics if `word`
    /// is 0 or > 12.
    pub fn build(query: &[u8], word: usize) -> Self {
        Self::build_masked(query, word, &[])
    }

    /// Build with soft masking: query words overlapping a masked interval
    /// produce no seeds (NCBI blastn's DUST behaviour).
    pub fn build_masked(query: &[u8], word: usize, mask: &[(usize, usize)]) -> Self {
        assert!(word > 0 && word <= 12, "word size must be 1..=12");
        let cells = 1usize << (2 * word);
        let code_mask = (cells - 1) as u32;
        let mut counts = vec![0u32; cells + 1];
        let mut w = 0u32;
        for (i, &c) in query.iter().enumerate() {
            w = ((w << 2) | c as u32) & code_mask;
            if i + 1 >= word && !word_masked(mask, i + 1 - word, word) {
                counts[w as usize + 1] += 1;
            }
        }
        for i in 1..=cells {
            counts[i] += counts[i - 1];
        }
        let mut positions = vec![0u32; *counts.last().unwrap() as usize];
        let mut cursor = counts.clone();
        let mut w = 0u32;
        for (i, &c) in query.iter().enumerate() {
            w = ((w << 2) | c as u32) & code_mask;
            if i + 1 >= word && !word_masked(mask, i + 1 - word, word) {
                let qpos = (i + 1 - word) as u32;
                positions[cursor[w as usize] as usize] = qpos;
                cursor[w as usize] += 1;
            }
        }
        NtLookup {
            word,
            mask: code_mask,
            starts: counts,
            positions,
        }
    }

    /// Query positions whose `word`-mer equals `w`.
    #[inline]
    pub fn hits(&self, w: u32) -> &[u32] {
        let w = (w & self.mask) as usize;
        &self.positions[self.starts[w] as usize..self.starts[w + 1] as usize]
    }

    /// Scan a 2-bit-coded subject, invoking `f(qpos, spos)` for every word
    /// hit.
    pub fn scan<F: FnMut(u32, u32)>(&self, subject: &[u8], mut f: F) {
        if subject.len() < self.word {
            return;
        }
        let mut w = 0u32;
        for (i, &c) in subject.iter().enumerate() {
            w = ((w << 2) | c as u32) & self.mask;
            if i + 1 >= self.word {
                let spos = (i + 1 - self.word) as u32;
                for &qpos in self.hits(w) {
                    f(qpos, spos);
                }
            }
        }
    }
}

/// blastp neighborhood lookup over 3-mers.
pub struct AaLookup {
    /// Word size (fixed 3 in practice; 2 allowed for tests).
    pub word: usize,
    alpha: usize,
    table: Vec<Vec<u32>>,
}

impl AaLookup {
    /// Build over a protein query: cell for word `W` holds every query
    /// position whose word scores ≥ `threshold` against `W` (including the
    /// exact word itself if it passes).
    pub fn build(query: &[u8], word: usize, scorer: &Scorer, threshold: i32) -> Self {
        assert!(word == 2 || word == 3, "protein word size must be 2 or 3");
        let alpha = scorer.alphabet();
        let cells = alpha.pow(word as u32);
        let mut table = vec![Vec::new(); cells];
        let nwords = query.len().saturating_sub(word - 1);
        // For every query word, enumerate neighbor words scoring ≥ T.
        // 24^3 = 13824 candidates per query word: fine for real queries.
        let mut stack_word = vec![0u8; word];
        for qpos in 0..nwords {
            let qw = &query[qpos..qpos + word];
            // Depth-first enumeration with score-bound pruning.
            enumerate_neighbors(
                qw,
                scorer,
                threshold,
                0,
                0,
                &mut stack_word,
                &mut |cell_word: &[u8]| {
                    let mut idx = 0usize;
                    for &c in cell_word {
                        idx = idx * alpha + c as usize;
                    }
                    table[idx].push(qpos as u32);
                },
            );
        }
        AaLookup { word, alpha, table }
    }

    /// Query positions matching subject word starting at `sw`.
    #[inline]
    pub fn hits(&self, sw: &[u8]) -> &[u32] {
        let mut idx = 0usize;
        for &c in sw {
            idx = idx * self.alpha + c as usize;
        }
        &self.table[idx]
    }

    /// Scan a protein subject, invoking `f(qpos, spos)` for every
    /// neighborhood hit.
    pub fn scan<F: FnMut(u32, u32)>(&self, subject: &[u8], mut f: F) {
        if subject.len() < self.word {
            return;
        }
        for spos in 0..=subject.len() - self.word {
            for &qpos in self.hits(&subject[spos..spos + self.word]) {
                f(qpos, spos as u32);
            }
        }
    }
}

/// Enumerate all words over the scorer's alphabet scoring ≥ `threshold`
/// against `qw`, with branch-and-bound pruning on the best possible
/// remaining score.
fn enumerate_neighbors(
    qw: &[u8],
    scorer: &Scorer,
    threshold: i32,
    depth: usize,
    score: i32,
    current: &mut [u8],
    emit: &mut impl FnMut(&[u8]),
) {
    if depth == qw.len() {
        if score >= threshold {
            emit(current);
        }
        return;
    }
    // Upper bound on the remaining positions: max matrix value (11 for
    // BLOSUM62's W–W) per position.
    let remaining_max = 11 * (qw.len() - depth - 1) as i32;
    for c in 0..scorer.alphabet() as u8 {
        let s = score + scorer.score(qw[depth], c);
        if s + remaining_max < threshold {
            continue;
        }
        current[depth] = c;
        enumerate_neighbors(qw, scorer, threshold, depth + 1, s, current, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::{encode_aa_seq, encode_nt_seq};

    #[test]
    fn nt_lookup_finds_exact_words() {
        let q = encode_nt_seq(b"ACGTACGTTT");
        let lk = NtLookup::build(&q, 4);
        // Word "ACGT" occurs at positions 0 and 4.
        let subject = encode_nt_seq(b"GGACGTGG");
        let mut hits = vec![];
        lk.scan(&subject, |qp, sp| hits.push((qp, sp)));
        assert_eq!(hits, vec![(0, 2), (4, 2)]);
    }

    #[test]
    fn nt_lookup_no_false_hits() {
        let q = encode_nt_seq(b"AAAAAAAA");
        let lk = NtLookup::build(&q, 6);
        let subject = encode_nt_seq(b"CCCCCCCCCC");
        let mut hits = 0;
        lk.scan(&subject, |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn nt_lookup_word_11_default() {
        // The blastn default word size used in the paper's searches.
        let q: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let lk = NtLookup::build(&q, 11);
        let mut hits = vec![];
        lk.scan(&q, |qp, sp| hits.push((qp, sp)));
        // Self-scan must include the diagonal (qp == sp) for every word.
        let diag = hits.iter().filter(|&&(q, s)| q == s).count();
        assert_eq!(diag, 64 - 10);
    }

    #[test]
    fn nt_subject_shorter_than_word() {
        let q = encode_nt_seq(b"ACGTACGTACGT");
        let lk = NtLookup::build(&q, 8);
        let mut hits = 0;
        lk.scan(&encode_nt_seq(b"ACG"), |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn aa_lookup_exact_word_hits_itself() {
        let q = encode_aa_seq(b"MKWVLAAR");
        let lk = AaLookup::build(&q, 3, &Scorer::Blosum62, 11);
        let mut hits = vec![];
        lk.scan(&q, |qp, sp| hits.push((qp, sp)));
        // Every position whose self-word scores ≥ 11 must self-hit.
        for qpos in 0..q.len() - 2 {
            let w = &q[qpos..qpos + 3];
            let self_score: i32 = w.iter().map(|&c| Scorer::Blosum62.score(c, c)).sum();
            if self_score >= 11 {
                assert!(
                    hits.contains(&(qpos as u32, qpos as u32)),
                    "missing self hit at {qpos}"
                );
            }
        }
    }

    #[test]
    fn aa_lookup_neighborhood_includes_similar_words() {
        // KKK vs RKK scores 2+5+5 = 12 ≥ 11 → neighbor.
        let q = encode_aa_seq(b"KKK");
        let lk = AaLookup::build(&q, 3, &Scorer::Blosum62, 11);
        let subj = encode_aa_seq(b"RKK");
        let mut hits = vec![];
        lk.scan(&subj, |qp, sp| hits.push((qp, sp)));
        assert_eq!(hits, vec![(0, 0)]);
        // But an unrelated word must not hit: GGG vs KKK = 3×(−2) = −6.
        let mut hits2 = 0;
        lk.scan(&encode_aa_seq(b"GGG"), |_, _| hits2 += 1);
        assert_eq!(hits2, 0);
    }

    #[test]
    fn aa_threshold_controls_neighborhood_size() {
        let q = encode_aa_seq(b"WWW");
        let loose = AaLookup::build(&q, 3, &Scorer::Blosum62, 8);
        let tight = AaLookup::build(&q, 3, &Scorer::Blosum62, 20);
        let count = |lk: &AaLookup| -> usize {
            (0..24u8)
                .flat_map(|a| (0..24u8).flat_map(move |b| (0..24u8).map(move |c| [a, b, c])))
                .map(|w| lk.hits(&w).len())
                .sum()
        };
        assert!(count(&loose) > count(&tight));
        assert!(count(&tight) >= 1); // WWW itself scores 33
    }
}
