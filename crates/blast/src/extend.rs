//! Ungapped X-drop extension (the first BLAST stage after a word hit).
//!
//! From a seed word match the alignment is extended residue-by-residue in
//! both directions along the diagonal; each direction stops once the
//! running score falls more than `x_drop` below the best seen. Returns the
//! maximal-scoring ungapped segment (HSP) containing the seed.

use crate::matrix::Scorer;

/// An ungapped high-scoring segment pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UngappedHsp {
    /// Raw score.
    pub score: i32,
    /// Query start (inclusive).
    pub q_start: usize,
    /// Query end (exclusive).
    pub q_end: usize,
    /// Subject start (inclusive).
    pub s_start: usize,
    /// Subject end (exclusive).
    pub s_end: usize,
}

impl UngappedHsp {
    /// Alignment length.
    pub fn len(&self) -> usize {
        self.q_end - self.q_start
    }

    /// True for degenerate empty segments.
    pub fn is_empty(&self) -> bool {
        self.q_end == self.q_start
    }

    /// Diagonal (subject − query).
    pub fn diagonal(&self) -> i64 {
        self.s_start as i64 - self.q_start as i64
    }
}

/// Extend a seed of `seed_len` residues at `(qpos, spos)` in both
/// directions with X-drop `x_drop` (raw-score units).
pub fn extend_ungapped(
    query: &[u8],
    subject: &[u8],
    qpos: usize,
    spos: usize,
    seed_len: usize,
    scorer: &Scorer,
    x_drop: i32,
) -> UngappedHsp {
    debug_assert!(qpos + seed_len <= query.len());
    debug_assert!(spos + seed_len <= subject.len());
    let seed_score: i32 = (0..seed_len)
        .map(|i| scorer.score(query[qpos + i], subject[spos + i]))
        .sum();

    // Rightward from the end of the seed.
    let mut best = seed_score;
    let mut run = seed_score;
    let mut best_right = seed_len; // offset past qpos
    {
        let mut i = seed_len;
        while qpos + i < query.len() && spos + i < subject.len() {
            run += scorer.score(query[qpos + i], subject[spos + i]);
            i += 1;
            if run > best {
                best = run;
                best_right = i;
            } else if run <= best - x_drop {
                break;
            }
        }
    }

    // Leftward from the start of the seed.
    let mut run_left = best;
    let mut best_total = best;
    let mut best_left = 0usize; // residues extended left of qpos
    {
        let mut i = 0usize;
        while qpos > i && spos > i {
            run_left += scorer.score(query[qpos - i - 1], subject[spos - i - 1]);
            i += 1;
            if run_left > best_total {
                best_total = run_left;
                best_left = i;
            } else if run_left <= best_total - x_drop {
                break;
            }
        }
    }

    // Trim: the maximal segment may start after low-scoring prefix inside
    // the seed; BLAST keeps the seed-containing segment, which is what the
    // two passes above produce.
    UngappedHsp {
        score: best_total,
        q_start: qpos - best_left,
        q_end: qpos + best_right,
        s_start: spos - best_left,
        s_end: spos + best_right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::encode_nt_seq;

    fn nt() -> Scorer {
        Scorer::Nucleotide {
            reward: 1,
            penalty: -3,
        }
    }

    #[test]
    fn perfect_match_extends_fully() {
        let q = encode_nt_seq(b"ACGTACGTACGTACGT");
        let s = q.clone();
        // Seed at position 6, length 4.
        let h = extend_ungapped(&q, &s, 6, 6, 4, &nt(), 20);
        assert_eq!(h.q_start, 0);
        assert_eq!(h.q_end, 16);
        assert_eq!(h.score, 16);
        assert_eq!(h.diagonal(), 0);
    }

    #[test]
    fn extension_stops_at_mismatch_wall() {
        // 8 matching bases then pure mismatches on both sides.
        let q = encode_nt_seq(b"CCCCACGTACGTCCCC");
        let s = encode_nt_seq(b"GGGGACGTACGTGGGG");
        let h = extend_ungapped(&q, &s, 4, 4, 4, &nt(), 6);
        assert_eq!((h.q_start, h.q_end), (4, 12));
        assert_eq!(h.score, 8);
    }

    #[test]
    fn xdrop_tolerates_isolated_mismatch() {
        // Match run, one mismatch, longer match run: with a generous
        // X-drop the extension crosses the mismatch.
        let q = encode_nt_seq(b"ACGTACGTAACGTACGTACG");
        let mut s = q.clone();
        s[10] = (s[10] + 1) & 3; // single mismatch at 10
        let h = extend_ungapped(&q, &s, 0, 0, 4, &nt(), 10);
        assert_eq!(h.q_start, 0);
        assert_eq!(h.q_end, 20);
        assert_eq!(h.score, 19 - 3); // 19 matches, 1 mismatch
    }

    #[test]
    fn small_xdrop_stops_at_mismatch() {
        let q = encode_nt_seq(b"ACGTACGTAACGTACGTACG");
        let mut s = q.clone();
        s[10] = (s[10] + 1) & 3;
        // X-drop 3 < mismatch penalty of 3+? running drop after mismatch
        // is 3, needs (run <= best - x): with x=3 the drop of exactly 3
        // stops only if no recovery first; use x=2 to force the stop.
        let h = extend_ungapped(&q, &s, 0, 0, 4, &nt(), 2);
        assert_eq!(h.q_end, 10);
        assert_eq!(h.score, 10);
    }

    #[test]
    fn respects_sequence_bounds() {
        let q = encode_nt_seq(b"ACGT");
        let s = encode_nt_seq(b"TTACGTTT");
        let h = extend_ungapped(&q, &s, 0, 2, 4, &nt(), 10);
        assert_eq!((h.q_start, h.q_end), (0, 4));
        assert_eq!((h.s_start, h.s_end), (2, 6));
        assert_eq!(h.score, 4);
    }

    #[test]
    fn seed_at_origin() {
        let q = encode_nt_seq(b"ACGTAAAA");
        let s = encode_nt_seq(b"ACGTCCCC");
        let h = extend_ungapped(&q, &s, 0, 0, 4, &nt(), 3);
        assert_eq!(h.q_start, 0);
        assert_eq!(h.score, 4);
    }
}
