//! Karlin–Altschul statistics: λ, K and H for an ungapped scoring system,
//! plus E-values, bit scores and effective search-space computation.
//!
//! λ is the positive root of `Σ p(s)·e^{λs} = 1` (Newton/bisection).
//! H is the relative entropy `λ·Σ s·p(s)·e^{λs}`.
//! K follows Karlin & Altschul (1990): with σ = Σ_{k≥1} (1/k)·
//! [P(S_k ≥ 0) + E(e^{λS_k}; S_k < 0)] over k-fold convolutions of the
//! score distribution and δ the score lattice span,
//! `K = λδ·e^{-2σ} / (H·(1 − e^{-λδ}))` — the same computation NCBI's
//! `blast_stat.c` performs.
//!
//! Gapped searches use NCBI's published parameter table for the standard
//! parameter combinations (the values cannot be derived analytically); any
//! unlisted combination conservatively falls back to the ungapped values.

use crate::matrix::{GapPenalties, Scorer};

/// Statistical parameters of a scoring system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinParams {
    /// Scale parameter λ (nats per score unit).
    pub lambda: f64,
    /// Karlin-Altschul K.
    pub k: f64,
    /// Relative entropy H (nats per aligned pair).
    pub h: f64,
}

/// Compute ungapped Karlin parameters from a score distribution
/// `(lo, probs)` where `probs[i]` is the probability of score `lo + i`.
/// Returns `None` when the expected score is non-negative or no positive
/// score exists (statistics undefined).
pub fn ungapped_params(lo: i32, probs: &[f64]) -> Option<KarlinParams> {
    let score = |i: usize| lo + i as i32;
    let mean: f64 = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| score(i) as f64 * p)
        .sum();
    let has_positive = probs
        .iter()
        .enumerate()
        .any(|(i, &p)| p > 0.0 && score(i) > 0);
    if mean >= 0.0 || !has_positive || lo >= 0 {
        return None;
    }

    // λ: root of f(λ) = Σ p e^{λs} − 1 on (0, ∞); f(0)=0, f'(0)=mean<0,
    // f(∞)=∞ → unique positive root. Bracket by doubling, then bisect.
    let f = |lambda: f64| -> f64 {
        probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * (lambda * score(i) as f64).exp())
            .sum::<f64>()
            - 1.0
    };
    let mut hi = 0.5;
    while f(hi) < 0.0 {
        hi *= 2.0;
        if hi > 1e4 {
            return None;
        }
    }
    let mut lo_l = 0.0;
    let mut hi_l = hi;
    for _ in 0..200 {
        let mid = 0.5 * (lo_l + hi_l);
        if f(mid) < 0.0 {
            lo_l = mid;
        } else {
            hi_l = mid;
        }
    }
    let lambda = 0.5 * (lo_l + hi_l);

    // H = λ Σ s p e^{λ s}.
    let av: f64 = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| score(i) as f64 * p * (lambda * score(i) as f64).exp())
        .sum();
    let h = lambda * av;

    // δ: gcd of scores with nonzero probability.
    let mut delta = 0u32;
    for (i, &p) in probs.iter().enumerate() {
        if p > 1e-15 && score(i) != 0 {
            delta = gcd(delta, score(i).unsigned_abs());
        }
    }
    let delta = delta.max(1) as i32;

    // σ via k-fold convolutions.
    let mut sigma = 0.0;
    let mut conv = probs.to_vec(); // distribution of S_1
    let mut conv_lo = lo;
    for k in 1..=60 {
        let mut term = 0.0;
        for (i, &p) in conv.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            let s = conv_lo + i as i32;
            if s >= 0 {
                term += p;
            } else {
                term += p * (lambda * s as f64).exp();
            }
        }
        sigma += term / k as f64;
        if term / (k as f64) < 1e-12 {
            break;
        }
        // Convolve with the base distribution for S_{k+1}.
        let mut next = vec![0.0; conv.len() + probs.len() - 1];
        for (i, &a) in conv.iter().enumerate() {
            if a <= 0.0 {
                continue;
            }
            for (j, &b) in probs.iter().enumerate() {
                next[i + j] += a * b;
            }
        }
        conv = next;
        conv_lo += lo;
        let _ = k;
    }

    let ld = lambda * delta as f64;
    let k_param = ld * (-2.0 * sigma).exp() / (h * (1.0 - (-ld).exp()));
    Some(KarlinParams {
        lambda,
        k: k_param,
        h,
    })
}

fn gcd(a: u32, b: u32) -> u32 {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

/// Ungapped parameters for a [`Scorer`].
pub fn scorer_params(scorer: &Scorer) -> Option<KarlinParams> {
    let (lo, probs) = scorer.score_distribution();
    ungapped_params(lo, &probs)
}

/// NCBI's published gapped parameters for the standard combinations used
/// in this workspace; falls back to the ungapped values otherwise (a
/// conservative approximation, documented in DESIGN.md).
pub fn gapped_params(scorer: &Scorer, gaps: GapPenalties) -> Option<KarlinParams> {
    match (scorer, gaps.open, gaps.extend) {
        (
            Scorer::Nucleotide {
                reward: 1,
                penalty: -3,
            },
            5,
            2,
        ) => Some(KarlinParams {
            lambda: 1.374,
            k: 0.711,
            h: 1.307,
        }),
        (
            Scorer::Nucleotide {
                reward: 1,
                penalty: -2,
            },
            5,
            2,
        ) => Some(KarlinParams {
            lambda: 1.28,
            k: 0.46,
            h: 0.85,
        }),
        (Scorer::Blosum62, 11, 1) => Some(KarlinParams {
            lambda: 0.267,
            k: 0.041,
            h: 0.14,
        }),
        _ => scorer_params(scorer),
    }
}

impl KarlinParams {
    /// Bit score of a raw score.
    pub fn bit_score(&self, raw: i32) -> f64 {
        (self.lambda * raw as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// E-value of a raw score over an effective search space.
    pub fn evalue(&self, raw: i32, search_space: f64) -> f64 {
        search_space * (-self.lambda * raw as f64).exp() * self.k
    }

    /// The BLAST length adjustment ("edge-effect correction"): iteratively
    /// solves `l = ln(K (m−l) (n − N·l)) / H`.
    pub fn length_adjustment(&self, m: u64, n: u64, nseq: u64) -> u64 {
        let (m, n, nseq) = (m as f64, n as f64, (nseq.max(1)) as f64);
        let mut l = 0.0;
        for _ in 0..8 {
            let em = (m - l).max(1.0);
            let en = (n - nseq * l).max(nseq);
            let next = (self.k * em * en).ln().max(0.0) / self.h;
            l = next.min(m - 1.0).max(0.0);
        }
        l as u64
    }

    /// Effective search space for query length `m` against a database of
    /// `n` total residues in `nseq` sequences.
    pub fn search_space(&self, m: u64, n: u64, nseq: u64) -> f64 {
        let l = self.length_adjustment(m, n, nseq);
        let em = m.saturating_sub(l).max(1) as f64;
        let en = n.saturating_sub(nseq * l).max(nseq.max(1)) as f64;
        em * en
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blastn_scorer() -> Scorer {
        Scorer::Nucleotide {
            reward: 1,
            penalty: -3,
        }
    }

    #[test]
    fn blastn_lambda_k_h_match_ncbi() {
        // NCBI reports λ=1.374, K=0.711, H=1.307 for +1/−3 at uniform
        // background.
        let p = scorer_params(&blastn_scorer()).unwrap();
        assert!((p.lambda - 1.374).abs() < 0.005, "lambda = {}", p.lambda);
        assert!((p.h - 1.307).abs() < 0.01, "H = {}", p.h);
        assert!((p.k - 0.711).abs() < 0.05, "K = {}", p.k);
    }

    #[test]
    fn plus_one_minus_two_params() {
        // Ungapped +1/−2 at uniform background: λ = ln(root of
        // 0.25x³ − x² + 0.75) ≈ 1.3327; K ≈ 0.62 (NCBI ungapped tables).
        let s = Scorer::Nucleotide {
            reward: 1,
            penalty: -2,
        };
        let p = scorer_params(&s).unwrap();
        assert!((p.lambda - 1.3327).abs() < 0.005, "lambda = {}", p.lambda);
        assert!((p.k - 0.62).abs() < 0.08, "K = {}", p.k);
    }

    #[test]
    fn blosum62_ungapped_params() {
        // NCBI: ungapped BLOSUM62 λ≈0.3176, K≈0.134, H≈0.40.
        let p = scorer_params(&Scorer::Blosum62).unwrap();
        assert!((p.lambda - 0.3176).abs() < 0.01, "lambda = {}", p.lambda);
        assert!((p.k - 0.134).abs() < 0.03, "K = {}", p.k);
        assert!((p.h - 0.40).abs() < 0.05, "H = {}", p.h);
    }

    #[test]
    fn positive_mean_has_no_params() {
        // Match-heavy scoring with positive expectation: undefined stats.
        assert!(ungapped_params(-1, &[0.1, 0.0, 0.9]).is_none());
    }

    #[test]
    fn evalue_decreases_with_score() {
        let p = scorer_params(&blastn_scorer()).unwrap();
        let space = 1e9;
        assert!(p.evalue(30, space) > p.evalue(40, space));
        assert!(p.evalue(100, space) < 1e-40);
    }

    #[test]
    fn bit_score_monotone_and_sane() {
        let p = scorer_params(&blastn_scorer()).unwrap();
        // For +1/−3, bit score ≈ raw × 1.98… roughly 2 bits per match.
        let b28 = p.bit_score(28);
        assert!(b28 > 50.0 && b28 < 60.0, "bits = {b28}");
        assert!(p.bit_score(29) > b28);
    }

    #[test]
    fn length_adjustment_reasonable() {
        let p = scorer_params(&blastn_scorer()).unwrap();
        // 568-nt query against a 2.7 GB database: adjustment is a few
        // dozen nt, far below the query length.
        let l = p.length_adjustment(568, 2_700_000_000, 1_760_000);
        assert!(l > 5 && l < 60, "l = {l}");
        let space = p.search_space(568, 2_700_000_000, 1_760_000);
        assert!(space > 1e11 && space < 2e12, "space = {space}");
    }

    #[test]
    fn gapped_table_hits_known_combos() {
        let g = gapped_params(&blastn_scorer(), GapPenalties::blastn()).unwrap();
        assert_eq!(g.lambda, 1.374);
        let b = gapped_params(&Scorer::Blosum62, GapPenalties::blastp()).unwrap();
        assert_eq!(b.lambda, 0.267);
        // Unknown combo falls back to ungapped.
        let other = gapped_params(
            &blastn_scorer(),
            GapPenalties {
                open: 100,
                extend: 100,
            },
        )
        .unwrap();
        assert!((other.lambda - 1.374).abs() < 0.005);
    }
}
