//! DUST-style low-complexity masking for nucleotide queries.
//!
//! 2003-era NCBI blastn filtered query regions of low compositional
//! complexity (poly-A runs, microsatellites) with DUST before seeding,
//! because such regions produce floods of statistically meaningless word
//! hits. This is a faithful simplification of the classic algorithm: a
//! sliding window is scored by its triplet-repeat content,
//! `S = Σ_t c_t (c_t − 1) / 2 / (n − 1)` over the 64 possible
//! trinucleotides (`c_t` = count of triplet `t`, `n` = triplets in the
//! window), and windows scoring above the threshold are masked.
//!
//! Masking is *soft*, as in NCBI blastn: masked positions produce no
//! seeds, but extensions may run through them.

/// DUST parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DustParams {
    /// Window length (classic DUST: 64).
    pub window: usize,
    /// Score threshold; higher = less masking (classic level-20 ≈ 2.0).
    pub threshold: f64,
}

impl Default for DustParams {
    fn default() -> Self {
        DustParams {
            window: 64,
            threshold: 2.0,
        }
    }
}

/// Triplet-repeat score of one window of 2-bit codes.
fn window_score(window: &[u8]) -> f64 {
    if window.len() < 4 {
        return 0.0;
    }
    let mut counts = [0u32; 64];
    let mut t = ((window[0] as usize) << 2) | window[1] as usize;
    for &c in &window[2..] {
        t = ((t << 2) | c as usize) & 0x3F;
        counts[t] += 1;
    }
    let n = (window.len() - 2) as f64;
    let repeats: f64 = counts
        .iter()
        .map(|&c| (c as f64) * (c as f64 - 1.0) / 2.0)
        .sum();
    repeats / (n - 1.0).max(1.0)
}

/// Compute masked intervals `[start, end)` of a 2-bit nucleotide sequence.
/// Overlapping/adjacent masked windows are merged.
pub fn dust_mask(seq: &[u8], params: DustParams) -> Vec<(usize, usize)> {
    let w = params.window.max(8);
    if seq.len() < 8 {
        return Vec::new();
    }
    let mut out: Vec<(usize, usize)> = Vec::new();
    let step = w / 2;
    let mut start = 0usize;
    while start < seq.len() {
        let end = (start + w).min(seq.len());
        if end - start >= 8 && window_score(&seq[start..end]) > params.threshold {
            match out.last_mut() {
                Some(last) if last.1 >= start => last.1 = end,
                _ => out.push((start, end)),
            }
        }
        if end == seq.len() {
            break;
        }
        start += step;
    }
    out
}

/// True when position `pos` falls inside any masked interval.
pub fn is_masked(mask: &[(usize, usize)], pos: usize) -> bool {
    mask.iter().any(|&(s, e)| pos >= s && pos < e)
}

/// True when the word `[pos, pos + word)` overlaps any masked interval.
pub fn word_masked(mask: &[(usize, usize)], pos: usize, word: usize) -> bool {
    mask.iter().any(|&(s, e)| pos < e && pos + word > s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::encode_nt_seq;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn poly_a_is_masked() {
        let seq = vec![0u8; 200]; // AAAA...
        let mask = dust_mask(&seq, DustParams::default());
        assert_eq!(mask.len(), 1);
        let (s, e) = mask[0];
        assert!(s == 0 && e >= 190, "mask {mask:?}");
    }

    #[test]
    fn dinucleotide_repeat_is_masked() {
        let seq = encode_nt_seq(&b"AT".repeat(100));
        let mask = dust_mask(&seq, DustParams::default());
        assert!(!mask.is_empty());
        assert!(is_masked(&mask, 100));
    }

    #[test]
    fn random_sequence_is_not_masked() {
        let mut rng = StdRng::seed_from_u64(5);
        let seq: Vec<u8> = (0..2000).map(|_| rng.random_range(0..4u8)).collect();
        let mask = dust_mask(&seq, DustParams::default());
        assert!(mask.is_empty(), "random seq masked: {mask:?}");
    }

    #[test]
    fn mixed_sequence_masks_only_the_repeat() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seq: Vec<u8> = (0..500).map(|_| rng.random_range(0..4u8)).collect();
        seq.extend(std::iter::repeat_n(2u8, 150)); // GGG... run
        seq.extend((0..500).map(|_| rng.random_range(0..4u8)));
        let mask = dust_mask(&seq, DustParams::default());
        assert!(!mask.is_empty());
        // The repeat is covered...
        assert!(is_masked(&mask, 560));
        // ...but most of the random flanks are not.
        let masked_len: usize = mask.iter().map(|&(s, e)| e - s).sum();
        assert!(masked_len < 350, "over-masking: {masked_len}");
        assert!(!is_masked(&mask, 100));
        assert!(!is_masked(&mask, 1000));
    }

    #[test]
    fn word_masking_detects_overlap() {
        let mask = vec![(10usize, 20usize)];
        assert!(word_masked(&mask, 5, 11)); // spans into the interval
        assert!(word_masked(&mask, 15, 4)); // inside
        assert!(!word_masked(&mask, 0, 10)); // ends exactly at start
        assert!(!word_masked(&mask, 20, 5)); // starts exactly at end
    }

    #[test]
    fn short_sequences_never_mask() {
        assert!(dust_mask(&[0, 0, 0], DustParams::default()).is_empty());
        assert!(dust_mask(&[], DustParams::default()).is_empty());
    }
}
