//! # parblast-blast
//!
//! A from-scratch implementation of the BLAST family of sequence-similarity
//! search programs (Altschul et al. 1990/1997), standing in for the NCBI
//! BLAST library the paper's mpiBLAST wraps:
//!
//! * `blastn` — nucleotide vs nucleotide (the program the paper benchmarks);
//! * `blastp` — protein vs protein (3-mer neighborhood, two-hit);
//! * `blastx`/`tblastn`/`tblastx` — translated searches via six-frame
//!   translation (§2.1 of the paper describes all five);
//! * Karlin-Altschul statistics (λ, K, H computed from first principles,
//!   matching NCBI's published constants) with E-values, bit scores, and
//!   length adjustment;
//! * ungapped and gapped X-drop extensions, banded-global traceback for
//!   percent-identity reporting, and `-m 8` tabular output.
//!
//! ```
//! use parblast_blast::{blastall, Program, SearchParams};
//! use parblast_seqdb::blastdb::DbSequence;
//! use parblast_seqdb::{encode_nt_seq, SeqType, Volume};
//!
//! let subject = encode_nt_seq(b"TTGACCTAGATAGCATCAGTTGACGAGCTAGCGGCGTACAAGCTAGCTAGCGGCTT");
//! let query = subject[8..40].to_vec();
//! let volume = Volume {
//!     seq_type: SeqType::Nucleotide,
//!     sequences: vec![DbSequence { defline: "subj1".into(), codes: subject }],
//! };
//! let mut params = SearchParams::blastn();
//! params.evalue = 1e3; // toy-sized sequences
//! let hits = blastall(Program::Blastn, &query, &volume, &params);
//! assert_eq!(hits[0].subject_id, "subj1");
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod dust;
pub mod extend;
pub mod gapped;
pub mod karlin;
pub mod lookup;
pub mod matrix;
pub mod report;
pub mod search;
pub mod translate;
pub mod workspace;

pub use dust::{dust_mask, is_masked, word_masked, DustParams};
pub use extend::{extend_ungapped, UngappedHsp};
pub use gapped::{
    align_stats, banded_global, extend_gapped, extend_gapped_with, xdrop_extend, xdrop_extend_with,
    AlignOp, AlignStats, GappedWorkspace,
};
pub use karlin::{gapped_params, scorer_params, ungapped_params, KarlinParams};
pub use lookup::{AaLookup, BatchedNtLookup, NtLookup, MAX_BATCH_CONTEXTS};
pub use matrix::{GapPenalties, Scorer, AA_BACKGROUND, BLOSUM62};
pub use report::{tabular, Hit, Hsp};
pub use search::{
    rank_hits, search_packed, search_packed_batch, search_packed_batch_with,
    search_packed_range_with, search_packed_with, search_volume, search_volume_with,
    BatchScanWorkspace, DbStats, Program, ScanWorkspace, SearchParams, MAX_FUSED_BATCH,
};
pub use translate::{six_frames, translate_codon, translate_frame, Frame};
pub use workspace::DiagTracker;

use parblast_seqdb::Volume;

/// Convenience entry point mirroring NCBI's `blastall` single interface
/// (§2.1): derives the database statistics from the volume itself.
pub fn blastall(
    program: Program,
    query: &[u8],
    volume: &Volume,
    params: &SearchParams,
) -> Vec<Hit> {
    let db = DbStats {
        residues: volume.residues(),
        nseq: volume.sequences.len() as u64,
    };
    search_volume(program, query, volume, params, db)
}
