//! Frozen pre-optimization blastn kernel, kept as the benchmark baseline.
//!
//! This is the kernel as it stood before the packed-scan rewrite: every
//! subject arrives fully decoded (one byte per residue), seeds come from
//! the byte-at-a-time scanner over a full-CSR prefix-sum lookup (rebuilt
//! with its two 16 MB sweeps for every query context), diagonals are
//! tracked in a per-subject `HashMap`, every gapped extension allocates
//! fresh DP rows, and `finalize` receives per-subject clones of the
//! subject codes. It
//! produces hit-for-hit identical output to [`crate::search_volume`] /
//! [`crate::search_packed`] — `bench --bin engine` verifies that and
//! measures the speedup, and `tests/determinism.rs` pins the shared
//! output. Not for production use; kept verbatim so the "pre-PR kernel"
//! in EXPERIMENTS.md stays measurable.

use std::collections::HashMap;

use parblast_seqdb::{reverse_complement, SeqType, Volume};

use crate::dust::{dust_mask, word_masked};
use crate::extend::extend_ungapped;
use crate::gapped::{align_stats, banded_global, extend_gapped};
use crate::report::{Hit, Hsp};
use crate::search::{rank, stats_ctx, Candidate, DbStats, QueryCtx, SearchParams, StatsCtx};

/// The pre-rewrite blastn lookup, frozen alongside the kernel: full-CSR
/// direct table built with a prefix-sum sweep over all 4^w cells (and a
/// 16 MB cursor clone) instead of the sparse sorted-pairs build, and no
/// presence bit vector in front of the `starts` probes.
struct BaselineNtLookup {
    word: usize,
    mask: u32,
    starts: Vec<u32>,
    positions: Vec<u32>,
}

impl BaselineNtLookup {
    fn build_masked(query: &[u8], word: usize, mask: &[(usize, usize)]) -> Self {
        assert!(word > 0 && word <= 12, "word size must be 1..=12");
        let cells = 1usize << (2 * word);
        let code_mask = (cells - 1) as u32;
        let mut counts = vec![0u32; cells + 1];
        let mut w = 0u32;
        for (i, &c) in query.iter().enumerate() {
            w = ((w << 2) | c as u32) & code_mask;
            if i + 1 >= word && !word_masked(mask, i + 1 - word, word) {
                counts[w as usize + 1] += 1;
            }
        }
        for i in 1..=cells {
            counts[i] += counts[i - 1];
        }
        let mut positions = vec![0u32; *counts.last().unwrap() as usize];
        let mut cursor = counts.clone();
        let mut w = 0u32;
        for (i, &c) in query.iter().enumerate() {
            w = ((w << 2) | c as u32) & code_mask;
            if i + 1 >= word && !word_masked(mask, i + 1 - word, word) {
                let qpos = (i + 1 - word) as u32;
                positions[cursor[w as usize] as usize] = qpos;
                cursor[w as usize] += 1;
            }
        }
        BaselineNtLookup {
            word,
            mask: code_mask,
            starts: counts,
            positions,
        }
    }

    #[inline]
    fn hits(&self, w: u32) -> &[u32] {
        let w = (w & self.mask) as usize;
        &self.positions[self.starts[w] as usize..self.starts[w + 1] as usize]
    }

    fn scan<F: FnMut(u32, u32)>(&self, subject: &[u8], mut f: F) {
        if subject.len() < self.word {
            return;
        }
        let mut w = 0u32;
        for (i, &c) in subject.iter().enumerate() {
            w = ((w << 2) | c as u32) & self.mask;
            if i + 1 >= self.word {
                let spos = (i + 1 - self.word) as u32;
                for &qpos in self.hits(w) {
                    f(qpos, spos);
                }
            }
        }
    }
}

/// Pre-rewrite blastn over a decoded volume. See the module docs.
pub fn search_blastn_baseline(
    query: &[u8],
    volume: &Volume,
    params: &SearchParams,
    db: DbStats,
) -> Vec<Hit> {
    assert_eq!(volume.seq_type, SeqType::Nucleotide, "blastn needs a nt db");
    let st = stats_ctx(params, query.len(), db);
    let ctxs = [
        QueryCtx {
            codes: query.to_vec(),
            frame: 1,
        },
        QueryCtx {
            codes: reverse_complement(query),
            frame: -1,
        },
    ];
    let lookups: Vec<BaselineNtLookup> = ctxs
        .iter()
        .map(|c| {
            let mask = params
                .dust
                .map(|d| dust_mask(&c.codes, d))
                .unwrap_or_default();
            BaselineNtLookup::build_masked(&c.codes, params.word_size, &mask)
        })
        .collect();
    let mut hits = Vec::new();
    for (si, subject) in volume.sequences.iter().enumerate() {
        let mut cands = Vec::new();
        for (ctx, lk) in ctxs.iter().zip(&lookups) {
            let s_frame = ctx.frame;
            scan_nt_context(lk, ctx, &subject.codes, s_frame, params, &st, &mut cands);
        }
        let mut subject_ctxs = HashMap::new();
        subject_ctxs.insert(1i8, subject.codes.clone());
        subject_ctxs.insert(-1i8, subject.codes.clone());
        let hsps = finalize(cands, &ctxs, &subject_ctxs, params, &st);
        if !hsps.is_empty() {
            hits.push(Hit {
                subject_id: subject.id().to_string(),
                subject_index: si,
                hsps,
            });
        }
    }
    rank(hits, params.max_hits)
}

fn scan_nt_context(
    lookup: &BaselineNtLookup,
    qctx: &QueryCtx,
    subject: &[u8],
    s_frame: i8,
    params: &SearchParams,
    st: &StatsCtx,
    out: &mut Vec<Candidate>,
) {
    let mut diag_end: HashMap<i64, usize> = HashMap::new();
    let query = &qctx.codes;
    lookup.scan(subject, |qp, sp| {
        let (qp, sp) = (qp as usize, sp as usize);
        let diag = sp as i64 - qp as i64;
        if let Some(&end) = diag_end.get(&diag) {
            if sp < end {
                return;
            }
        }
        let hsp = extend_ungapped(
            query,
            subject,
            qp,
            sp,
            lookup.word,
            &params.scorer,
            params.x_drop_ungapped,
        );
        diag_end.insert(diag, hsp.s_end);
        push_candidate(hsp, query, subject, qctx.frame, s_frame, params, st, out);
    });
}

#[allow(clippy::too_many_arguments)]
fn push_candidate(
    hsp: crate::extend::UngappedHsp,
    query: &[u8],
    subject: &[u8],
    q_frame: i8,
    s_frame: i8,
    params: &SearchParams,
    st: &StatsCtx,
    out: &mut Vec<Candidate>,
) {
    if params.gapped && hsp.score >= st.gap_trigger_raw {
        let mid = hsp.len() / 2;
        let (score, qr, sr) = extend_gapped(
            query,
            subject,
            hsp.q_start + mid,
            hsp.s_start + mid,
            &params.scorer,
            params.gaps,
            params.x_drop_gapped,
        );
        if score >= st.cutoff_raw {
            out.push(Candidate {
                score,
                q_range: qr,
                s_range: sr,
                q_frame,
                s_frame,
                gapped: true,
            });
        }
    } else if hsp.score >= st.cutoff_raw {
        out.push(Candidate {
            score: hsp.score,
            q_range: hsp.q_start..hsp.q_end,
            s_range: hsp.s_start..hsp.s_end,
            q_frame,
            s_frame,
            gapped: false,
        });
    }
}

fn finalize(
    candidates: Vec<Candidate>,
    query_ctxs: &[QueryCtx],
    subject_ctxs: &HashMap<i8, Vec<u8>>,
    params: &SearchParams,
    st: &StatsCtx,
) -> Vec<Hsp> {
    let mut cands = candidates;
    cands.sort_by_key(|c| std::cmp::Reverse(c.score));
    let mut kept: Vec<Candidate> = Vec::new();
    'outer: for c in cands {
        for k in &kept {
            if k.q_frame == c.q_frame
                && k.s_frame == c.s_frame
                && c.q_range.start >= k.q_range.start
                && c.q_range.end <= k.q_range.end
                && c.s_range.start >= k.s_range.start
                && c.s_range.end <= k.s_range.end
            {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    let mut out = Vec::with_capacity(kept.len());
    for c in kept {
        let kp = if c.gapped { st.gapped } else { st.ungapped };
        let evalue = kp.evalue(c.score, st.space);
        if evalue > params.evalue {
            continue;
        }
        let qctx = query_ctxs
            .iter()
            .find(|q| q.frame == c.q_frame)
            .expect("query context");
        let subject = &subject_ctxs[&c.s_frame];
        let qslice = &qctx.codes[c.q_range.clone()];
        let sslice = &subject[c.s_range.clone()];
        let (_, ops) = banded_global(qslice, sslice, &params.scorer, params.gaps, 16);
        let stats = align_stats(qslice, sslice, &ops);
        let (q_start, q_end) = if c.q_frame == -1 && params.word_size > 3 {
            let m = qctx.codes.len();
            (m - c.q_range.end, m - c.q_range.start)
        } else {
            (c.q_range.start, c.q_range.end)
        };
        out.push(Hsp {
            score: c.score,
            bit_score: kp.bit_score(c.score),
            evalue,
            q_start,
            q_end,
            s_start: c.s_range.start,
            s_end: c.s_range.end,
            q_frame: c.q_frame,
            s_frame: c.s_frame,
            align_len: stats.length,
            identities: stats.identities,
            mismatches: stats.mismatches,
            gap_opens: stats.gap_opens,
        });
    }
    out.sort_by_key(|h| std::cmp::Reverse(h.score));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search_packed, search_volume, Program};
    use parblast_seqdb::blastdb::DbSequence;
    use parblast_seqdb::{extract_query, PackedVolume, SyntheticConfig, SyntheticNt, VolumeWriter};

    #[test]
    fn baseline_matches_rewritten_kernel_on_both_paths() {
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 60_000,
            seed: 5,
            ..Default::default()
        });
        let mut seqs = vec![];
        while let Some(x) = g.next() {
            seqs.push(x);
        }
        let query = extract_query(&seqs[1].1, 400, 0.03, 5);
        // Round-trip through the on-disk format so the packed path is
        // exercised exactly as the runner sees it.
        let mut buf = std::io::Cursor::new(Vec::new());
        let mut w = VolumeWriter::new(&mut buf, SeqType::Nucleotide).unwrap();
        for (d, c) in &seqs {
            w.add_codes(d, c).unwrap();
        }
        w.finish().unwrap();
        let bytes = buf.into_inner();
        let volume = Volume {
            seq_type: SeqType::Nucleotide,
            sequences: seqs
                .into_iter()
                .map(|(defline, codes)| DbSequence { defline, codes })
                .collect(),
        };
        let packed = PackedVolume::read_from(&mut bytes.as_slice()).unwrap();
        let db = DbStats {
            residues: volume.residues(),
            nseq: volume.sequences.len() as u64,
        };
        let params = SearchParams::blastn();
        let base = search_blastn_baseline(&query, &volume, &params, db);
        let new = search_volume(Program::Blastn, &query, &volume, &params, db);
        let pk = search_packed(Program::Blastn, &query, &packed, &params, db);
        assert!(!base.is_empty(), "vacuous comparison");
        assert_eq!(format!("{base:?}"), format!("{new:?}"), "decoded path");
        assert_eq!(format!("{base:?}"), format!("{pk:?}"), "packed path");
    }
}
