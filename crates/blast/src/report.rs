//! Search results: HSPs, hits, and the tabular (`-m 8`) report format.

/// One high-scoring segment pair, fully annotated.
#[derive(Debug, Clone, PartialEq)]
pub struct Hsp {
    /// Raw alignment score.
    pub score: i32,
    /// Bit score.
    pub bit_score: f64,
    /// Expectation value.
    pub evalue: f64,
    /// Query start, 0-based inclusive (in query coordinates of the
    /// original, untranslated query).
    pub q_start: usize,
    /// Query end, 0-based exclusive.
    pub q_end: usize,
    /// Subject start, 0-based inclusive.
    pub s_start: usize,
    /// Subject end, 0-based exclusive.
    pub s_end: usize,
    /// Query strand/frame (+1 forward, −1 reverse for blastn; reading
    /// frame for translated searches).
    pub q_frame: i8,
    /// Subject strand/frame.
    pub s_frame: i8,
    /// Aligned columns.
    pub align_len: usize,
    /// Identical pairs.
    pub identities: usize,
    /// Mismatched pairs.
    pub mismatches: usize,
    /// Gap openings.
    pub gap_opens: usize,
}

impl Hsp {
    /// Percent identity over the alignment.
    pub fn percent_identity(&self) -> f64 {
        if self.align_len == 0 {
            0.0
        } else {
            100.0 * self.identities as f64 / self.align_len as f64
        }
    }
}

/// All HSPs of one subject sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Subject identifier (first word of its defline).
    pub subject_id: String,
    /// Index of the subject within the searched volume.
    pub subject_index: usize,
    /// HSPs sorted by descending score.
    pub hsps: Vec<Hsp>,
}

impl Hit {
    /// Best (lowest) E-value across HSPs.
    pub fn best_evalue(&self) -> f64 {
        self.hsps
            .iter()
            .map(|h| h.evalue)
            .fold(f64::INFINITY, f64::min)
    }

    /// Best raw score.
    pub fn best_score(&self) -> i32 {
        self.hsps.iter().map(|h| h.score).max().unwrap_or(0)
    }
}

/// Render hits in BLAST tabular (`-m 8`) format: qid, sid, %identity,
/// alignment length, mismatches, gap opens, qstart, qend, sstart, send
/// (1-based inclusive), evalue, bit score.
pub fn tabular(query_id: &str, hits: &[Hit]) -> String {
    let mut out = String::new();
    for hit in hits {
        for h in &hit.hsps {
            // BLAST reports minus-strand subject coordinates reversed.
            let (ss, se) = if h.s_frame < 0 {
                (h.s_end, h.s_start + 1)
            } else {
                (h.s_start + 1, h.s_end)
            };
            out.push_str(&format!(
                "{}\t{}\t{:.2}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.2e}\t{:.1}\n",
                query_id,
                hit.subject_id,
                h.percent_identity(),
                h.align_len,
                h.mismatches,
                h.gap_opens,
                h.q_start + 1,
                h.q_end,
                ss,
                se,
                h.evalue,
                h.bit_score,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hsp() -> Hsp {
        Hsp {
            score: 50,
            bit_score: 100.2,
            evalue: 1e-20,
            q_start: 0,
            q_end: 50,
            s_start: 10,
            s_end: 60,
            q_frame: 1,
            s_frame: 1,
            align_len: 50,
            identities: 48,
            mismatches: 2,
            gap_opens: 0,
        }
    }

    #[test]
    fn percent_identity() {
        assert!((hsp().percent_identity() - 96.0).abs() < 1e-9);
    }

    #[test]
    fn tabular_format_fields() {
        let hits = vec![Hit {
            subject_id: "gi|123|x".into(),
            subject_index: 0,
            hsps: vec![hsp()],
        }];
        let line = tabular("query1", &hits);
        let fields: Vec<&str> = line.trim().split('\t').collect();
        assert_eq!(fields.len(), 12);
        assert_eq!(fields[0], "query1");
        assert_eq!(fields[1], "gi|123|x");
        assert_eq!(fields[2], "96.00");
        assert_eq!(fields[6], "1");
        assert_eq!(fields[7], "50");
        assert_eq!(fields[8], "11");
        assert_eq!(fields[9], "60");
    }

    #[test]
    fn minus_strand_coordinates_reversed() {
        let mut h = hsp();
        h.s_frame = -1;
        let hits = vec![Hit {
            subject_id: "s".into(),
            subject_index: 0,
            hsps: vec![h],
        }];
        let line = tabular("q", &hits);
        let fields: Vec<&str> = line.trim().split('\t').collect();
        // Reversed: sstart > send.
        assert_eq!(fields[8], "60");
        assert_eq!(fields[9], "11");
    }

    #[test]
    fn best_evalue_and_score() {
        let mut a = hsp();
        a.evalue = 1e-5;
        a.score = 30;
        let mut b = hsp();
        b.evalue = 1e-9;
        b.score = 45;
        let hit = Hit {
            subject_id: "s".into(),
            subject_index: 1,
            hsps: vec![a, b],
        };
        assert_eq!(hit.best_evalue(), 1e-9);
        assert_eq!(hit.best_score(), 45);
    }
}
