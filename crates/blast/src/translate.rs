//! Genetic-code translation for the translated search programs
//! (blastx, tblastn, tblastx).

use parblast_seqdb::{encode_aa, reverse_complement};

/// Translate one codon of 2-bit nucleotide codes using the standard
/// genetic code; returns an amino-acid ordinal code (23 = stop `*`).
pub fn translate_codon(c1: u8, c2: u8, c3: u8) -> u8 {
    // Standard code indexed by 2-bit codes A=0 C=1 G=2 T=3.
    // Table laid out as [c1][c2][c3] in that code order.
    const T: [[[u8; 4]; 4]; 4] = {
        // Letters per codon, A/C/G/T order on each axis.
        // Derived from the standard genetic code.
        let x = *b"KNKNTTTTRSRSIIMIQHQHPPPPRRRRLLLLEDEDAAAAGGGGVVVVsYsYSSSSsCWCLFLF";
        let mut t = [[[0u8; 4]; 4]; 4];
        let mut i = 0;
        while i < 64 {
            let c1 = i / 16;
            let c2 = (i / 4) % 4;
            let c3 = i % 4;
            t[c1][c2][c3] = x[i];
            i += 1;
        }
        t
    };
    let letter = T[c1 as usize & 3][c2 as usize & 3][c3 as usize & 3];
    if letter == b's' {
        23 // stop
    } else {
        encode_aa(letter).unwrap_or(22)
    }
}

/// A translated reading frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame number in BLAST convention: +1, +2, +3, −1, −2, −3.
    pub frame: i8,
    /// Amino-acid codes (stops included as code 23).
    pub codes: Vec<u8>,
}

impl Frame {
    /// Map a position in this frame's protein back to the nucleotide
    /// coordinate (0-based, on the forward strand) of the codon's first
    /// base.
    pub fn to_nucleotide(&self, aa_pos: usize, seq_len: usize) -> usize {
        let off = (self.frame.unsigned_abs() as usize) - 1;
        if self.frame > 0 {
            off + 3 * aa_pos
        } else {
            // Position counted from the 3' end on the reverse strand.
            seq_len - 1 - off - 3 * aa_pos
        }
    }
}

/// Translate a 2-bit nucleotide sequence in one forward frame (0, 1, 2).
pub fn translate_frame(codes: &[u8], offset: usize) -> Vec<u8> {
    codes[offset..]
        .chunks_exact(3)
        .map(|c| translate_codon(c[0], c[1], c[2]))
        .collect()
}

/// All six reading frames of a nucleotide sequence.
pub fn six_frames(codes: &[u8]) -> Vec<Frame> {
    let rc = reverse_complement(codes);
    let mut out = Vec::with_capacity(6);
    for off in 0..3usize {
        out.push(Frame {
            frame: (off as i8) + 1,
            codes: translate_frame(codes, off),
        });
    }
    for off in 0..3usize {
        out.push(Frame {
            frame: -((off as i8) + 1),
            codes: translate_frame(&rc, off),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::{decode_aa, encode_nt_seq};

    fn translate_ascii(s: &[u8]) -> String {
        let codes = encode_nt_seq(s);
        translate_frame(&codes, 0)
            .iter()
            .map(|&c| decode_aa(c) as char)
            .collect()
    }

    #[test]
    fn canonical_codons() {
        assert_eq!(translate_ascii(b"ATG"), "M");
        assert_eq!(translate_ascii(b"TGG"), "W");
        assert_eq!(translate_ascii(b"TAA"), "*");
        assert_eq!(translate_ascii(b"TAG"), "*");
        assert_eq!(translate_ascii(b"TGA"), "*");
        assert_eq!(translate_ascii(b"AAA"), "K");
        assert_eq!(translate_ascii(b"TTT"), "F");
        assert_eq!(translate_ascii(b"GGC"), "G");
        assert_eq!(translate_ascii(b"GCT"), "A");
        assert_eq!(translate_ascii(b"CGA"), "R");
    }

    #[test]
    fn orf_translation() {
        // ATG AAA TGG TAA → M K W *
        assert_eq!(translate_ascii(b"ATGAAATGGTAA"), "MKW*");
    }

    #[test]
    fn six_frames_have_right_lengths() {
        let codes = encode_nt_seq(b"ATGAAATGGTAACGT"); // 15 nt
        let frames = six_frames(&codes);
        assert_eq!(frames.len(), 6);
        assert_eq!(frames[0].codes.len(), 5); // +1: 15/3
        assert_eq!(frames[1].codes.len(), 4); // +2: 14/3
        assert_eq!(frames[2].codes.len(), 4); // +3: 13/3
        assert_eq!(frames[3].codes.len(), 5); // −1
        let nums: Vec<i8> = frames.iter().map(|f| f.frame).collect();
        assert_eq!(nums, vec![1, 2, 3, -1, -2, -3]);
    }

    #[test]
    fn reverse_frame_translates_reverse_complement() {
        // Forward: ATG CAT; reverse complement: ATG CAT → frame −1 = "MH".
        let codes = encode_nt_seq(b"ATGCAT");
        let frames = six_frames(&codes);
        let minus1: String = frames[3]
            .codes
            .iter()
            .map(|&c| decode_aa(c) as char)
            .collect();
        assert_eq!(minus1, "MH");
    }

    #[test]
    fn frame_coordinate_mapping() {
        let f = Frame {
            frame: 2,
            codes: vec![],
        };
        assert_eq!(f.to_nucleotide(0, 30), 1);
        assert_eq!(f.to_nucleotide(3, 30), 10);
        let r = Frame {
            frame: -1,
            codes: vec![],
        };
        assert_eq!(r.to_nucleotide(0, 30), 29);
        assert_eq!(r.to_nucleotide(1, 30), 26);
    }

    #[test]
    fn every_codon_translates_to_valid_code() {
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    let code = translate_codon(a, b, c);
                    assert!(code <= 23);
                }
            }
        }
    }
}
