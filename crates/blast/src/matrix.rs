//! Scoring systems: match/mismatch scores for nucleotides (blastn) and the
//! BLOSUM62 matrix for proteins, plus affine gap penalties.

use parblast_seqdb::AA_ALPHABET;

/// BLOSUM62 over the 24-letter alphabet `ARNDCQEGHILKMFPSTWYVBZX*`.
#[rustfmt::skip]
pub const BLOSUM62: [[i32; 24]; 24] = [
    //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
    [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4],
    [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4],
    [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4],
    [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4],
    [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4],
    [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4],
    [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4],
    [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4],
    [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4],
    [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4],
    [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4],
    [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4],
    [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4],
    [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4],
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4],
    [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4],
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4],
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4],
    [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4],
    [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4],
    [-2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4],
    [-1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4],
    [ 0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4],
    [-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1],
];

/// Robinson–Robinson amino-acid background frequencies (the standard
/// composition used by BLAST statistics), indexed like `AA_LETTERS`;
/// B/Z/X/* get zero background.
pub const AA_BACKGROUND: [f64; 24] = [
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
    0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441, 0.0,
    0.0, 0.0, 0.0,
];

/// A scoring system.
#[derive(Debug, Clone)]
pub enum Scorer {
    /// blastn-style match/mismatch scoring.
    Nucleotide {
        /// Score of a match (paper-era default +1).
        reward: i32,
        /// Score of a mismatch (default −3).
        penalty: i32,
    },
    /// Protein matrix scoring (BLOSUM62).
    Blosum62,
}

impl Scorer {
    /// Score of aligning codes `a` and `b`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        match self {
            Scorer::Nucleotide { reward, penalty } => {
                if a == b {
                    *reward
                } else {
                    *penalty
                }
            }
            Scorer::Blosum62 => BLOSUM62[a as usize][b as usize],
        }
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        match self {
            Scorer::Nucleotide { .. } => 4,
            Scorer::Blosum62 => AA_ALPHABET,
        }
    }

    /// Background letter frequencies for statistics.
    pub fn background(&self) -> Vec<f64> {
        match self {
            Scorer::Nucleotide { .. } => vec![0.25; 4],
            Scorer::Blosum62 => AA_BACKGROUND.to_vec(),
        }
    }

    /// Probability distribution of pair scores under the background,
    /// returned as `(min_score, probs[score - min_score])`.
    pub fn score_distribution(&self) -> (i32, Vec<f64>) {
        let bg = self.background();
        let n = self.alphabet();
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for a in 0..n {
            for b in 0..n {
                if bg[a] > 0.0 && bg[b] > 0.0 {
                    let s = self.score(a as u8, b as u8);
                    lo = lo.min(s);
                    hi = hi.max(s);
                }
            }
        }
        let mut probs = vec![0.0; (hi - lo + 1) as usize];
        for a in 0..n {
            for b in 0..n {
                if bg[a] > 0.0 && bg[b] > 0.0 {
                    let s = self.score(a as u8, b as u8);
                    probs[(s - lo) as usize] += bg[a] * bg[b];
                }
            }
        }
        (lo, probs)
    }
}

/// Affine gap penalties (positive costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapPenalties {
    /// Cost to open a gap (charged once per gap).
    pub open: i32,
    /// Cost per gapped position.
    pub extend: i32,
}

impl GapPenalties {
    /// blastn-era defaults (open 5, extend 2).
    pub fn blastn() -> Self {
        GapPenalties { open: 5, extend: 2 }
    }

    /// blastp defaults for BLOSUM62 (open 11, extend 1).
    pub fn blastp() -> Self {
        GapPenalties {
            open: 11,
            extend: 1,
        }
    }

    /// Total cost of a gap of `len` positions.
    #[inline]
    pub fn cost(&self, len: i32) -> i32 {
        debug_assert!(len > 0);
        self.open + self.extend * len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::encode_aa;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn blosum62_is_symmetric() {
        for a in 0..24 {
            for b in 0..24 {
                assert_eq!(BLOSUM62[a][b], BLOSUM62[b][a], "({a},{b})");
            }
        }
    }

    #[test]
    fn blosum62_spot_values() {
        let s = Scorer::Blosum62;
        let w = encode_aa(b'W').unwrap();
        let a = encode_aa(b'A').unwrap();
        let c = encode_aa(b'C').unwrap();
        assert_eq!(s.score(w, w), 11);
        assert_eq!(s.score(a, a), 4);
        assert_eq!(s.score(c, c), 9);
        assert_eq!(s.score(a, w), -3);
    }

    #[test]
    fn blosum62_expected_score_is_negative() {
        // Required for Karlin-Altschul statistics to exist.
        let (lo, probs) = Scorer::Blosum62.score_distribution();
        let mean: f64 = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (lo + i as i32) as f64 * p)
            .sum();
        assert!(mean < 0.0, "mean = {mean}");
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nucleotide_distribution() {
        let s = Scorer::Nucleotide {
            reward: 1,
            penalty: -3,
        };
        let (lo, probs) = s.score_distribution();
        assert_eq!(lo, -3);
        assert!((probs[0] - 0.75).abs() < 1e-12); // mismatch
        assert!((probs[4] - 0.25).abs() < 1e-12); // match at index 1-(-3)=4
    }

    #[test]
    fn gap_costs() {
        let g = GapPenalties::blastn();
        assert_eq!(g.cost(1), 7);
        assert_eq!(g.cost(3), 11);
    }

    #[test]
    fn background_sums_to_one() {
        for s in [
            Scorer::Nucleotide {
                reward: 1,
                penalty: -3,
            },
            Scorer::Blosum62,
        ] {
            let total: f64 = s.background().iter().sum();
            assert!((total - 1.0).abs() < 2e-3, "total = {total}");
        }
    }
}
