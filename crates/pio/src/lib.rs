//! # parblast-pio
//!
//! A working user-space parallel-I/O library implementing the paper's three
//! data-access schemes against real files:
//!
//! * [`LocalStore`] — a plain directory (the original mpiBLAST "copy to
//!   local disk" scheme);
//! * [`StripedStore`] — PVFS-style RAID-0: 64 KB round-robin striping over
//!   N server directories, with one parallel reader thread per server;
//! * [`MirroredStore`] — CEFT-PVFS-style RAID-10: duplexed writes to a
//!   primary and a mirror group, dual-half reads that double the degree of
//!   parallelism, and latency-EWMA hot-spot detection that *skips* slow
//!   servers by redirecting their ranges to the mirror partner.
//!
//! The striping mathematics ([`layout`]) is shared with the simulated
//! PVFS/CEFT-PVFS crates, so the simulator and the real library cannot
//! drift apart.

#![warn(missing_docs)]

pub mod integrity;
pub mod layout;
pub mod mirrored;
pub mod pool;
pub mod store;
pub mod striped;

pub use integrity::{corrupt_stripe_of, crc32c, is_corrupt, CorruptStripe, ScrubTotals, Scrubber};
pub use layout::{LocalRange, MirroredLayout, ReadPart, ServerId, StripeLayout};
pub use mirrored::{HealthMonitor, MirroredReader, MirroredStore, ResyncReport, ResyncState};
pub use pool::{PendingRead, RateLimiter, ReaderPool};
pub use store::{copy_object, read_all, FileReader, LocalStore, ObjectReader, ObjectStore};
pub use striped::{StripedReader, StripedStore};
