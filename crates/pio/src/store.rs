//! Object-store abstractions over real directories.
//!
//! A *store* keeps named byte objects (database fragments). The three
//! implementations mirror the paper's three I/O schemes:
//!
//! * [`LocalStore`] — one plain directory (a worker's local disk);
//! * [`crate::striped::StripedStore`] — RAID-0 across N server directories
//!   (PVFS);
//! * [`crate::mirrored::MirroredStore`] — RAID-10 across 2×N server
//!   directories with dual-half reads and hot-spot skipping (CEFT-PVFS).

use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::integrity;
use crate::pool::PendingRead;

/// Positional reader handed out by stores.
pub trait ObjectReader: Send {
    /// Fill `buf` from `offset`; must read exactly `buf.len()` bytes.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Start reading `len` bytes from `offset` without waiting for the
    /// data: the returned [`PendingRead`] completes on its own threads and
    /// the caller overlaps compute until [`PendingRead::wait_into`]. The
    /// default implementation performs the read synchronously and returns
    /// an already-completed handle, so plain sources stay correct; pool-
    /// backed stores (striped/mirrored) override it with a true async
    /// path.
    fn read_at_async(&mut self, offset: u64, len: usize) -> io::Result<PendingRead> {
        let mut buf = vec![0u8; len];
        self.read_at(offset, &mut buf)?;
        Ok(PendingRead::ready(buf))
    }
    /// Read every `(offset, len)` region and return their bytes
    /// concatenated in list order (list I/O). Equivalent to one
    /// [`ObjectReader::read_at`] per region; pool-backed stores override
    /// the async variant to ship **one vectored lane job per server**
    /// instead of one per region per server, which is the request
    /// aggregation this crate's striped/mirrored readers are measured on.
    fn read_many_at(&mut self, regions: &[(u64, u64)]) -> io::Result<Vec<u8>> {
        self.read_many_at_async(regions)?.wait()
    }
    /// Start a vectored read of `regions` without waiting for the data.
    /// The default performs the reads synchronously region by region and
    /// returns an already-completed handle, so plain sources stay
    /// correct.
    fn read_many_at_async(&mut self, regions: &[(u64, u64)]) -> io::Result<PendingRead> {
        let total: usize = regions.iter().map(|&(_, l)| l as usize).sum();
        let mut out = vec![0u8; total];
        let mut at = 0usize;
        for &(off, len) in regions {
            let n = len as usize;
            self.read_at(off, &mut out[at..at + n])?;
            at += n;
        }
        Ok(PendingRead::ready(out))
    }
    /// Object length in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// True when the object is empty.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A store of named byte objects.
pub trait ObjectStore {
    /// Write (or replace) an object.
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Open an object for positional reads.
    fn open(&self, name: &str) -> io::Result<Box<dyn ObjectReader>>;
    /// Object size without opening a reader.
    fn size(&self, name: &str) -> io::Result<u64>;
    /// Delete an object (idempotent).
    fn delete(&self, name: &str) -> io::Result<()>;
}

/// Plain single-directory store: the "original mpiBLAST" local-disk path.
#[derive(Debug, Clone)]
pub struct LocalStore {
    dir: PathBuf,
}

impl LocalStore {
    /// Create (the directory is created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(LocalStore { dir })
    }

    /// Path of an object.
    pub fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

/// File-backed positional reader.
pub struct FileReader {
    file: File,
}

impl FileReader {
    /// Open a file as a reader.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(FileReader {
            file: File::open(path)?,
        })
    }
}

impl ObjectReader for FileReader {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }
    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

impl LocalStore {
    /// Verify an object against its checksum sidecar, returning corrupt
    /// stripe indices (empty = clean or no sidecar to check).
    pub fn scrub_object(
        &self,
        name: &str,
        limiter: &mut crate::pool::RateLimiter,
    ) -> io::Result<Vec<u64>> {
        integrity::scrub_file(&self.path_of(name), integrity::DEFAULT_STRIPE, limiter)
    }
}

impl ObjectStore for LocalStore {
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let path = self.path_of(name);
        let mut f = File::create(&path)?;
        f.write_all(data)?;
        f.flush()?;
        integrity::write_sums(&path, data, integrity::DEFAULT_STRIPE)
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn ObjectReader>> {
        Ok(Box::new(FileReader::open(&self.path_of(name))?))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.path_of(name))?.len())
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        integrity::remove_sums(&self.path_of(name));
        match fs::remove_file(self.path_of(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Read a whole object into memory.
pub fn read_all(store: &dyn ObjectStore, name: &str) -> io::Result<Vec<u8>> {
    let mut r = store.open(name)?;
    let len = r.len()? as usize;
    let mut buf = vec![0u8; len];
    r.read_at(0, &mut buf)?;
    Ok(buf)
}

/// Copy an object between stores in `chunk`-sized pieces (the paper's
/// "copy the fragment to local disk" step), returning bytes copied.
pub fn copy_object(
    src: &dyn ObjectStore,
    dst: &dyn ObjectStore,
    name: &str,
    chunk: usize,
) -> io::Result<u64> {
    let mut r = src.open(name)?;
    let len = r.len()?;
    let mut data = Vec::with_capacity(len as usize);
    let mut off = 0u64;
    let mut buf = vec![0u8; chunk.max(1)];
    while off < len {
        let n = ((len - off) as usize).min(buf.len());
        r.read_at(off, &mut buf[..n])?;
        data.extend_from_slice(&buf[..n]);
        off += n as u64;
    }
    dst.put(name, &data)?;
    let _ = io::copy(&mut io::empty(), &mut io::sink()); // keep Read in scope
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pio_store_{tag}_{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn put_open_read_round_trip() {
        let dir = tmp("rt");
        let st = LocalStore::new(&dir).unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        st.put("frag.000", &data).unwrap();
        assert_eq!(st.size("frag.000").unwrap(), data.len() as u64);
        let mut r = st.open("frag.000").unwrap();
        let mut mid = vec![0u8; 1000];
        r.read_at(50_000, &mut mid).unwrap();
        assert_eq!(&mid[..], &data[50_000..51_000]);
        assert_eq!(read_all(&st, "frag.000").unwrap(), data);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_is_idempotent() {
        let dir = tmp("del");
        let st = LocalStore::new(&dir).unwrap();
        st.put("x", b"abc").unwrap();
        st.delete("x").unwrap();
        st.delete("x").unwrap();
        assert!(st.open("x").is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn copy_between_stores() {
        let d1 = tmp("cp1");
        let d2 = tmp("cp2");
        let a = LocalStore::new(&d1).unwrap();
        let b = LocalStore::new(&d2).unwrap();
        let data: Vec<u8> = (0..300_000u32).map(|i| (i * 7 % 256) as u8).collect();
        a.put("db", &data).unwrap();
        let n = copy_object(&a, &b, "db", 64 << 10).unwrap();
        assert_eq!(n, data.len() as u64);
        assert_eq!(read_all(&b, "db").unwrap(), data);
        fs::remove_dir_all(&d1).ok();
        fs::remove_dir_all(&d2).ok();
    }

    #[test]
    fn put_writes_sums_sidecar_and_delete_removes_it() {
        use crate::pool::RateLimiter;
        let dir = tmp("sums");
        let st = LocalStore::new(&dir).unwrap();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
        st.put("frag", &data).unwrap();
        let side = integrity::sums_path(&st.path_of("frag"));
        assert!(side.exists());
        assert!(st
            .scrub_object("frag", &mut RateLimiter::unlimited())
            .unwrap()
            .is_empty());
        // Flip one bit on disk: the scrub pinpoints the stripe.
        let mut raw = fs::read(st.path_of("frag")).unwrap();
        raw[130_000] ^= 1;
        fs::write(st.path_of("frag"), &raw).unwrap();
        let bad = st
            .scrub_object("frag", &mut RateLimiter::unlimited())
            .unwrap();
        assert_eq!(bad, vec![130_000 / integrity::DEFAULT_STRIPE]);
        st.delete("frag").unwrap();
        assert!(!side.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_past_end_errors() {
        let dir = tmp("eof");
        let st = LocalStore::new(&dir).unwrap();
        st.put("x", b"short").unwrap();
        let mut r = st.open("x").unwrap();
        let mut buf = vec![0u8; 10];
        assert!(r.read_at(0, &mut buf).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
