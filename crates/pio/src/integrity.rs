//! End-to-end data integrity for the real I/O path: per-stripe CRC32C
//! checksums, verified reads, and stripe repair.
//!
//! Every store writes a *sums sidecar* next to each object file: for a
//! local file of `L` bytes it holds `ceil(L / stripe_size)` little-endian
//! `u32` CRC32C values, one per stripe of the local file (the last stripe
//! may be partial). Striped and mirrored stores keep one sidecar per
//! server directory covering that server's local stripes; [`crate::
//! LocalStore`] keeps one for the whole object using
//! [`DEFAULT_STRIPE`]-sized stripes.
//!
//! Readers verify on the lane threads: a requested local range is rounded
//! out to stripe boundaries (clamped to the local file length), every
//! covered stripe is checked, and only then is the requested sub-range
//! returned. A mismatch surfaces as a typed corrupt error
//! ([`corrupt_stripe_of`]) so callers can distinguish "the bytes are
//! wrong" (not retryable, repairable from a mirror) from "the server is
//! gone" (fail over / retry). A file with *no* sidecar is read unverified
//! — objects written before checksums existed, or placed by hand.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Stripe size used by [`crate::LocalStore`] sidecars (the paper's 64 KB
/// PVFS stripe, reused so every store checksums at the same granularity).
pub const DEFAULT_STRIPE: u64 = 64 << 10;

// CRC32C (Castagnoli), reflected polynomial — the checksum iSCSI and ext4
// use for exactly this job. Table built at compile time; no dependencies.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Per-stripe checksums of one local file's bytes.
pub fn stripe_sums(data: &[u8], stripe_size: u64) -> Vec<u32> {
    data.chunks(stripe_size.max(1) as usize)
        .map(crc32c)
        .collect()
}

/// Sidecar file name for an object (`{name}.sums` in the same directory).
pub fn sums_name(name: &str) -> String {
    format!("{name}.sums")
}

/// Sidecar path for an object file path.
pub fn sums_path(object: &Path) -> PathBuf {
    let mut os = object.as_os_str().to_owned();
    os.push(".sums");
    PathBuf::from(os)
}

/// Serialize checksums (little-endian `u32` each).
pub fn encode_sums(sums: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sums.len() * 4);
    for s in sums {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Parse a sidecar's bytes; trailing partial entries are dropped (a torn
/// sidecar write verifies as "missing entry", which fails closed).
pub fn decode_sums(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Write the sidecar for `object` (a data file already on disk) from its
/// in-memory bytes.
pub fn write_sums(object: &Path, data: &[u8], stripe_size: u64) -> io::Result<()> {
    fs::write(
        sums_path(object),
        encode_sums(&stripe_sums(data, stripe_size)),
    )
}

/// Load the sidecar of `object`; empty when missing (= read unverified).
pub fn load_sums(object: &Path) -> Vec<u32> {
    fs::read(sums_path(object)).map_or_else(|_| Vec::new(), |b| decode_sums(&b))
}

/// Remove the sidecar of `object` (idempotent).
pub fn remove_sums(object: &Path) {
    let _ = fs::remove_file(sums_path(object));
}

/// Typed payload of a checksum-mismatch error.
#[derive(Debug)]
pub struct CorruptStripe {
    /// The local file whose stripe failed verification.
    pub path: PathBuf,
    /// Local stripe index within that file.
    pub stripe: u64,
}

impl fmt::Display for CorruptStripe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checksum mismatch in stripe {} of {}",
            self.stripe,
            self.path.display()
        )
    }
}

impl std::error::Error for CorruptStripe {}

/// Build the typed corrupt error (kind `InvalidData`).
pub fn corrupt_error(path: &Path, stripe: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        CorruptStripe {
            path: path.to_path_buf(),
            stripe,
        },
    )
}

/// The corrupted local stripe index, when `err` is a checksum mismatch.
pub fn corrupt_stripe_of(err: &io::Error) -> Option<u64> {
    err.get_ref()
        .and_then(|e| e.downcast_ref::<CorruptStripe>())
        .map(|c| c.stripe)
}

/// Is this a checksum-mismatch error (as opposed to a hard I/O failure)?
pub fn is_corrupt(err: &io::Error) -> bool {
    corrupt_stripe_of(err).is_some()
}

/// Round the local range `[lo, lo+ln)` out to stripe boundaries, clamped
/// to the local file length. Returns `(start, len)` of the aligned span.
pub fn aligned_span(lo: u64, ln: u64, stripe_size: u64, local_len: u64) -> (u64, u64) {
    let s = stripe_size.max(1);
    let start = lo - lo % s;
    let end = (lo + ln).div_ceil(s) * s;
    let end = end.min(local_len.max(lo + ln));
    (start, end - start)
}

/// Read the stripe-aligned span covering `[lo, lo+ln)` of `path`.
/// Returns `(aligned_start, aligned_bytes)`; the caller slices the
/// requested range back out with [`slice_requested`].
pub fn read_aligned(
    path: &Path,
    lo: u64,
    ln: u64,
    stripe_size: u64,
    local_len: u64,
) -> io::Result<(u64, Vec<u8>)> {
    let (start, alen) = aligned_span(lo, ln, stripe_size, local_len);
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(start))?;
    let mut out = vec![0u8; alen as usize];
    f.read_exact(&mut out)?;
    Ok((start, out))
}

/// The requested `[lo, lo+ln)` bytes out of an aligned read.
pub fn slice_requested(aligned_start: u64, aligned: &[u8], lo: u64, ln: u64) -> Vec<u8> {
    let a = (lo - aligned_start) as usize;
    aligned[a..a + ln as usize].to_vec()
}

/// Local stripe indices within an aligned span whose bytes do not match
/// `sums`. `start` must be stripe-aligned. A stripe with no sidecar entry
/// fails closed (reported corrupt): a short sidecar means the file grew
/// or the sidecar was torn — either way the data is unverifiable.
pub fn bad_stripes(aligned: &[u8], start: u64, stripe_size: u64, sums: &[u32]) -> Vec<u64> {
    let s = stripe_size.max(1);
    let first = start / s;
    aligned
        .chunks(s as usize)
        .enumerate()
        .filter_map(|(i, chunk)| {
            let k = first + i as u64;
            match sums.get(k as usize) {
                Some(&want) if crc32c(chunk) == want => None,
                _ => Some(k),
            }
        })
        .collect()
}

/// Verify an aligned span, returning the typed corrupt error for the
/// first bad stripe. Empty `sums` (no sidecar) verifies vacuously.
pub fn verify_aligned(
    path: &Path,
    aligned: &[u8],
    start: u64,
    stripe_size: u64,
    sums: &[u32],
) -> io::Result<()> {
    if sums.is_empty() {
        return Ok(());
    }
    match bad_stripes(aligned, start, stripe_size, sums).first() {
        Some(&k) => Err(corrupt_error(path, k)),
        None => Ok(()),
    }
}

/// Rewrite `bad` local stripes of `path` (data file *and* sidecar entry)
/// from known-good aligned bytes `(good_start, good)` — the read-repair
/// write. Every bad stripe must lie inside the good span. Concurrent
/// repairs of the same stripe write identical bytes, so races are benign.
/// Returns the number of stripes rewritten.
pub fn repair_stripes(
    path: &Path,
    good_start: u64,
    good: &[u8],
    bad: &[u64],
    stripe_size: u64,
) -> io::Result<u64> {
    if bad.is_empty() {
        return Ok(0);
    }
    let s = stripe_size.max(1);
    let mut data_f = OpenOptions::new().write(true).open(path)?;
    let mut sums_f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(sums_path(path))?;
    for &k in bad {
        let off = k * s;
        let a = (off - good_start) as usize;
        let b = good.len().min(a + s as usize);
        let stripe = &good[a..b];
        data_f.seek(SeekFrom::Start(off))?;
        data_f.write_all(stripe)?;
        sums_f.seek(SeekFrom::Start(k * 4))?;
        sums_f.write_all(&crc32c(stripe).to_le_bytes())?;
    }
    data_f.flush()?;
    sums_f.flush()?;
    Ok(bad.len() as u64)
}

/// Verify one whole local file against its sidecar, returning the corrupt
/// local stripe indices (empty sidecar = nothing to verify). The walk is
/// paced by `limiter` so a background scrub cannot starve foreground
/// reads of disk bandwidth.
pub fn scrub_file(
    path: &Path,
    stripe_size: u64,
    limiter: &mut crate::pool::RateLimiter,
) -> io::Result<Vec<u64>> {
    let sums = load_sums(path);
    if sums.is_empty() {
        return Ok(Vec::new());
    }
    let s = stripe_size.max(1);
    let mut f = File::open(path)?;
    let len = f.metadata()?.len();
    let mut bad = Vec::new();
    let mut buf = vec![0u8; s as usize];
    let mut off = 0u64;
    let mut k = 0u64;
    while off < len {
        let n = ((len - off) as usize).min(buf.len());
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(&mut buf[..n])?;
        limiter.consume(n as u64);
        match sums.get(k as usize) {
            Some(&want) if crc32c(&buf[..n]) == want => {}
            _ => bad.push(k),
        }
        off += n as u64;
        k += 1;
    }
    // A sidecar longer than the file means stripes were lost (truncated
    // file): report them too so a mirrored scrub repairs the tail.
    for extra in k..sums.len() as u64 {
        bad.push(extra);
    }
    Ok(bad)
}

/// A background scrub thread: repeatedly runs `pass` until stopped.
/// The closure owns its store handle, object list, and rate limiter; it
/// returns how many corrupt stripes the pass found (repaired or not).
pub struct Scrubber {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<ScrubTotals>>,
}

/// What a [`Scrubber`] did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubTotals {
    /// Complete passes over the object set.
    pub passes: u64,
    /// Corrupt stripes found across all passes.
    pub corrupt_found: u64,
}

impl Scrubber {
    /// Spawn the scrub loop. `pass` runs back to back until [`Self::stop`].
    pub fn spawn<F>(mut pass: F) -> Scrubber
    where
        F: FnMut() -> u64 + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut totals = ScrubTotals::default();
            while !flag.load(Ordering::Relaxed) {
                totals.corrupt_found += pass();
                totals.passes += 1;
            }
            totals
        });
        Scrubber {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop after the current pass and return the totals.
    pub fn stop(mut self) -> ScrubTotals {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::RateLimiter;

    #[test]
    fn crc32c_known_answer() {
        // The canonical CRC32C check value (iSCSI test vector).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn sums_round_trip_and_partial_tail() {
        let data: Vec<u8> = (0..2500u32).map(|i| (i % 251) as u8).collect();
        let sums = stripe_sums(&data, 1024);
        assert_eq!(sums.len(), 3); // 1024 + 1024 + 452
        let enc = encode_sums(&sums);
        assert_eq!(decode_sums(&enc), sums);
        // A torn sidecar (odd byte count) drops the partial entry.
        assert_eq!(decode_sums(&enc[..9]).len(), 2);
    }

    #[test]
    fn aligned_span_clamps_to_file() {
        // Range [100, 200) in 64-byte stripes of a 1000-byte file.
        assert_eq!(aligned_span(100, 100, 64, 1000), (64, 192));
        // Tail range: rounds up past EOF, clamps back.
        assert_eq!(aligned_span(990, 10, 64, 1000), (960, 40));
        // Exactly aligned stays put.
        assert_eq!(aligned_span(128, 64, 64, 1000), (128, 64));
    }

    #[test]
    fn bad_stripes_detects_a_flip_and_fails_closed() {
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let sums = stripe_sums(&data, 100);
        assert!(bad_stripes(&data, 0, 100, &sums).is_empty());
        let mut fl = data.clone();
        fl[150] ^= 0x40;
        assert_eq!(bad_stripes(&fl, 0, 100, &sums), vec![1]);
        // Missing sidecar entry = unverifiable = corrupt.
        assert_eq!(bad_stripes(&data, 0, 100, &sums[..2]), vec![2]);
    }

    #[test]
    fn corrupt_error_is_typed_and_detectable() {
        let e = corrupt_error(Path::new("/x/frag"), 7);
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(is_corrupt(&e));
        assert_eq!(corrupt_stripe_of(&e), Some(7));
        let plain = io::Error::new(io::ErrorKind::InvalidData, "not typed");
        assert!(!is_corrupt(&plain));
    }

    #[test]
    fn repair_rewrites_data_and_sidecar() {
        let dir = std::env::temp_dir().join(format!("pio_integrity_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("obj");
        let good: Vec<u8> = (0..1000u32).map(|i| (i * 13 % 251) as u8).collect();
        fs::write(&p, &good).unwrap();
        write_sums(&p, &good, 256).unwrap();
        // Corrupt stripe 2 on disk.
        let mut broken = good.clone();
        broken[600] ^= 0xFF;
        fs::write(&p, &broken).unwrap();
        assert_eq!(
            scrub_file(&p, 256, &mut RateLimiter::unlimited()).unwrap(),
            vec![2]
        );
        let n = repair_stripes(&p, 0, &good, &[2], 256).unwrap();
        assert_eq!(n, 1);
        assert_eq!(fs::read(&p).unwrap(), good);
        assert!(scrub_file(&p, 256, &mut RateLimiter::unlimited())
            .unwrap()
            .is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrubber_runs_until_stopped() {
        let scrubber = Scrubber::spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            1
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let totals = scrubber.stop();
        assert!(totals.passes >= 1);
        assert_eq!(totals.corrupt_found, totals.passes);
    }
}
