//! RAID-10 mirrored store with CEFT-PVFS read semantics on real files:
//!
//! * writes are duplexed to a primary and a mirror group of server
//!   directories (identical striped layout in each);
//! * reads follow the dual-half schedule — first half of each request from
//!   one group, second half from the other — doubling the number of
//!   directories (disks) serving a single read;
//! * a per-server latency monitor (EWMA over observed read times) marks
//!   slow servers hot, and subsequent reads *skip* them, fetching the
//!   affected ranges from the mirror partner instead — the §4.5 mechanism.

use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use parking_lot::Mutex;

use crate::layout::{MirroredLayout, ServerId};
use crate::pool::{self, PendingRead, ReaderPool};
use crate::store::{ObjectReader, ObjectStore};

/// Latency-based hot-spot detector shared by all readers of a store.
#[derive(Debug)]
pub struct HealthMonitor {
    /// EWMA of per-byte read latency per server (seconds/byte).
    ewma: Mutex<Vec<[f64; 2]>>,
    /// Smoothing factor.
    alpha: f64,
    /// A server is hot when its EWMA exceeds `factor ×` the group median.
    factor: f64,
    /// Artificial per-read delays for fault injection (seconds).
    faults: Mutex<Vec<[f64; 2]>>,
    /// Servers that returned a hard I/O error: excluded from every
    /// subsequent plan until [`HealthMonitor::revive`] (CEFT failover on
    /// the real path — the mirror partner serves their ranges).
    dead: Mutex<Vec<[bool; 2]>>,
}

impl HealthMonitor {
    /// New monitor for `n` servers per group.
    pub fn new(n: usize) -> Self {
        HealthMonitor {
            ewma: Mutex::new(vec![[0.0; 2]; n]),
            alpha: 0.3,
            factor: 4.0,
            faults: Mutex::new(vec![[0.0; 2]; n]),
            dead: Mutex::new(vec![[false; 2]; n]),
        }
    }

    /// Mark a server dead after a hard I/O error; all later plans route
    /// its ranges to the mirror partner.
    pub fn mark_dead(&self, s: ServerId) {
        self.dead.lock()[s.index as usize][s.group as usize] = true;
    }

    /// Bring a repaired server back into rotation.
    pub fn revive(&self, s: ServerId) {
        self.dead.lock()[s.index as usize][s.group as usize] = false;
    }

    /// Servers currently marked dead.
    pub fn dead(&self) -> Vec<ServerId> {
        let d = self.dead.lock();
        let mut out = Vec::new();
        for (i, pair) in d.iter().enumerate() {
            for (g, &is_dead) in pair.iter().enumerate() {
                if is_dead {
                    out.push(ServerId {
                        group: g as u8,
                        index: i as u32,
                    });
                }
            }
        }
        out
    }

    /// Record an observed read of `bytes` taking `seconds`.
    pub fn record(&self, s: ServerId, bytes: u64, seconds: f64) {
        if bytes == 0 {
            return;
        }
        let per_byte = seconds / bytes as f64;
        let mut e = self.ewma.lock();
        let slot = &mut e[s.index as usize][s.group as usize];
        *slot = if *slot == 0.0 {
            per_byte
        } else {
            (1.0 - self.alpha) * *slot + self.alpha * per_byte
        };
    }

    /// Servers currently considered hot or dead (skippable). Dead servers
    /// are always skipped; hot ones only once enough latency samples exist
    /// to compute a group median.
    pub fn skips(&self) -> Vec<ServerId> {
        let mut out = self.dead();
        let e = self.ewma.lock();
        let mut all: Vec<f64> = e
            .iter()
            .flat_map(|pair| pair.iter().copied())
            .filter(|&x| x > 0.0)
            .collect();
        if all.len() < 2 {
            return out;
        }
        all.sort_by(f64::total_cmp);
        let median = all[all.len() / 2];
        if median <= 0.0 {
            return out;
        }
        for (i, pair) in e.iter().enumerate() {
            for (g, &v) in pair.iter().enumerate() {
                let s = ServerId {
                    group: g as u8,
                    index: i as u32,
                };
                if v > self.factor * median && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Inject an artificial delay on every read from `s` (fault-injection
    /// hook standing in for a disk loaded by other applications).
    pub fn inject_fault(&self, s: ServerId, delay_s: f64) {
        self.faults.lock()[s.index as usize][s.group as usize] = delay_s;
    }

    fn fault_of(&self, s: ServerId) -> f64 {
        self.faults.lock()[s.index as usize][s.group as usize]
    }
}

/// RAID-10 mirrored store.
#[derive(Clone)]
pub struct MirroredStore {
    primary: Arc<Vec<PathBuf>>,
    mirror: Arc<Vec<PathBuf>>,
    layout: MirroredLayout,
    monitor: Arc<HealthMonitor>,
    pool: Arc<ReaderPool>,
}

impl MirroredStore {
    /// New mirrored store (equal-length groups; directories created).
    pub fn new(primary: Vec<PathBuf>, mirror: Vec<PathBuf>, stripe_size: u64) -> io::Result<Self> {
        assert_eq!(
            primary.len(),
            mirror.len(),
            "mirror group must match primary group"
        );
        assert!(!primary.is_empty());
        for d in primary.iter().chain(&mirror) {
            fs::create_dir_all(d)?;
        }
        let layout = MirroredLayout::new(stripe_size, primary.len() as u32);
        let monitor = Arc::new(HealthMonitor::new(primary.len()));
        // One persistent lane per physical server: primary group first,
        // then the mirror group.
        let pool = Arc::new(ReaderPool::new(primary.len() * 2));
        Ok(MirroredStore {
            primary: Arc::new(primary),
            mirror: Arc::new(mirror),
            layout,
            monitor,
            pool,
        })
    }

    /// Model per-server disk bandwidth (bytes/second; 0 = unthrottled).
    pub fn set_io_throttle(&self, bytes_per_s: u64) {
        self.pool.set_throttle(bytes_per_s);
    }

    fn lane_of(&self, s: ServerId) -> usize {
        s.group as usize * self.layout.group_size() as usize + s.index as usize
    }

    /// The shared health monitor (for fault injection and inspection).
    pub fn monitor(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.monitor)
    }

    /// The mirrored layout.
    pub fn layout(&self) -> &MirroredLayout {
        &self.layout
    }

    fn dir_of(&self, s: ServerId) -> &PathBuf {
        match s.group {
            0 => &self.primary[s.index as usize],
            _ => &self.mirror[s.index as usize],
        }
    }

    fn path_of(&self, s: ServerId, name: &str) -> PathBuf {
        self.dir_of(s).join(name)
    }
}

impl ObjectStore for MirroredStore {
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        // Duplex write: identical striped layout in both groups.
        let n = self.layout.group_size() as u64;
        let s = self.layout.stripe.stripe_size;
        for group in 0..2u8 {
            let mut files: Vec<File> = (0..n)
                .map(|i| {
                    File::create(self.path_of(
                        ServerId {
                            group,
                            index: i as u32,
                        },
                        name,
                    ))
                })
                .collect::<io::Result<_>>()?;
            for (k, chunk) in data.chunks(s as usize).enumerate() {
                files[(k as u64 % n) as usize].write_all(chunk)?;
            }
            for mut f in files {
                f.flush()?;
            }
        }
        let meta = self.path_of(ServerId { group: 0, index: 0 }, &format!("{name}.meta"));
        fs::write(meta, data.len().to_string())
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn ObjectReader>> {
        let size = self.size(name)?;
        Ok(Box::new(MirroredReader {
            store: self.clone(),
            name: name.to_string(),
            size,
            flip: false,
        }))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        let meta = self.path_of(ServerId { group: 0, index: 0 }, &format!("{name}.meta"));
        let s = fs::read_to_string(meta)?;
        s.trim()
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad meta: {e}")))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        for group in 0..2u8 {
            for i in 0..self.layout.group_size() {
                let _ = fs::remove_file(self.path_of(ServerId { group, index: i }, name));
            }
        }
        let _ =
            fs::remove_file(self.path_of(ServerId { group: 0, index: 0 }, &format!("{name}.meta")));
        Ok(())
    }
}

/// Parallel mirrored reader with dual-half scheduling and skipping.
pub struct MirroredReader {
    store: MirroredStore,
    name: String,
    size: u64,
    flip: bool,
}

impl ObjectReader for MirroredReader {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        // The blocking path rides the same persistent lanes as the async
        // one: enqueue the per-server fetches, then wait on the completion.
        self.read_at_async(offset, buf.len())?.wait_into(buf)
    }

    fn read_at_async(&mut self, offset: u64, len: usize) -> io::Result<PendingRead> {
        if offset + len as u64 > self.size {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "mirrored read past end of object",
            ));
        }
        if len == 0 {
            return Ok(PendingRead::ready(Vec::new()));
        }
        let first_group = u8::from(self.flip);
        self.flip = !self.flip;
        let skips = self.store.monitor.skips();
        // Dual-half schedule, planned part by part so each part's scatter
        // segments are known at submission time (a skip-redirected part
        // keeps its original half's offsets: both groups store identical
        // striped layouts).
        let half = len as u64 / 2;
        let halves = [
            (offset, half, first_group),
            (offset + half, len as u64 - half, 1 - first_group),
        ];
        let (tx, rx) = channel::unbounded();
        let mut scatters = Vec::new();
        for &(ho, hl, group) in &halves {
            if hl == 0 {
                continue;
            }
            for r in self.store.layout.stripe.map_extent(ho, hl) {
                let part = self.store.layout.place(r, group, &skips);
                let shift = (ho - offset) as usize;
                scatters.push(
                    self.store
                        .layout
                        .stripe
                        .scatter(ho, hl, r.server)
                        .into_iter()
                        .map(|(dst, src, n)| (dst + shift, src, n))
                        .collect::<Vec<_>>(),
                );
                let idx = scatters.len() - 1;
                let partner = self.store.layout.partner(part.server);
                let path = self.store.path_of(part.server, &self.name);
                let partner_path = self.store.path_of(partner, &self.name);
                let mon = self.store.monitor();
                let throttle = self.store.pool.throttle_handle();
                let tx = tx.clone();
                let lane = self.store.lane_of(part.server);
                self.store.pool.submit(lane, move || {
                    let fetch = |server: ServerId, path: &PathBuf| -> io::Result<Vec<u8>> {
                        let fault = mon.fault_of(server);
                        let t0 = Instant::now();
                        if fault > 0.0 {
                            std::thread::sleep(std::time::Duration::from_secs_f64(fault));
                        }
                        let mut f = File::open(path)?;
                        f.seek(SeekFrom::Start(part.local_offset))?;
                        let mut out = vec![0u8; part.len as usize];
                        f.read_exact(&mut out)?;
                        pool::pace(&throttle, part.len);
                        mon.record(server, part.len, t0.elapsed().as_secs_f64());
                        Ok(out)
                    };
                    let res = match fetch(part.server, &path) {
                        Ok(out) => Ok(out),
                        // Hard error: the server lost its replica. Mark it
                        // dead (later plans avoid it) and serve this part
                        // from the mirror partner — both groups hold
                        // identical striped layouts.
                        Err(_) => {
                            mon.mark_dead(part.server);
                            fetch(partner, &partner_path)
                        }
                    };
                    let _ = tx.send((idx, res));
                });
            }
        }
        Ok(PendingRead::in_flight(len, rx, scatters))
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::read_all;

    fn dirs(tag: &str, n: usize) -> (Vec<PathBuf>, Vec<PathBuf>) {
        let mk = |g: &str| {
            (0..n)
                .map(|i| {
                    std::env::temp_dir()
                        .join(format!("pio_mirror_{tag}_{}_{g}{i}", std::process::id()))
                })
                .collect::<Vec<_>>()
        };
        (mk("p"), mk("m"))
    }

    fn cleanup(a: &[PathBuf], b: &[PathBuf]) {
        for d in a.iter().chain(b) {
            fs::remove_dir_all(d).ok();
        }
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 % 253) as u8).collect()
    }

    #[test]
    fn round_trip_and_dual_half() {
        let (p, m) = dirs("rt", 4);
        let st = MirroredStore::new(p.clone(), m.clone(), 512).unwrap();
        for size in [0usize, 1, 511, 512, 513, 8192, 50_000] {
            let data = pattern(size);
            st.put("obj", &data).unwrap();
            assert_eq!(read_all(&st, "obj").unwrap(), data, "size {size}");
        }
        cleanup(&p, &m);
    }

    #[test]
    fn both_groups_hold_full_copies() {
        let (p, m) = dirs("dup", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 256).unwrap();
        let data = pattern(4096);
        st.put("obj", &data).unwrap();
        for (pd, md) in p.iter().zip(&m) {
            let a = fs::read(pd.join("obj")).unwrap();
            let b = fs::read(md.join("obj")).unwrap();
            assert_eq!(a, b, "mirror differs from primary");
            assert!(!a.is_empty());
        }
        cleanup(&p, &m);
    }

    #[test]
    fn survives_loss_of_one_group_member_via_skip() {
        let (p, m) = dirs("skip", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let data = pattern(10_000);
        st.put("obj", &data).unwrap();
        // "Stress" primary server 1: huge injected delay plus EWMA training
        // so the monitor marks it hot.
        let hot = ServerId { group: 0, index: 1 };
        let mon = st.monitor();
        mon.record(hot, 1000, 10.0); // 10 ms/B: absurdly slow
        for i in 0..2u32 {
            for g in 0..2u8 {
                let s = ServerId { group: g, index: i };
                if s != hot {
                    mon.record(s, 1_000_000, 0.001);
                }
            }
        }
        assert_eq!(mon.skips(), vec![hot]);
        // Now delete the hot server's file entirely: reads must still work
        // because the plan avoids it.
        fs::remove_file(p[1].join("obj")).unwrap();
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        cleanup(&p, &m);
    }

    #[test]
    fn fault_injection_triggers_skip_detection() {
        let (p, m) = dirs("detect", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 256).unwrap();
        let data = pattern(64 * 1024);
        st.put("obj", &data).unwrap();
        let hot = ServerId { group: 0, index: 0 };
        st.monitor().inject_fault(hot, 0.05);
        let mut r = st.open("obj").unwrap();
        // A few reads train the EWMA; the hot server then gets skipped.
        let mut buf = vec![0u8; 16 * 1024];
        for i in 0..6 {
            r.read_at((i % 4) * 16 * 1024, &mut buf).unwrap();
        }
        assert!(
            st.monitor().skips().contains(&hot),
            "hot server not detected: {:?}",
            st.monitor().skips()
        );
        // Reads still return correct data while skipping.
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..16 * 1024]);
        cleanup(&p, &m);
    }

    #[test]
    fn hard_error_fails_over_to_partner_and_marks_dead() {
        let (p, m) = dirs("failover", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let data = pattern(20_000);
        st.put("obj", &data).unwrap();
        // Kill primary server 1 with NO prior EWMA training: the monitor
        // has no latency signal, so the plan still targets it; the read
        // must succeed anyway via per-part partner failover.
        fs::remove_file(p[1].join("obj")).unwrap();
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        let dead = ServerId { group: 0, index: 1 };
        assert_eq!(st.monitor().dead(), vec![dead]);
        assert!(st.monitor().skips().contains(&dead));
        // Subsequent reads plan around the dead server (no redirected
        // fetch needed — every planned part avoids it).
        let mut r = st.open("obj").unwrap();
        let mut buf = vec![0u8; 4096];
        r.read_at(512, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[512..512 + 4096]);
        cleanup(&p, &m);
    }

    #[test]
    fn losing_both_replicas_reports_an_error() {
        let (p, m) = dirs("bothdead", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        st.put("obj", &pattern(8_000)).unwrap();
        fs::remove_file(p[0].join("obj")).unwrap();
        fs::remove_file(m[0].join("obj")).unwrap();
        let err = read_all(&st, "obj").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        cleanup(&p, &m);
    }

    #[test]
    fn revive_restores_a_dead_server() {
        let (p, m) = dirs("revive", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let dead = ServerId { group: 1, index: 0 };
        st.monitor().mark_dead(dead);
        assert_eq!(st.monitor().dead(), vec![dead]);
        st.monitor().revive(dead);
        assert!(st.monitor().dead().is_empty());
        assert!(st.monitor().skips().is_empty());
        cleanup(&p, &m);
    }

    #[test]
    fn async_read_matches_sync_across_flip_states() {
        let (p, m) = dirs("async", 3);
        let st = MirroredStore::new(p.clone(), m.clone(), 512).unwrap();
        let data = pattern(40_000);
        st.put("obj", &data).unwrap();
        let mut sync_r = st.open("obj").unwrap();
        let mut async_r = st.open("obj").unwrap();
        // Both readers start at the same flip state; issue several reads so
        // both group orders are exercised.
        for (off, len) in [(0u64, 10_000usize), (513, 7777), (100, 1), (0, 40_000)] {
            let mut want = vec![0u8; len];
            sync_r.read_at(off, &mut want).unwrap();
            let got = async_r.read_at_async(off, len).unwrap().wait().unwrap();
            assert_eq!(got, want, "off={off} len={len}");
            assert_eq!(&want[..], &data[off as usize..off as usize + len]);
        }
        cleanup(&p, &m);
    }

    #[test]
    fn async_read_fails_over_to_partner_while_in_flight() {
        let (p, m) = dirs("asyncdead", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let data = pattern(20_000);
        st.put("obj", &data).unwrap();
        // Kill a primary replica, then issue the read asynchronously: the
        // in-flight part hits the dead server on its lane thread and must
        // reroute to the mirror partner before completion.
        fs::remove_file(p[1].join("obj")).unwrap();
        let mut r = st.open("obj").unwrap();
        let pending = r.read_at_async(0, 20_000).unwrap();
        assert_eq!(pending.wait().unwrap(), data);
        assert_eq!(st.monitor().dead(), vec![ServerId { group: 0, index: 1 }]);
        cleanup(&p, &m);
    }

    #[test]
    fn delete_cleans_both_groups() {
        let (p, m) = dirs("del", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 256).unwrap();
        st.put("obj", &pattern(1000)).unwrap();
        st.delete("obj").unwrap();
        for d in p.iter().chain(&m) {
            assert!(!d.join("obj").exists());
        }
        cleanup(&p, &m);
    }
}
