//! RAID-10 mirrored store with CEFT-PVFS read semantics on real files:
//!
//! * writes are duplexed to a primary and a mirror group of server
//!   directories (identical striped layout in each);
//! * reads follow the dual-half schedule — first half of each request from
//!   one group, second half from the other — doubling the number of
//!   directories (disks) serving a single read;
//! * a per-server latency monitor (EWMA over observed read times) marks
//!   slow servers hot, and subsequent reads *skip* them, fetching the
//!   affected ranges from the mirror partner instead — the §4.5 mechanism.

use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use parking_lot::Mutex;

use crate::integrity;
use crate::layout::{MirroredLayout, ServerId};
use crate::pool::{self, PendingRead, RateLimiter, ReaderPool, ScatterSeg};
use crate::store::{ObjectReader, ObjectStore};

/// Where a server stands in the crash → rebuild → rejoin lifecycle.
///
/// A server that suffered a hard failure may hold stale or missing
/// stripes, so reads must keep avoiding it until its partner has rebuilt
/// it: `Degraded` (dead, not yet rebuilding) → `Rebuilding` (copy from
/// partner in progress) → `Healthy` (caught up, serving reads again).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncState {
    /// In rotation; stripes are trusted.
    Healthy,
    /// Failed and excluded; stripes are suspect.
    Degraded,
    /// Being rebuilt from its mirror partner; still excluded.
    Rebuilding,
}

/// Latency-based hot-spot detector shared by all readers of a store.
#[derive(Debug)]
pub struct HealthMonitor {
    /// EWMA of per-byte read latency per server (seconds/byte).
    ewma: Mutex<Vec<[f64; 2]>>,
    /// Smoothing factor.
    alpha: f64,
    /// A server is hot when its EWMA exceeds `factor ×` the group median.
    factor: f64,
    /// Artificial per-read delays for fault injection (seconds).
    faults: Mutex<Vec<[f64; 2]>>,
    /// Servers that returned a hard I/O error: excluded from every
    /// subsequent plan until a resync brings them back (CEFT failover on
    /// the real path — the mirror partner serves their ranges).
    dead: Mutex<Vec<[bool; 2]>>,
    /// Crash/rebuild lifecycle per server (see [`ResyncState`]).
    state: Mutex<Vec<[ResyncState; 2]>>,
    /// Stripes rewritten by read-repair and scrubbing.
    repaired: AtomicU64,
}

impl HealthMonitor {
    /// New monitor for `n` servers per group.
    pub fn new(n: usize) -> Self {
        HealthMonitor {
            ewma: Mutex::new(vec![[0.0; 2]; n]),
            alpha: 0.3,
            factor: 4.0,
            faults: Mutex::new(vec![[0.0; 2]; n]),
            dead: Mutex::new(vec![[false; 2]; n]),
            state: Mutex::new(vec![[ResyncState::Healthy; 2]; n]),
            repaired: AtomicU64::new(0),
        }
    }

    /// Mark a server dead after a hard I/O error; all later plans route
    /// its ranges to the mirror partner, and its stripes are considered
    /// stale until a resync completes.
    pub fn mark_dead(&self, s: ServerId) {
        self.dead.lock()[s.index as usize][s.group as usize] = true;
        self.state.lock()[s.index as usize][s.group as usize] = ResyncState::Degraded;
    }

    /// Try to bring a server back into rotation. Refused (returns
    /// `false`, server stays excluded) while the server is `Degraded` or
    /// `Rebuilding`: a revived-but-stale replica must not serve reads
    /// before [`MirroredStore::resync_server`] has caught it up.
    pub fn revive(&self, s: ServerId) -> bool {
        if self.state.lock()[s.index as usize][s.group as usize] != ResyncState::Healthy {
            return false;
        }
        self.dead.lock()[s.index as usize][s.group as usize] = false;
        true
    }

    /// The server's position in the crash → rebuild → rejoin lifecycle.
    pub fn resync_state(&self, s: ServerId) -> ResyncState {
        self.state.lock()[s.index as usize][s.group as usize]
    }

    /// Enter `Rebuilding` (the server stays excluded from reads).
    pub fn begin_resync(&self, s: ServerId) {
        self.state.lock()[s.index as usize][s.group as usize] = ResyncState::Rebuilding;
    }

    /// Rebuild finished: mark `Healthy` and put the server back into
    /// rotation with a fresh latency history.
    pub fn complete_resync(&self, s: ServerId) {
        self.state.lock()[s.index as usize][s.group as usize] = ResyncState::Healthy;
        self.dead.lock()[s.index as usize][s.group as usize] = false;
        self.ewma.lock()[s.index as usize][s.group as usize] = 0.0;
    }

    /// Count `n` stripes rewritten by read-repair or scrubbing.
    pub fn note_repair(&self, n: u64) {
        self.repaired.fetch_add(n, Ordering::Relaxed);
    }

    /// Total stripes rewritten from a mirror partner so far.
    pub fn repaired_stripes(&self) -> u64 {
        self.repaired.load(Ordering::Relaxed)
    }

    /// Servers currently marked dead.
    pub fn dead(&self) -> Vec<ServerId> {
        let d = self.dead.lock();
        let mut out = Vec::new();
        for (i, pair) in d.iter().enumerate() {
            for (g, &is_dead) in pair.iter().enumerate() {
                if is_dead {
                    out.push(ServerId {
                        group: g as u8,
                        index: i as u32,
                    });
                }
            }
        }
        out
    }

    /// Record an observed read of `bytes` taking `seconds`.
    pub fn record(&self, s: ServerId, bytes: u64, seconds: f64) {
        if bytes == 0 {
            return;
        }
        let per_byte = seconds / bytes as f64;
        let mut e = self.ewma.lock();
        let slot = &mut e[s.index as usize][s.group as usize];
        *slot = if *slot == 0.0 {
            per_byte
        } else {
            (1.0 - self.alpha) * *slot + self.alpha * per_byte
        };
    }

    /// Servers currently considered hot or dead (skippable). Dead servers
    /// are always skipped; hot ones only once enough latency samples exist
    /// to compute a group median.
    pub fn skips(&self) -> Vec<ServerId> {
        let mut out = self.dead();
        let e = self.ewma.lock();
        let mut all: Vec<f64> = e
            .iter()
            .flat_map(|pair| pair.iter().copied())
            .filter(|&x| x > 0.0)
            .collect();
        if all.len() < 2 {
            return out;
        }
        all.sort_by(f64::total_cmp);
        let median = all[all.len() / 2];
        if median <= 0.0 {
            return out;
        }
        for (i, pair) in e.iter().enumerate() {
            for (g, &v) in pair.iter().enumerate() {
                let s = ServerId {
                    group: g as u8,
                    index: i as u32,
                };
                if v > self.factor * median && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Inject an artificial delay on every read from `s` (fault-injection
    /// hook standing in for a disk loaded by other applications).
    pub fn inject_fault(&self, s: ServerId, delay_s: f64) {
        self.faults.lock()[s.index as usize][s.group as usize] = delay_s;
    }

    fn fault_of(&self, s: ServerId) -> f64 {
        self.faults.lock()[s.index as usize][s.group as usize]
    }
}

/// RAID-10 mirrored store.
#[derive(Clone)]
pub struct MirroredStore {
    primary: Arc<Vec<PathBuf>>,
    mirror: Arc<Vec<PathBuf>>,
    layout: MirroredLayout,
    monitor: Arc<HealthMonitor>,
    pool: Arc<ReaderPool>,
}

impl MirroredStore {
    /// New mirrored store (equal-length groups; directories created).
    pub fn new(primary: Vec<PathBuf>, mirror: Vec<PathBuf>, stripe_size: u64) -> io::Result<Self> {
        assert_eq!(
            primary.len(),
            mirror.len(),
            "mirror group must match primary group"
        );
        assert!(!primary.is_empty());
        for d in primary.iter().chain(&mirror) {
            fs::create_dir_all(d)?;
        }
        let layout = MirroredLayout::new(stripe_size, primary.len() as u32);
        let monitor = Arc::new(HealthMonitor::new(primary.len()));
        // One persistent lane per physical server: primary group first,
        // then the mirror group.
        let pool = Arc::new(ReaderPool::new(primary.len() * 2));
        Ok(MirroredStore {
            primary: Arc::new(primary),
            mirror: Arc::new(mirror),
            layout,
            monitor,
            pool,
        })
    }

    /// Model per-server disk bandwidth (bytes/second; 0 = unthrottled).
    pub fn set_io_throttle(&self, bytes_per_s: u64) {
        self.pool.set_throttle(bytes_per_s);
    }

    /// Server requests (lane jobs) issued through this store so far —
    /// the number list I/O collapses.
    pub fn server_requests(&self) -> u64 {
        self.pool.jobs_submitted()
    }

    fn lane_of(&self, s: ServerId) -> usize {
        s.group as usize * self.layout.group_size() as usize + s.index as usize
    }

    /// The shared health monitor (for fault injection and inspection).
    pub fn monitor(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.monitor)
    }

    /// The mirrored layout.
    pub fn layout(&self) -> &MirroredLayout {
        &self.layout
    }

    fn dir_of(&self, s: ServerId) -> &PathBuf {
        match s.group {
            0 => &self.primary[s.index as usize],
            _ => &self.mirror[s.index as usize],
        }
    }

    fn path_of(&self, s: ServerId, name: &str) -> PathBuf {
        self.dir_of(s).join(name)
    }
}

impl ObjectStore for MirroredStore {
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        // Duplex write: identical striped layout in both groups.
        let n = self.layout.group_size() as u64;
        let s = self.layout.stripe.stripe_size;
        // Both groups hold identical striped layouts, so the per-server
        // checksum sidecars are computed once and written to each group.
        let mut sums: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        for (k, chunk) in data.chunks(s as usize).enumerate() {
            sums[(k as u64 % n) as usize].push(integrity::crc32c(chunk));
        }
        for group in 0..2u8 {
            let mut files: Vec<File> = (0..n)
                .map(|i| {
                    File::create(self.path_of(
                        ServerId {
                            group,
                            index: i as u32,
                        },
                        name,
                    ))
                })
                .collect::<io::Result<_>>()?;
            for (k, chunk) in data.chunks(s as usize).enumerate() {
                files[(k as u64 % n) as usize].write_all(chunk)?;
            }
            for mut f in files {
                f.flush()?;
            }
            for (i, server_sums) in sums.iter().enumerate() {
                let side = integrity::sums_path(&self.path_of(
                    ServerId {
                        group,
                        index: i as u32,
                    },
                    name,
                ));
                fs::write(side, integrity::encode_sums(server_sums))?;
            }
        }
        let meta = self.path_of(ServerId { group: 0, index: 0 }, &format!("{name}.meta"));
        fs::write(meta, data.len().to_string())
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn ObjectReader>> {
        Ok(Box::new(self.open_reader(name)?))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        let meta = self.path_of(ServerId { group: 0, index: 0 }, &format!("{name}.meta"));
        let s = fs::read_to_string(meta)?;
        s.trim()
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad meta: {e}")))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        for group in 0..2u8 {
            for i in 0..self.layout.group_size() {
                let p = self.path_of(ServerId { group, index: i }, name);
                integrity::remove_sums(&p);
                let _ = fs::remove_file(p);
            }
        }
        let _ =
            fs::remove_file(self.path_of(ServerId { group: 0, index: 0 }, &format!("{name}.meta")));
        Ok(())
    }
}

/// What one [`MirroredStore::resync_server`] rebuild copied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResyncReport {
    /// Objects rebuilt on the target server.
    pub objects: u64,
    /// Bytes copied from the mirror partner.
    pub bytes: u64,
}

impl MirroredStore {
    /// Open a concrete [`MirroredReader`] (what [`ObjectStore::open`]
    /// boxes), with both groups' checksum sidecars loaded for lane-side
    /// verification and read-repair.
    pub fn open_reader(&self, name: &str) -> io::Result<MirroredReader> {
        let size = self.size(name)?;
        let sums = (0..self.layout.group_size())
            .map(|i| {
                [0u8, 1].map(|group| {
                    Arc::new(integrity::load_sums(
                        &self.path_of(ServerId { group, index: i }, name),
                    ))
                })
            })
            .collect();
        Ok(MirroredReader {
            store: self.clone(),
            name: name.to_string(),
            size,
            sums,
            flip: false,
        })
    }

    /// Verify every replica stripe of `name` against the sidecars, paced
    /// by `limiter`, and rewrite any corrupt stripe from its mirror
    /// partner (counted in [`HealthMonitor::repaired_stripes`]). Returns
    /// `(repaired, unrepairable)` — a stripe is unrepairable when both
    /// replicas fail verification.
    pub fn scrub_object(
        &self,
        name: &str,
        limiter: &mut RateLimiter,
    ) -> io::Result<(u64, Vec<(ServerId, u64)>)> {
        let s = self.layout.stripe.stripe_size;
        let mut repaired = 0u64;
        let mut unrepairable = Vec::new();
        for group in 0..2u8 {
            for i in 0..self.layout.group_size() {
                let server = ServerId { group, index: i };
                let path = self.path_of(server, name);
                let partner_path = self.path_of(self.layout.partner(server), name);
                for k in integrity::scrub_file(&path, s, limiter)? {
                    // Fetch the partner's copy of the stripe and check it
                    // before trusting it as the repair source.
                    let good = (|| -> io::Result<(u64, Vec<u8>)> {
                        let plen = fs::metadata(&partner_path)?.len();
                        let ln = s.min(plen.saturating_sub(k * s));
                        if ln == 0 {
                            return Err(integrity::corrupt_error(&partner_path, k));
                        }
                        let got = integrity::read_aligned(&partner_path, k * s, ln, s, plen)?;
                        limiter.consume(ln);
                        let psums = integrity::load_sums(&partner_path);
                        integrity::verify_aligned(&partner_path, &got.1, got.0, s, &psums)?;
                        Ok(got)
                    })();
                    match good {
                        Ok((start, bytes)) => {
                            repaired += integrity::repair_stripes(&path, start, &bytes, &[k], s)?;
                        }
                        Err(_) => unrepairable.push((server, k)),
                    }
                }
            }
        }
        self.monitor.note_repair(repaired);
        Ok((repaired, unrepairable))
    }

    /// Rebuild every object on `s` from its mirror partner, paced at
    /// `bytes_per_s` (0 = unpaced), then return the server to rotation.
    ///
    /// The server is put into [`ResyncState::Rebuilding`] for the whole
    /// copy, so concurrent reads keep avoiding it; only a fully verified
    /// rebuild flips it back to `Healthy`. On error the server stays
    /// excluded (`Rebuilding`), which fails safe: a half-rebuilt replica
    /// never serves reads.
    pub fn resync_server(&self, s: ServerId, bytes_per_s: u64) -> io::Result<ResyncReport> {
        let partner = self.layout.partner(s);
        self.monitor.begin_resync(s);
        let mut limiter = RateLimiter::new(bytes_per_s);
        let stripe = self.layout.stripe.stripe_size;
        let src_dir = self.dir_of(partner).clone();
        let dst_dir = self.dir_of(s).clone();
        // Deterministic object order: sorted data-file names (sidecars and
        // size metadata ride along with their object).
        let mut names: Vec<String> = fs::read_dir(&src_dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| !n.ends_with(".meta") && !n.ends_with(".sums"))
            .collect();
        names.sort();
        let mut report = ResyncReport::default();
        for name in names {
            let src = src_dir.join(&name);
            let dst = dst_dir.join(&name);
            let sums = integrity::load_sums(&src);
            let mut f = File::open(&src)?;
            let len = f.metadata()?.len();
            let mut out = File::create(&dst)?;
            let mut buf = vec![0u8; stripe.max(1) as usize];
            let mut off = 0u64;
            let mut k = 0u64;
            while off < len {
                let n = ((len - off) as usize).min(buf.len());
                f.seek(SeekFrom::Start(off))?;
                f.read_exact(&mut buf[..n])?;
                limiter.consume(n as u64);
                // The partner is the only good copy left — verify every
                // stripe before it becomes the rebuilt replica.
                if !sums.is_empty() {
                    match sums.get(k as usize) {
                        Some(&want) if integrity::crc32c(&buf[..n]) == want => {}
                        _ => return Err(integrity::corrupt_error(&src, k)),
                    }
                }
                out.write_all(&buf[..n])?;
                off += n as u64;
                k += 1;
            }
            out.flush()?;
            if sums.is_empty() {
                integrity::remove_sums(&dst);
            } else {
                fs::write(integrity::sums_path(&dst), integrity::encode_sums(&sums))?;
            }
            report.objects += 1;
            report.bytes += len;
        }
        self.monitor.complete_resync(s);
        Ok(report)
    }
}

/// Parallel mirrored reader with dual-half scheduling and skipping.
pub struct MirroredReader {
    store: MirroredStore,
    name: String,
    size: u64,
    /// Checksum sidecars per server: `sums[index][group]`, loaded at
    /// open. Read-repair rewrites the on-disk copy, so a reader holding a
    /// stale cached sidecar only risks re-repairing (identical bytes),
    /// never serving bad data.
    sums: Vec<[Arc<Vec<u32>>; 2]>,
    flip: bool,
}

impl ObjectReader for MirroredReader {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        // The blocking path rides the same persistent lanes as the async
        // one: enqueue the per-server fetches, then wait on the completion.
        self.read_at_async(offset, buf.len())?.wait_into(buf)
    }

    fn read_at_async(&mut self, offset: u64, len: usize) -> io::Result<PendingRead> {
        if offset + len as u64 > self.size {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "mirrored read past end of object",
            ));
        }
        if len == 0 {
            return Ok(PendingRead::ready(Vec::new()));
        }
        let first_group = u8::from(self.flip);
        self.flip = !self.flip;
        let skips = self.store.monitor.skips();
        // Dual-half schedule, planned part by part so each part's scatter
        // segments are known at submission time (a skip-redirected part
        // keeps its original half's offsets: both groups store identical
        // striped layouts).
        let half = len as u64 / 2;
        let halves = [
            (offset, half, first_group),
            (offset + half, len as u64 - half, 1 - first_group),
        ];
        let (tx, rx) = channel::unbounded();
        let mut scatters = Vec::new();
        for &(ho, hl, group) in &halves {
            if hl == 0 {
                continue;
            }
            for r in self.store.layout.stripe.map_extent(ho, hl) {
                let part = self.store.layout.place(r, group, &skips);
                let shift = (ho - offset) as usize;
                scatters.push(
                    self.store
                        .layout
                        .stripe
                        .scatter(ho, hl, r.server)
                        .into_iter()
                        .map(|(dst, src, n)| (dst + shift, src, n))
                        .collect::<Vec<_>>(),
                );
                let idx = scatters.len() - 1;
                let partner = self.store.layout.partner(part.server);
                let path = self.store.path_of(part.server, &self.name);
                let partner_path = self.store.path_of(partner, &self.name);
                let stripe = self.store.layout.stripe.stripe_size;
                let local_len = self.store.layout.stripe.server_share(self.size, r.server);
                let psums = Arc::clone(&self.sums[r.server as usize][part.server.group as usize]);
                let qsums = Arc::clone(&self.sums[r.server as usize][partner.group as usize]);
                let mon = self.store.monitor();
                let throttle = self.store.pool.throttle_handle();
                let tx = tx.clone();
                let lane = self.store.lane_of(part.server);
                self.store.pool.submit(lane, move || {
                    // Fetch the stripe-aligned span covering this part
                    // (verification needs whole stripes).
                    let fetch = |server: ServerId, path: &PathBuf| -> io::Result<(u64, Vec<u8>)> {
                        let fault = mon.fault_of(server);
                        let t0 = Instant::now();
                        if fault > 0.0 {
                            std::thread::sleep(std::time::Duration::from_secs_f64(fault));
                        }
                        let got = integrity::read_aligned(
                            path,
                            part.local_offset,
                            part.len,
                            stripe,
                            local_len,
                        )?;
                        pool::pace(&throttle, part.len);
                        mon.record(server, part.len, t0.elapsed().as_secs_f64());
                        Ok(got)
                    };
                    let want = |start: u64, aligned: &[u8]| -> Vec<u8> {
                        integrity::slice_requested(start, aligned, part.local_offset, part.len)
                    };
                    let res: io::Result<Vec<u8>> = (|| {
                        match fetch(part.server, &path) {
                            Ok((astart, aligned)) => {
                                let bad = if psums.is_empty() {
                                    Vec::new()
                                } else {
                                    integrity::bad_stripes(&aligned, astart, stripe, &psums)
                                };
                                if bad.is_empty() {
                                    return Ok(want(astart, &aligned));
                                }
                                // Checksum mismatch: read-repair. Refetch
                                // from the mirror partner, verify *its*
                                // copy, rewrite the corrupt stripes (data
                                // and sidecar), and serve the good bytes.
                                // The server is NOT marked dead — one bad
                                // stripe is a media flaw, not a crash.
                                let (bstart, good) = fetch(partner, &partner_path)?;
                                integrity::verify_aligned(
                                    &partner_path,
                                    &good,
                                    bstart,
                                    stripe,
                                    &qsums,
                                )?;
                                if let Ok(n) =
                                    integrity::repair_stripes(&path, bstart, &good, &bad, stripe)
                                {
                                    mon.note_repair(n);
                                }
                                Ok(want(bstart, &good))
                            }
                            // Hard error: the server lost its replica.
                            // Mark it dead (later plans avoid it until a
                            // resync completes) and serve this part from
                            // the mirror partner — both groups hold
                            // identical striped layouts.
                            Err(_) => {
                                mon.mark_dead(part.server);
                                let (bstart, good) = fetch(partner, &partner_path)?;
                                integrity::verify_aligned(
                                    &partner_path,
                                    &good,
                                    bstart,
                                    stripe,
                                    &qsums,
                                )?;
                                Ok(want(bstart, &good))
                            }
                        }
                    })();
                    let _ = tx.send((idx, res));
                });
            }
        }
        Ok(PendingRead::in_flight(len, rx, scatters))
    }

    fn read_many_at(&mut self, regions: &[(u64, u64)]) -> io::Result<Vec<u8>> {
        self.read_many_at_async(regions)?.wait()
    }

    fn read_many_at_async(&mut self, regions: &[(u64, u64)]) -> io::Result<PendingRead> {
        for &(off, len) in regions {
            if off + len > self.size {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "mirrored read past end of object",
                ));
            }
        }
        let total: usize = regions.iter().map(|&(_, l)| l as usize).sum();
        if total == 0 {
            return Ok(PendingRead::ready(Vec::new()));
        }
        // One flip per list: every region in the call follows the same
        // dual-half orientation, exactly as a sequence of per-region reads
        // would alternate had they been issued through `read_at_async`.
        let first_group = u8::from(self.flip);
        self.flip = !self.flip;
        let skips = self.store.monitor.skips();
        let n = self.store.layout.group_size() as usize;
        // Aggregate: per physical server (lane), the list of
        // (local_offset, len) segments it must serve — in list order so
        // each lane reads its spans monotonically — plus the scatter plan
        // rebasing every segment into the concatenated output buffer.
        let mut segs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 2 * n];
        let mut plans: Vec<Vec<ScatterSeg>> = vec![Vec::new(); 2 * n];
        let mut dst_base = 0usize;
        for &(off, len) in regions {
            let half = len / 2;
            let halves = [
                (off, half, first_group),
                (off + half, len - half, 1 - first_group),
            ];
            for &(ho, hl, group) in &halves {
                if hl == 0 {
                    continue;
                }
                for r in self.store.layout.stripe.map_extent(ho, hl) {
                    let part = self.store.layout.place(r, group, &skips);
                    let lane = self.store.lane_of(part.server);
                    let shift = (ho - off) as usize + dst_base;
                    let src_base: usize = segs[lane].iter().map(|&(_, l)| l as usize).sum();
                    for (dst, src, count) in self.store.layout.stripe.scatter(ho, hl, r.server) {
                        plans[lane].push((dst + shift, src + src_base, count));
                    }
                    segs[lane].push((part.local_offset, part.len));
                }
            }
            dst_base += len as usize;
        }
        let (tx, rx) = channel::unbounded();
        let mut scatters = Vec::new();
        for lane in 0..2 * n {
            let job_segs = std::mem::take(&mut segs[lane]);
            if job_segs.is_empty() {
                continue;
            }
            let idx = scatters.len();
            scatters.push(std::mem::take(&mut plans[lane]));
            let server = ServerId {
                group: (lane / n) as u8,
                index: (lane % n) as u32,
            };
            let partner = self.store.layout.partner(server);
            let path = self.store.path_of(server, &self.name);
            let partner_path = self.store.path_of(partner, &self.name);
            let stripe = self.store.layout.stripe.stripe_size;
            let local_len = self
                .store
                .layout
                .stripe
                .server_share(self.size, server.index);
            let psums = Arc::clone(&self.sums[server.index as usize][server.group as usize]);
            let qsums = Arc::clone(&self.sums[server.index as usize][partner.group as usize]);
            let mon = self.store.monitor();
            let throttle = self.store.pool.throttle_handle();
            let tx = tx.clone();
            self.store.pool.submit(lane, move || {
                // ONE job per server: walk this server's segments in list
                // order, preserving the per-segment verify → read-repair →
                // partner-failover ladder of the single-part path.
                let res: io::Result<Vec<u8>> = (|| {
                    let mut out =
                        Vec::with_capacity(job_segs.iter().map(|&(_, l)| l as usize).sum());
                    for (seg_off, seg_len) in job_segs {
                        let fetch = |srv: ServerId, p: &PathBuf| -> io::Result<(u64, Vec<u8>)> {
                            let fault = mon.fault_of(srv);
                            let t0 = Instant::now();
                            if fault > 0.0 {
                                std::thread::sleep(std::time::Duration::from_secs_f64(fault));
                            }
                            let got =
                                integrity::read_aligned(p, seg_off, seg_len, stripe, local_len)?;
                            pool::pace(&throttle, seg_len);
                            mon.record(srv, seg_len, t0.elapsed().as_secs_f64());
                            Ok(got)
                        };
                        let want = |start: u64, aligned: &[u8]| -> Vec<u8> {
                            integrity::slice_requested(start, aligned, seg_off, seg_len)
                        };
                        let bytes = match fetch(server, &path) {
                            Ok((astart, aligned)) => {
                                let bad = if psums.is_empty() {
                                    Vec::new()
                                } else {
                                    integrity::bad_stripes(&aligned, astart, stripe, &psums)
                                };
                                if bad.is_empty() {
                                    want(astart, &aligned)
                                } else {
                                    let (bstart, good) = fetch(partner, &partner_path)?;
                                    integrity::verify_aligned(
                                        &partner_path,
                                        &good,
                                        bstart,
                                        stripe,
                                        &qsums,
                                    )?;
                                    if let Ok(k) = integrity::repair_stripes(
                                        &path, bstart, &good, &bad, stripe,
                                    ) {
                                        mon.note_repair(k);
                                    }
                                    want(bstart, &good)
                                }
                            }
                            Err(_) => {
                                mon.mark_dead(server);
                                let (bstart, good) = fetch(partner, &partner_path)?;
                                integrity::verify_aligned(
                                    &partner_path,
                                    &good,
                                    bstart,
                                    stripe,
                                    &qsums,
                                )?;
                                want(bstart, &good)
                            }
                        };
                        out.extend_from_slice(&bytes);
                    }
                    Ok(out)
                })();
                let _ = tx.send((idx, res));
            });
        }
        Ok(PendingRead::in_flight(total, rx, scatters))
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::read_all;

    fn dirs(tag: &str, n: usize) -> (Vec<PathBuf>, Vec<PathBuf>) {
        let mk = |g: &str| {
            (0..n)
                .map(|i| {
                    std::env::temp_dir()
                        .join(format!("pio_mirror_{tag}_{}_{g}{i}", std::process::id()))
                })
                .collect::<Vec<_>>()
        };
        (mk("p"), mk("m"))
    }

    fn cleanup(a: &[PathBuf], b: &[PathBuf]) {
        for d in a.iter().chain(b) {
            fs::remove_dir_all(d).ok();
        }
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 % 253) as u8).collect()
    }

    #[test]
    fn round_trip_and_dual_half() {
        let (p, m) = dirs("rt", 4);
        let st = MirroredStore::new(p.clone(), m.clone(), 512).unwrap();
        for size in [0usize, 1, 511, 512, 513, 8192, 50_000] {
            let data = pattern(size);
            st.put("obj", &data).unwrap();
            assert_eq!(read_all(&st, "obj").unwrap(), data, "size {size}");
        }
        cleanup(&p, &m);
    }

    #[test]
    fn both_groups_hold_full_copies() {
        let (p, m) = dirs("dup", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 256).unwrap();
        let data = pattern(4096);
        st.put("obj", &data).unwrap();
        for (pd, md) in p.iter().zip(&m) {
            let a = fs::read(pd.join("obj")).unwrap();
            let b = fs::read(md.join("obj")).unwrap();
            assert_eq!(a, b, "mirror differs from primary");
            assert!(!a.is_empty());
        }
        cleanup(&p, &m);
    }

    #[test]
    fn survives_loss_of_one_group_member_via_skip() {
        let (p, m) = dirs("skip", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let data = pattern(10_000);
        st.put("obj", &data).unwrap();
        // "Stress" primary server 1: huge injected delay plus EWMA training
        // so the monitor marks it hot.
        let hot = ServerId { group: 0, index: 1 };
        let mon = st.monitor();
        mon.record(hot, 1000, 10.0); // 10 ms/B: absurdly slow
        for i in 0..2u32 {
            for g in 0..2u8 {
                let s = ServerId { group: g, index: i };
                if s != hot {
                    mon.record(s, 1_000_000, 0.001);
                }
            }
        }
        assert_eq!(mon.skips(), vec![hot]);
        // Now delete the hot server's file entirely: reads must still work
        // because the plan avoids it.
        fs::remove_file(p[1].join("obj")).unwrap();
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        cleanup(&p, &m);
    }

    #[test]
    fn fault_injection_triggers_skip_detection() {
        let (p, m) = dirs("detect", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 256).unwrap();
        let data = pattern(64 * 1024);
        st.put("obj", &data).unwrap();
        let hot = ServerId { group: 0, index: 0 };
        st.monitor().inject_fault(hot, 0.05);
        let mut r = st.open("obj").unwrap();
        // A few reads train the EWMA; the hot server then gets skipped.
        let mut buf = vec![0u8; 16 * 1024];
        for i in 0..6 {
            r.read_at((i % 4) * 16 * 1024, &mut buf).unwrap();
        }
        assert!(
            st.monitor().skips().contains(&hot),
            "hot server not detected: {:?}",
            st.monitor().skips()
        );
        // Reads still return correct data while skipping.
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..16 * 1024]);
        cleanup(&p, &m);
    }

    #[test]
    fn hard_error_fails_over_to_partner_and_marks_dead() {
        let (p, m) = dirs("failover", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let data = pattern(20_000);
        st.put("obj", &data).unwrap();
        // Kill primary server 1 with NO prior EWMA training: the monitor
        // has no latency signal, so the plan still targets it; the read
        // must succeed anyway via per-part partner failover.
        fs::remove_file(p[1].join("obj")).unwrap();
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        let dead = ServerId { group: 0, index: 1 };
        assert_eq!(st.monitor().dead(), vec![dead]);
        assert!(st.monitor().skips().contains(&dead));
        // Subsequent reads plan around the dead server (no redirected
        // fetch needed — every planned part avoids it).
        let mut r = st.open("obj").unwrap();
        let mut buf = vec![0u8; 4096];
        r.read_at(512, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[512..512 + 4096]);
        cleanup(&p, &m);
    }

    #[test]
    fn losing_both_replicas_reports_an_error() {
        let (p, m) = dirs("bothdead", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        st.put("obj", &pattern(8_000)).unwrap();
        fs::remove_file(p[0].join("obj")).unwrap();
        fs::remove_file(m[0].join("obj")).unwrap();
        let err = read_all(&st, "obj").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        cleanup(&p, &m);
    }

    #[test]
    fn revive_is_refused_until_resync_completes() {
        let (p, m) = dirs("revive", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let data = pattern(10_000);
        st.put("obj", &data).unwrap();
        let dead = ServerId { group: 1, index: 0 };
        st.monitor().mark_dead(dead);
        assert_eq!(st.monitor().dead(), vec![dead]);
        assert_eq!(st.monitor().resync_state(dead), ResyncState::Degraded);
        // A bare revive (the old instant-rejoin path) must be refused:
        // the server's stripes are stale until its partner rebuilds it.
        assert!(!st.monitor().revive(dead));
        assert_eq!(st.monitor().dead(), vec![dead]);
        // Simulate the data loss the crash caused, then rebuild.
        fs::remove_file(m[0].join("obj")).unwrap();
        let report = st.resync_server(dead, 0).unwrap();
        assert_eq!(report.objects, 1);
        assert!(report.bytes > 0);
        assert_eq!(st.monitor().resync_state(dead), ResyncState::Healthy);
        assert!(st.monitor().dead().is_empty());
        assert!(st.monitor().skips().is_empty());
        // The rebuilt replica is byte-identical to its partner.
        assert_eq!(
            fs::read(m[0].join("obj")).unwrap(),
            fs::read(p[0].join("obj")).unwrap()
        );
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        cleanup(&p, &m);
    }

    #[test]
    fn read_repair_fixes_a_flipped_bit_from_the_partner() {
        let (p, m) = dirs("repair", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let data = pattern(20_000);
        st.put("obj", &data).unwrap();
        // Flip a bit in primary server 0's local file.
        let victim = p[0].join("obj");
        let pristine = fs::read(&victim).unwrap();
        let mut raw = pristine.clone();
        raw[1000] ^= 0x20;
        fs::write(&victim, &raw).unwrap();
        // Full reads return bytes identical to the original, transparently.
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        assert!(st.monitor().repaired_stripes() > 0, "repair not counted");
        // The corruption was healed on disk, and the server was NOT
        // declared dead (a media flaw is not a crash).
        assert_eq!(fs::read(&victim).unwrap(), pristine);
        assert!(st.monitor().dead().is_empty());
        assert!(st
            .scrub_object("obj", &mut RateLimiter::unlimited())
            .unwrap()
            .1
            .is_empty());
        cleanup(&p, &m);
    }

    #[test]
    fn corruption_on_both_replicas_is_an_error() {
        let (p, m) = dirs("bothbad", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        st.put("obj", &pattern(8_000)).unwrap();
        for dir in [&p[0], &m[0]] {
            let f = dir.join("obj");
            let mut raw = fs::read(&f).unwrap();
            raw[10] ^= 0x01;
            fs::write(&f, &raw).unwrap();
        }
        let err = read_all(&st, "obj").unwrap_err();
        assert!(integrity::is_corrupt(&err), "{err}");
        cleanup(&p, &m);
    }

    #[test]
    fn scrub_repairs_silent_corruption_before_any_read() {
        let (p, m) = dirs("scrub", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 256).unwrap();
        let data = pattern(30_000);
        st.put("obj", &data).unwrap();
        // Silently corrupt two stripes on different servers.
        for (dir, at) in [(&m[1], 100usize), (&p[0], 2000)] {
            let f = dir.join("obj");
            let mut raw = fs::read(&f).unwrap();
            raw[at] ^= 0x80;
            fs::write(&f, &raw).unwrap();
        }
        let (repaired, unrepairable) = st
            .scrub_object("obj", &mut RateLimiter::unlimited())
            .unwrap();
        assert_eq!(repaired, 2);
        assert!(unrepairable.is_empty());
        assert_eq!(st.monitor().repaired_stripes(), 2);
        // Second pass: clean.
        let (again, _) = st
            .scrub_object("obj", &mut RateLimiter::unlimited())
            .unwrap();
        assert_eq!(again, 0);
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        cleanup(&p, &m);
    }

    #[test]
    fn async_read_matches_sync_across_flip_states() {
        let (p, m) = dirs("async", 3);
        let st = MirroredStore::new(p.clone(), m.clone(), 512).unwrap();
        let data = pattern(40_000);
        st.put("obj", &data).unwrap();
        let mut sync_r = st.open("obj").unwrap();
        let mut async_r = st.open("obj").unwrap();
        // Both readers start at the same flip state; issue several reads so
        // both group orders are exercised.
        for (off, len) in [(0u64, 10_000usize), (513, 7777), (100, 1), (0, 40_000)] {
            let mut want = vec![0u8; len];
            sync_r.read_at(off, &mut want).unwrap();
            let got = async_r.read_at_async(off, len).unwrap().wait().unwrap();
            assert_eq!(got, want, "off={off} len={len}");
            assert_eq!(&want[..], &data[off as usize..off as usize + len]);
        }
        cleanup(&p, &m);
    }

    #[test]
    fn async_read_fails_over_to_partner_while_in_flight() {
        let (p, m) = dirs("asyncdead", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 128).unwrap();
        let data = pattern(20_000);
        st.put("obj", &data).unwrap();
        // Kill a primary replica, then issue the read asynchronously: the
        // in-flight part hits the dead server on its lane thread and must
        // reroute to the mirror partner before completion.
        fs::remove_file(p[1].join("obj")).unwrap();
        let mut r = st.open("obj").unwrap();
        let pending = r.read_at_async(0, 20_000).unwrap();
        assert_eq!(pending.wait().unwrap(), data);
        assert_eq!(st.monitor().dead(), vec![ServerId { group: 0, index: 1 }]);
        cleanup(&p, &m);
    }

    #[test]
    fn delete_cleans_both_groups() {
        let (p, m) = dirs("del", 2);
        let st = MirroredStore::new(p.clone(), m.clone(), 256).unwrap();
        st.put("obj", &pattern(1000)).unwrap();
        st.delete("obj").unwrap();
        for d in p.iter().chain(&m) {
            assert!(!d.join("obj").exists());
            assert!(!integrity::sums_path(&d.join("obj")).exists());
        }
        cleanup(&p, &m);
    }
}
