//! Round-robin stripe layout (PVFS "simple striped" distribution).
//!
//! A file is cut into `stripe_size` pieces dealt round-robin across `N`
//! data servers, exactly as in PVFS's default distribution with the paper's
//! 64 KB stripe size. Each server stores its stripes back-to-back in a local
//! file, so any logical extent maps to **one contiguous local range per
//! server** — the property that lets a client fetch a large read with a
//! single request per server.

/// Stripe layout descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeLayout {
    /// Stripe unit in bytes (paper: 64 KB).
    pub stripe_size: u64,
    /// Number of data servers.
    pub servers: u32,
}

/// One server's share of a logical extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalRange {
    /// Server index within the layout (0-based).
    pub server: u32,
    /// Offset in the server's local file.
    pub local_offset: u64,
    /// Length of the contiguous local range.
    pub len: u64,
}

impl StripeLayout {
    /// New layout; panics on zero stripe size or zero servers.
    pub fn new(stripe_size: u64, servers: u32) -> Self {
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(servers > 0, "need at least one data server");
        StripeLayout {
            stripe_size,
            servers,
        }
    }

    /// Server holding logical byte `pos`.
    pub fn server_of(&self, pos: u64) -> u32 {
        ((pos / self.stripe_size) % self.servers as u64) as u32
    }

    /// Local offset of logical byte `pos` within its server's file.
    pub fn local_offset_of(&self, pos: u64) -> u64 {
        let stripe = pos / self.stripe_size;
        (stripe / self.servers as u64) * self.stripe_size + pos % self.stripe_size
    }

    /// The per-server contiguous ranges covering logical `[offset,
    /// offset+len)`, in server order, omitting servers with no share.
    pub fn map_extent(&self, offset: u64, len: u64) -> Vec<LocalRange> {
        if len == 0 {
            return Vec::new();
        }
        let s = self.stripe_size;
        let n = self.servers as u64;
        let end = offset + len;
        let first_stripe = offset / s;
        let last_stripe = (end - 1) / s;
        let mut out = Vec::new();
        for srv in 0..n {
            // First covered stripe belonging to this server.
            let k0 = first_covered(first_stripe, srv, n);
            if k0 > last_stripe {
                continue;
            }
            // Last covered stripe belonging to this server.
            let k1 = last_stripe - (last_stripe + n - srv) % n;
            debug_assert!(k1 >= k0 && k1 % n == srv);
            let start_in = if k0 == first_stripe { offset % s } else { 0 };
            let end_in = if k1 == last_stripe {
                end - last_stripe * s
            } else {
                s
            };
            let local_start = (k0 / n) * s + start_in;
            let local_end = (k1 / n) * s + end_in;
            out.push(LocalRange {
                server: srv as u32,
                local_offset: local_start,
                len: local_end - local_start,
            });
        }
        debug_assert_eq!(out.iter().map(|r| r.len).sum::<u64>(), len);
        out
    }

    /// Copy plan translating `server`'s share of logical `[offset,
    /// offset+len)` into a caller buffer: `(dst, src, n)` triples where
    /// `src` indexes the server's fetched bytes (its stripes back to
    /// back, local order) and `dst` indexes the logical buffer. Computed
    /// up front so a completion handler can scatter a part without
    /// re-deriving stripe math.
    pub fn scatter(&self, offset: u64, len: u64, server: u32) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let s = self.stripe_size;
        let n = self.servers as u64;
        let first = offset / s;
        let last = (offset + len - 1) / s;
        let mut src = 0usize;
        for k in first..=last {
            if (k % n) as u32 != server {
                continue;
            }
            let stripe_start = k * s;
            let lo = offset.max(stripe_start);
            let hi = (offset + len).min(stripe_start + s);
            let nn = (hi - lo) as usize;
            out.push(((lo - offset) as usize, src, nn));
            src += nn;
        }
        out
    }

    /// Bytes of a `size`-byte file stored on `server`.
    pub fn server_share(&self, size: u64, server: u32) -> u64 {
        self.map_extent(0, size)
            .into_iter()
            .find(|r| r.server == server)
            .map_or(0, |r| r.len)
    }
}

/// Smallest stripe index ≥ `from` that is ≡ `srv` (mod `n`).
fn first_covered(from: u64, srv: u64, n: u64) -> u64 {
    from + (srv + n - from % n) % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_is_identity() {
        let l = StripeLayout::new(64 << 10, 1);
        let m = l.map_extent(1000, 5000);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].server, 0);
        assert_eq!(m[0].local_offset, 1000);
        assert_eq!(m[0].len, 5000);
    }

    #[test]
    fn whole_stripes_deal_round_robin() {
        let s = 64u64 << 10;
        let l = StripeLayout::new(s, 4);
        // Exactly 8 stripes: each server gets 2, locally contiguous.
        let m = l.map_extent(0, 8 * s);
        assert_eq!(m.len(), 4);
        for (i, r) in m.iter().enumerate() {
            assert_eq!(r.server, i as u32);
            assert_eq!(r.local_offset, 0);
            assert_eq!(r.len, 2 * s);
        }
    }

    #[test]
    fn sub_stripe_read_touches_one_server() {
        let s = 64u64 << 10;
        let l = StripeLayout::new(s, 8);
        // 13-byte read (paper's minimum observed read) inside stripe 10.
        let m = l.map_extent(10 * s + 100, 13);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].server, (10 % 8) as u32);
        assert_eq!(m[0].local_offset, s + 100);
        assert_eq!(m[0].len, 13);
    }

    #[test]
    fn unaligned_extent_splits_correctly() {
        let s = 10u64; // tiny stripes for exhaustive checking
        let l = StripeLayout::new(s, 3);
        // Extent [7, 42): stripes 0..=4.
        let m = l.map_extent(7, 35);
        let total: u64 = m.iter().map(|r| r.len).sum();
        assert_eq!(total, 35);
        // Cross-check byte-by-byte against server_of/local_offset_of.
        let mut per_server = [0u64; 3];
        for pos in 7..42u64 {
            per_server[l.server_of(pos) as usize] += 1;
        }
        for r in &m {
            assert_eq!(per_server[r.server as usize], r.len);
        }
    }

    #[test]
    fn byte_level_agreement_exhaustive() {
        // For every byte, the extent map must contain it in the right
        // server's range at the right local offset.
        let l = StripeLayout::new(8, 5);
        for offset in 0..64u64 {
            for len in 1..64u64 {
                let m = l.map_extent(offset, len);
                assert_eq!(m.iter().map(|r| r.len).sum::<u64>(), len);
                for pos in offset..offset + len {
                    let srv = l.server_of(pos);
                    let lo = l.local_offset_of(pos);
                    let r = m.iter().find(|r| r.server == srv).unwrap();
                    assert!(
                        lo >= r.local_offset && lo < r.local_offset + r.len,
                        "byte {pos} (srv {srv}, local {lo}) outside {r:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn server_share_sums_to_size() {
        let l = StripeLayout::new(64 << 10, 7);
        let size = 2_700_000_000u64 / 1000; // scaled nt
        let total: u64 = (0..7).map(|srv| l.server_share(size, srv)).sum();
        assert_eq!(total, size);
    }

    #[test]
    fn zero_length_maps_to_nothing() {
        let l = StripeLayout::new(64 << 10, 4);
        assert!(l.map_extent(123, 0).is_empty());
    }
}

/// Identifies one data server within a mirrored (RAID-10) deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId {
    /// 0 = primary group, 1 = mirror group.
    pub group: u8,
    /// Index within the group (== stripe layout index).
    pub index: u32,
}

/// Mirrored stripe layout.

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirroredLayout {
    /// The per-group stripe layout (identical in both groups).
    pub stripe: StripeLayout,
}

/// One server's share of a read, after mirroring and skip substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadPart {
    /// The server that will serve this part.
    pub server: ServerId,
    /// Local file offset on that server.
    pub local_offset: u64,
    /// Length.
    pub len: u64,
    /// True when the part was redirected away from a hot server.
    pub redirected: bool,
}

impl MirroredLayout {
    /// New mirrored layout over `servers` per group with `stripe_size`.
    pub fn new(stripe_size: u64, servers: u32) -> Self {
        MirroredLayout {
            stripe: StripeLayout::new(stripe_size, servers),
        }
    }

    /// Servers per group.
    pub fn group_size(&self) -> u32 {
        self.stripe.servers
    }

    /// The mirror partner of a server.
    pub fn partner(&self, s: ServerId) -> ServerId {
        ServerId {
            group: 1 - s.group,
            index: s.index,
        }
    }

    /// Dual-half read schedule for logical `[offset, offset+len)`:
    /// the first half targets `first_group`, the second half the other
    /// group, and every server in `skips` is replaced by its partner
    /// (unless the partner is also hot, in which case the original server
    /// is kept — no pair may lose both replicas).
    pub fn plan_read(
        &self,
        offset: u64,
        len: u64,
        first_group: u8,
        skips: &[ServerId],
    ) -> Vec<ReadPart> {
        let half = len / 2;
        let halves = [
            (offset, half, first_group),
            (offset + half, len - half, 1 - first_group),
        ];
        let mut out = Vec::new();
        for &(o, l, group) in &halves {
            if l == 0 {
                continue;
            }
            for r in self.stripe.map_extent(o, l) {
                out.push(self.place(r, group, skips));
            }
        }
        out
    }

    /// Single-group plan (used for the "naive primary-only" ablation and
    /// for writes' per-group mapping).
    pub fn plan_single_group(
        &self,
        offset: u64,
        len: u64,
        group: u8,
        skips: &[ServerId],
    ) -> Vec<ReadPart> {
        self.stripe
            .map_extent(offset, len)
            .into_iter()
            .map(|r| self.place(r, group, skips))
            .collect()
    }

    pub(crate) fn place(&self, r: LocalRange, group: u8, skips: &[ServerId]) -> ReadPart {
        let mut server = ServerId {
            group,
            index: r.server,
        };
        let mut redirected = false;
        if skips.contains(&server) {
            let partner = self.partner(server);
            if !skips.contains(&partner) {
                server = partner;
                redirected = true;
            }
        }
        ReadPart {
            server,
            local_offset: r.local_offset,
            len: r.len,
            redirected,
        }
    }
}

#[cfg(test)]
mod mirror_tests {
    use super::*;

    const S: u64 = 64 << 10;

    fn id(group: u8, index: u32) -> ServerId {
        ServerId { group, index }
    }

    #[test]
    fn dual_half_uses_both_groups() {
        let l = MirroredLayout::new(S, 4);
        let parts = l.plan_read(0, 8 * S, 0, &[]);
        let g0: u64 = parts
            .iter()
            .filter(|p| p.server.group == 0)
            .map(|p| p.len)
            .sum();
        let g1: u64 = parts
            .iter()
            .filter(|p| p.server.group == 1)
            .map(|p| p.len)
            .sum();
        assert_eq!(g0, 4 * S);
        assert_eq!(g1, 4 * S);
        // All 8 physical servers participate: doubled parallelism.
        let distinct: std::collections::HashSet<_> = parts.iter().map(|p| p.server).collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn coverage_is_exact() {
        let l = MirroredLayout::new(10, 3);
        for offset in 0..40u64 {
            for len in 1..80u64 {
                let parts = l.plan_read(offset, len, 0, &[]);
                let total: u64 = parts.iter().map(|p| p.len).sum();
                assert_eq!(total, len, "offset={offset} len={len}");
            }
        }
    }

    #[test]
    fn skip_redirects_to_partner() {
        let l = MirroredLayout::new(S, 4);
        let hot = id(0, 2);
        let parts = l.plan_read(0, 8 * S, 0, &[hot]);
        assert!(parts.iter().all(|p| p.server != hot));
        // The partner picks up the redirected share on the same offsets.
        let redirected: Vec<_> = parts.iter().filter(|p| p.server == id(1, 2)).collect();
        assert!(!redirected.is_empty());
    }

    #[test]
    fn both_partners_hot_keeps_original() {
        let l = MirroredLayout::new(S, 2);
        let skips = [id(0, 1), id(1, 1)];
        let parts = l.plan_read(0, 4 * S, 0, &skips);
        // Index-1 shares must still be served (by either replica).
        let idx1: u64 = parts
            .iter()
            .filter(|p| p.server.index == 1)
            .map(|p| p.len)
            .sum();
        assert_eq!(idx1, 2 * S);
    }

    #[test]
    fn odd_length_split() {
        let l = MirroredLayout::new(10, 2);
        let parts = l.plan_read(0, 7, 0, &[]);
        let total: u64 = parts.iter().map(|p| p.len).sum();
        assert_eq!(total, 7);
        // First half (3 B) from group 0, second half (4 B) from group 1.
        assert_eq!(
            parts
                .iter()
                .filter(|p| p.server.group == 0)
                .map(|p| p.len)
                .sum::<u64>(),
            3
        );
    }

    #[test]
    fn partner_is_involution() {
        let l = MirroredLayout::new(S, 4);
        for g in 0..2u8 {
            for i in 0..4u32 {
                let s = id(g, i);
                assert_eq!(l.partner(l.partner(s)), s);
            }
        }
    }

    #[test]
    fn alternating_first_group_balances_halves() {
        // Clients alternate which group serves the first half so the lower
        // offsets don't always land on the primary group.
        let l = MirroredLayout::new(S, 2);
        let a = l.plan_read(0, 4 * S, 0, &[]);
        let b = l.plan_read(0, 4 * S, 1, &[]);
        let first_a = a.iter().find(|p| p.local_offset == 0).unwrap();
        let first_b = b.iter().find(|p| p.local_offset == 0).unwrap();
        assert_ne!(first_a.server.group, first_b.server.group);
    }
}
