//! RAID-0 striped store: real files dealt round-robin across N server
//! directories, read back through one *persistent* reader thread per
//! server — a working user-space analogue of PVFS's data path on a single
//! machine (where "servers" are directories, typically on different disks
//! or mount points in a real deployment, and the reader threads stand in
//! for the per-server I/O daemons).

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Arc;

use crossbeam::channel;

use crate::integrity;
use crate::layout::StripeLayout;
use crate::pool::{self, PendingRead, RateLimiter, ReaderPool, ScatterSeg};
use crate::store::{ObjectReader, ObjectStore};

/// RAID-0 store over N server directories.
#[derive(Debug, Clone)]
pub struct StripedStore {
    dirs: Arc<Vec<PathBuf>>,
    layout: StripeLayout,
    pool: Arc<ReaderPool>,
}

impl StripedStore {
    /// New store striping over `dirs` with `stripe_size` (paper: 64 KB).
    /// Directories are created if missing.
    pub fn new(dirs: Vec<PathBuf>, stripe_size: u64) -> io::Result<Self> {
        assert!(!dirs.is_empty(), "need at least one server directory");
        for d in &dirs {
            fs::create_dir_all(d)?;
        }
        let layout = StripeLayout::new(stripe_size, dirs.len() as u32);
        let pool = Arc::new(ReaderPool::new(dirs.len()));
        Ok(StripedStore {
            dirs: Arc::new(dirs),
            layout,
            pool,
        })
    }

    /// Model per-server disk bandwidth (bytes/second; 0 = unthrottled).
    /// Benchmarks use this to stand in for the paper's ~26 MB/s disks.
    pub fn set_io_throttle(&self, bytes_per_s: u64) {
        self.pool.set_throttle(bytes_per_s);
    }

    /// Server requests (lane jobs) issued through this store so far —
    /// the number list I/O collapses.
    pub fn server_requests(&self) -> u64 {
        self.pool.jobs_submitted()
    }

    /// The stripe layout in use.
    pub fn layout(&self) -> &StripeLayout {
        &self.layout
    }

    /// Number of server directories.
    pub fn servers(&self) -> usize {
        self.dirs.len()
    }

    fn server_path(&self, server: u32, name: &str) -> PathBuf {
        self.dirs[server as usize].join(name)
    }

    /// Open a concrete [`StripedReader`] (what [`ObjectStore::open`]
    /// boxes), with each server's checksum sidecar loaded for lane-side
    /// verification.
    pub fn open_reader(&self, name: &str) -> io::Result<StripedReader> {
        let size = self.size(name)?;
        let sums = (0..self.servers())
            .map(|i| Arc::new(integrity::load_sums(&self.server_path(i as u32, name))))
            .collect();
        Ok(StripedReader {
            store: self.clone(),
            name: name.to_string(),
            size,
            sums,
            fault_delays: Vec::new(),
        })
    }

    /// Verify every server's stripes of `name` against the sidecars,
    /// paced by `limiter`. PVFS has no redundancy, so corruption can only
    /// be *reported*: the result lists `(server, local_stripe)` pairs.
    pub fn scrub_object(
        &self,
        name: &str,
        limiter: &mut RateLimiter,
    ) -> io::Result<Vec<(u32, u64)>> {
        let mut out = Vec::new();
        for i in 0..self.servers() as u32 {
            let path = self.server_path(i, name);
            for k in integrity::scrub_file(&path, self.layout.stripe_size, limiter)? {
                out.push((i, k));
            }
        }
        Ok(out)
    }
}

impl ObjectStore for StripedStore {
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        // Each server's local file is its stripes concatenated in order.
        let n = self.servers() as u64;
        let s = self.layout.stripe_size;
        let mut files: Vec<File> = (0..self.servers())
            .map(|i| File::create(self.server_path(i as u32, name)))
            .collect::<io::Result<_>>()?;
        // Each data chunk is exactly one stripe (the last may be partial),
        // so per-server checksum sidecars accumulate chunk by chunk.
        let mut sums: Vec<Vec<u32>> = vec![Vec::new(); self.servers()];
        for (k, chunk) in data.chunks(s as usize).enumerate() {
            let srv = (k as u64 % n) as usize;
            files[srv].write_all(chunk)?;
            sums[srv].push(integrity::crc32c(chunk));
        }
        for mut f in files {
            f.flush()?;
        }
        for (i, server_sums) in sums.into_iter().enumerate() {
            let side = integrity::sums_path(&self.server_path(i as u32, name));
            fs::write(side, integrity::encode_sums(&server_sums))?;
        }
        // Record the logical size (stripe math alone cannot recover it
        // when the last stripe is partial and groups are uneven).
        let meta = self.server_path(0, &format!("{name}.meta"));
        fs::write(meta, data.len().to_string())
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn ObjectReader>> {
        Ok(Box::new(self.open_reader(name)?))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        let meta = self.server_path(0, &format!("{name}.meta"));
        let s = fs::read_to_string(meta)?;
        s.trim()
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad meta: {e}")))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        for i in 0..self.servers() {
            let p = self.server_path(i as u32, name);
            integrity::remove_sums(&p);
            match fs::remove_file(p) {
                Ok(()) | Err(_) => {}
            }
        }
        let _ = fs::remove_file(self.server_path(0, &format!("{name}.meta")));
        Ok(())
    }
}

/// Parallel striped reader.
pub struct StripedReader {
    store: StripedStore,
    name: String,
    size: u64,
    /// Per-server checksum sidecars, loaded at open (empty = none on
    /// disk; those servers read unverified).
    sums: Vec<Arc<Vec<u32>>>,
    /// Test/demo fault injection: artificial delay per server (seconds).
    fault_delays: Vec<f64>,
}

impl StripedReader {
    /// Inject an artificial per-read delay on `server` (testing hook used
    /// by the hot-spot examples; a real deployment would see this as a
    /// loaded disk).
    pub fn set_fault(&mut self, server: usize, delay_s: f64) {
        if self.fault_delays.len() < self.store.servers() {
            self.fault_delays.resize(self.store.servers(), 0.0);
        }
        self.fault_delays[server] = delay_s;
    }
}

impl ObjectReader for StripedReader {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        // The blocking path rides the same persistent lanes as the async
        // one: enqueue the per-server fetches, then wait on the completion.
        self.read_at_async(offset, buf.len())?.wait_into(buf)
    }

    fn read_at_async(&mut self, offset: u64, len: usize) -> io::Result<PendingRead> {
        if offset + len as u64 > self.size {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "striped read past end of object",
            ));
        }
        if len == 0 {
            return Ok(PendingRead::ready(Vec::new()));
        }
        let ranges = self.store.layout.map_extent(offset, len as u64);
        let (tx, rx) = channel::unbounded();
        let mut scatters = Vec::with_capacity(ranges.len());
        for (idx, r) in ranges.iter().enumerate() {
            scatters.push(self.store.layout.scatter(offset, len as u64, r.server));
            let path = self.store.server_path(r.server, &self.name);
            let (lo, ln) = (r.local_offset, r.len);
            let stripe = self.store.layout.stripe_size;
            let local_len = self.store.layout.server_share(self.size, r.server);
            let sums = Arc::clone(&self.sums[r.server as usize]);
            let delay = self
                .fault_delays
                .get(r.server as usize)
                .copied()
                .unwrap_or(0.0);
            let throttle = self.store.pool.throttle_handle();
            let tx = tx.clone();
            self.store.pool.submit(r.server as usize, move || {
                let res = (|| {
                    if delay > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(delay));
                    }
                    // Fetch the stripe-aligned span covering the request
                    // and verify every covered checksum before handing
                    // any byte back. RAID-0 has no second copy, so a
                    // mismatch is surfaced as the typed corrupt error
                    // (PVFS's abort-and-reassign path picks it up).
                    let (astart, aligned) =
                        integrity::read_aligned(&path, lo, ln, stripe, local_len)?;
                    pool::pace(&throttle, ln);
                    integrity::verify_aligned(&path, &aligned, astart, stripe, &sums)?;
                    Ok(integrity::slice_requested(astart, &aligned, lo, ln))
                })();
                let _ = tx.send((idx, res));
            });
        }
        Ok(PendingRead::in_flight(len, rx, scatters))
    }

    fn read_many_at(&mut self, regions: &[(u64, u64)]) -> io::Result<Vec<u8>> {
        self.read_many_at_async(regions)?.wait()
    }

    fn read_many_at_async(&mut self, regions: &[(u64, u64)]) -> io::Result<PendingRead> {
        let total: usize = regions.iter().map(|&(_, l)| l as usize).sum();
        for &(off, len) in regions {
            if off + len > self.size {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "striped read past end of object",
                ));
            }
        }
        if total == 0 {
            return Ok(PendingRead::ready(Vec::new()));
        }
        // List I/O: ONE vectored lane job per involved server, carrying
        // every region's segment on that server, instead of one job per
        // region per server. Scatter plans are rebased into the
        // concatenated output buffer (dst) and the job's concatenated
        // fetch (src); each segment is still checksum-verified on its
        // own, so a flipped bit surfaces the typed corrupt error for
        // exactly the region that covers it.
        let servers = self.store.servers();
        let mut segs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); servers];
        let mut plans: Vec<Vec<ScatterSeg>> = vec![Vec::new(); servers];
        let mut dst_base = 0usize;
        for &(off, len) in regions {
            for r in self.store.layout.map_extent(off, len) {
                let srv = r.server as usize;
                let src_base: usize = segs[srv].iter().map(|&(_, l)| l as usize).sum();
                for (dst, src, n) in self.store.layout.scatter(off, len, r.server) {
                    plans[srv].push((dst + dst_base, src + src_base, n));
                }
                segs[srv].push((r.local_offset, r.len));
            }
            dst_base += len as usize;
        }
        let (tx, rx) = channel::unbounded();
        let mut scatters = Vec::new();
        for srv in 0..servers {
            let job_segs = std::mem::take(&mut segs[srv]);
            if job_segs.is_empty() {
                continue;
            }
            let idx = scatters.len();
            scatters.push(std::mem::take(&mut plans[srv]));
            let path = self.store.server_path(srv as u32, &self.name);
            let stripe = self.store.layout.stripe_size;
            let local_len = self.store.layout.server_share(self.size, srv as u32);
            let sums = Arc::clone(&self.sums[srv]);
            let delay = self.fault_delays.get(srv).copied().unwrap_or(0.0);
            let throttle = self.store.pool.throttle_handle();
            let tx = tx.clone();
            self.store.pool.submit(srv, move || {
                let res = (|| {
                    // One aggregated request: the injected per-request
                    // delay is paid once for the whole list.
                    if delay > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(delay));
                    }
                    let mut out =
                        Vec::with_capacity(job_segs.iter().map(|&(_, l)| l as usize).sum());
                    for (lo, ln) in job_segs {
                        let (astart, aligned) =
                            integrity::read_aligned(&path, lo, ln, stripe, local_len)?;
                        pool::pace(&throttle, ln);
                        integrity::verify_aligned(&path, &aligned, astart, stripe, &sums)?;
                        out.extend_from_slice(&integrity::slice_requested(
                            astart, &aligned, lo, ln,
                        ));
                    }
                    Ok(out)
                })();
                let _ = tx.send((idx, res));
            });
        }
        Ok(PendingRead::in_flight(total, rx, scatters))
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::read_all;

    fn dirs(tag: &str, n: usize) -> Vec<PathBuf> {
        (0..n)
            .map(|i| {
                std::env::temp_dir().join(format!("pio_striped_{tag}_{}_{i}", std::process::id()))
            })
            .collect()
    }

    fn cleanup(ds: &[PathBuf]) {
        for d in ds {
            fs::remove_dir_all(d).ok();
        }
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 % 251) as u8).collect()
    }

    #[test]
    fn round_trip_various_sizes() {
        let ds = dirs("rt", 4);
        let st = StripedStore::new(ds.clone(), 1024).unwrap();
        for size in [0usize, 1, 1023, 1024, 1025, 4096, 100_000] {
            let data = pattern(size);
            st.put("obj", &data).unwrap();
            assert_eq!(st.size("obj").unwrap(), size as u64);
            assert_eq!(read_all(&st, "obj").unwrap(), data, "size {size}");
        }
        cleanup(&ds);
    }

    #[test]
    fn partial_reads_at_odd_offsets() {
        let ds = dirs("partial", 3);
        let st = StripedStore::new(ds.clone(), 64).unwrap();
        let data = pattern(10_000);
        st.put("obj", &data).unwrap();
        let mut r = st.open("obj").unwrap();
        for (off, len) in [(0u64, 1usize), (63, 2), (64, 64), (1000, 3333), (9999, 1)] {
            let mut buf = vec![0u8; len];
            r.read_at(off, &mut buf).unwrap();
            assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
        cleanup(&ds);
    }

    #[test]
    fn stripes_land_on_all_servers() {
        let ds = dirs("spread", 4);
        let st = StripedStore::new(ds.clone(), 100).unwrap();
        st.put("obj", &pattern(1000)).unwrap();
        for (i, d) in ds.iter().enumerate() {
            let sz = fs::metadata(d.join("obj")).unwrap().len();
            assert!(sz > 0, "server {i} holds no data");
        }
        // Per-server share: 10 stripes over 4 servers → 300/300/200/200.
        let s0 = fs::metadata(ds[0].join("obj")).unwrap().len();
        assert_eq!(s0, 300);
        cleanup(&ds);
    }

    #[test]
    fn read_past_end_is_error() {
        let ds = dirs("eof", 2);
        let st = StripedStore::new(ds.clone(), 64).unwrap();
        st.put("obj", &pattern(100)).unwrap();
        let mut r = st.open("obj").unwrap();
        let mut buf = vec![0u8; 200];
        assert!(r.read_at(0, &mut buf).is_err());
        cleanup(&ds);
    }

    #[test]
    fn delete_removes_all_pieces() {
        let ds = dirs("del", 3);
        let st = StripedStore::new(ds.clone(), 64).unwrap();
        st.put("obj", &pattern(1000)).unwrap();
        st.delete("obj").unwrap();
        assert!(st.open("obj").is_err());
        for d in &ds {
            assert!(!d.join("obj").exists());
        }
        cleanup(&ds);
    }

    #[test]
    fn async_read_matches_sync_and_returns_before_the_data() {
        let ds = dirs("async", 4);
        let st = StripedStore::new(ds.clone(), 1024).unwrap();
        let data = pattern(100_000);
        st.put("obj", &data).unwrap();
        let mut r = st.open_reader("obj").unwrap();
        // Slow one server so the fetch takes a visible amount of time.
        r.set_fault(1, 0.05);
        let t0 = std::time::Instant::now();
        let pending = r.read_at_async(0, 50_000).unwrap();
        let submit = t0.elapsed();
        let got = pending.wait().unwrap();
        let total = t0.elapsed();
        assert_eq!(&got[..], &data[..50_000]);
        assert!(
            submit < std::time::Duration::from_millis(40),
            "submission blocked for {submit:?}"
        );
        assert!(total >= std::time::Duration::from_millis(50));
        cleanup(&ds);
    }

    #[test]
    fn concurrent_async_reads_share_the_lanes() {
        let ds = dirs("concurrent", 3);
        let st = StripedStore::new(ds.clone(), 512).unwrap();
        let data = pattern(60_000);
        st.put("obj", &data).unwrap();
        let mut r = st.open("obj").unwrap();
        let pendings: Vec<_> = (0..8u64)
            .map(|i| r.read_at_async(i * 7000, 5000).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            let off = i * 7000;
            assert_eq!(p.wait().unwrap(), &data[off..off + 5000], "read {i}");
        }
        cleanup(&ds);
    }

    #[test]
    fn flipped_bit_surfaces_typed_corrupt_error() {
        let ds = dirs("corrupt", 3);
        let st = StripedStore::new(ds.clone(), 256).unwrap();
        let data = pattern(10_000);
        st.put("obj", &data).unwrap();
        // Flip one bit in server 1's local file (stripe 1, i.e. logical
        // stripe 4 of the object).
        let victim = ds[1].join("obj");
        let mut raw = fs::read(&victim).unwrap();
        raw[300] ^= 0x08;
        fs::write(&victim, &raw).unwrap();
        // A read not touching the bad stripe still succeeds...
        let mut r = st.open("obj").unwrap();
        let mut buf = vec![0u8; 100];
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..100]);
        // ...but covering it reports the typed corrupt error, and the
        // scrub pinpoints it.
        let mut big = vec![0u8; 4000];
        let err = r.read_at(0, &mut big).unwrap_err();
        assert!(integrity::is_corrupt(&err), "{err}");
        assert_eq!(integrity::corrupt_stripe_of(&err), Some(1));
        assert_eq!(
            st.scrub_object("obj", &mut RateLimiter::unlimited())
                .unwrap(),
            vec![(1, 1)]
        );
        cleanup(&ds);
    }

    #[test]
    fn missing_sidecar_reads_unverified() {
        let ds = dirs("nosums", 2);
        let st = StripedStore::new(ds.clone(), 128).unwrap();
        let data = pattern(2_000);
        st.put("obj", &data).unwrap();
        for d in &ds {
            fs::remove_file(integrity::sums_path(&d.join("obj"))).unwrap();
        }
        // No sidecars: legacy objects stay readable, scrub has nothing to
        // check.
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        assert!(st
            .scrub_object("obj", &mut RateLimiter::unlimited())
            .unwrap()
            .is_empty());
        cleanup(&ds);
    }

    #[test]
    fn single_server_degenerates_to_local() {
        let ds = dirs("one", 1);
        let st = StripedStore::new(ds.clone(), 64 << 10).unwrap();
        let data = pattern(200_000);
        st.put("obj", &data).unwrap();
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        cleanup(&ds);
    }
}
