//! RAID-0 striped store: real files dealt round-robin across N server
//! directories, read back through one *persistent* reader thread per
//! server — a working user-space analogue of PVFS's data path on a single
//! machine (where "servers" are directories, typically on different disks
//! or mount points in a real deployment, and the reader threads stand in
//! for the per-server I/O daemons).

use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use crossbeam::channel;

use crate::layout::StripeLayout;
use crate::pool::{self, PendingRead, ReaderPool};
use crate::store::{ObjectReader, ObjectStore};

/// RAID-0 store over N server directories.
#[derive(Debug, Clone)]
pub struct StripedStore {
    dirs: Arc<Vec<PathBuf>>,
    layout: StripeLayout,
    pool: Arc<ReaderPool>,
}

impl StripedStore {
    /// New store striping over `dirs` with `stripe_size` (paper: 64 KB).
    /// Directories are created if missing.
    pub fn new(dirs: Vec<PathBuf>, stripe_size: u64) -> io::Result<Self> {
        assert!(!dirs.is_empty(), "need at least one server directory");
        for d in &dirs {
            fs::create_dir_all(d)?;
        }
        let layout = StripeLayout::new(stripe_size, dirs.len() as u32);
        let pool = Arc::new(ReaderPool::new(dirs.len()));
        Ok(StripedStore {
            dirs: Arc::new(dirs),
            layout,
            pool,
        })
    }

    /// Model per-server disk bandwidth (bytes/second; 0 = unthrottled).
    /// Benchmarks use this to stand in for the paper's ~26 MB/s disks.
    pub fn set_io_throttle(&self, bytes_per_s: u64) {
        self.pool.set_throttle(bytes_per_s);
    }

    /// The stripe layout in use.
    pub fn layout(&self) -> &StripeLayout {
        &self.layout
    }

    /// Number of server directories.
    pub fn servers(&self) -> usize {
        self.dirs.len()
    }

    fn server_path(&self, server: u32, name: &str) -> PathBuf {
        self.dirs[server as usize].join(name)
    }
}

impl ObjectStore for StripedStore {
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        // Each server's local file is its stripes concatenated in order.
        let n = self.servers() as u64;
        let s = self.layout.stripe_size;
        let mut files: Vec<File> = (0..self.servers())
            .map(|i| File::create(self.server_path(i as u32, name)))
            .collect::<io::Result<_>>()?;
        for (k, chunk) in data.chunks(s as usize).enumerate() {
            files[(k as u64 % n) as usize].write_all(chunk)?;
        }
        for mut f in files {
            f.flush()?;
        }
        // Record the logical size (stripe math alone cannot recover it
        // when the last stripe is partial and groups are uneven).
        let meta = self.server_path(0, &format!("{name}.meta"));
        fs::write(meta, data.len().to_string())
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn ObjectReader>> {
        let size = self.size(name)?;
        Ok(Box::new(StripedReader {
            store: self.clone(),
            name: name.to_string(),
            size,
            fault_delays: Vec::new(),
        }))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        let meta = self.server_path(0, &format!("{name}.meta"));
        let s = fs::read_to_string(meta)?;
        s.trim()
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad meta: {e}")))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        for i in 0..self.servers() {
            let p = self.server_path(i as u32, name);
            match fs::remove_file(p) {
                Ok(()) | Err(_) => {}
            }
        }
        let _ = fs::remove_file(self.server_path(0, &format!("{name}.meta")));
        Ok(())
    }
}

/// Parallel striped reader.
pub struct StripedReader {
    store: StripedStore,
    name: String,
    size: u64,
    /// Test/demo fault injection: artificial delay per server (seconds).
    fault_delays: Vec<f64>,
}

impl StripedReader {
    /// Inject an artificial per-read delay on `server` (testing hook used
    /// by the hot-spot examples; a real deployment would see this as a
    /// loaded disk).
    pub fn set_fault(&mut self, server: usize, delay_s: f64) {
        if self.fault_delays.len() < self.store.servers() {
            self.fault_delays.resize(self.store.servers(), 0.0);
        }
        self.fault_delays[server] = delay_s;
    }
}

impl ObjectReader for StripedReader {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        // The blocking path rides the same persistent lanes as the async
        // one: enqueue the per-server fetches, then wait on the completion.
        self.read_at_async(offset, buf.len())?.wait_into(buf)
    }

    fn read_at_async(&mut self, offset: u64, len: usize) -> io::Result<PendingRead> {
        if offset + len as u64 > self.size {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "striped read past end of object",
            ));
        }
        if len == 0 {
            return Ok(PendingRead::ready(Vec::new()));
        }
        let ranges = self.store.layout.map_extent(offset, len as u64);
        let (tx, rx) = channel::unbounded();
        let mut scatters = Vec::with_capacity(ranges.len());
        for (idx, r) in ranges.iter().enumerate() {
            scatters.push(self.store.layout.scatter(offset, len as u64, r.server));
            let path = self.store.server_path(r.server, &self.name);
            let (lo, ln) = (r.local_offset, r.len);
            let delay = self
                .fault_delays
                .get(r.server as usize)
                .copied()
                .unwrap_or(0.0);
            let throttle = self.store.pool.throttle_handle();
            let tx = tx.clone();
            self.store.pool.submit(r.server as usize, move || {
                let res = (|| {
                    if delay > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(delay));
                    }
                    let mut f = File::open(path)?;
                    f.seek(SeekFrom::Start(lo))?;
                    let mut out = vec![0u8; ln as usize];
                    f.read_exact(&mut out)?;
                    pool::pace(&throttle, ln);
                    Ok(out)
                })();
                let _ = tx.send((idx, res));
            });
        }
        Ok(PendingRead::in_flight(len, rx, scatters))
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::read_all;

    fn dirs(tag: &str, n: usize) -> Vec<PathBuf> {
        (0..n)
            .map(|i| {
                std::env::temp_dir().join(format!("pio_striped_{tag}_{}_{i}", std::process::id()))
            })
            .collect()
    }

    fn cleanup(ds: &[PathBuf]) {
        for d in ds {
            fs::remove_dir_all(d).ok();
        }
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 % 251) as u8).collect()
    }

    #[test]
    fn round_trip_various_sizes() {
        let ds = dirs("rt", 4);
        let st = StripedStore::new(ds.clone(), 1024).unwrap();
        for size in [0usize, 1, 1023, 1024, 1025, 4096, 100_000] {
            let data = pattern(size);
            st.put("obj", &data).unwrap();
            assert_eq!(st.size("obj").unwrap(), size as u64);
            assert_eq!(read_all(&st, "obj").unwrap(), data, "size {size}");
        }
        cleanup(&ds);
    }

    #[test]
    fn partial_reads_at_odd_offsets() {
        let ds = dirs("partial", 3);
        let st = StripedStore::new(ds.clone(), 64).unwrap();
        let data = pattern(10_000);
        st.put("obj", &data).unwrap();
        let mut r = st.open("obj").unwrap();
        for (off, len) in [(0u64, 1usize), (63, 2), (64, 64), (1000, 3333), (9999, 1)] {
            let mut buf = vec![0u8; len];
            r.read_at(off, &mut buf).unwrap();
            assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
        cleanup(&ds);
    }

    #[test]
    fn stripes_land_on_all_servers() {
        let ds = dirs("spread", 4);
        let st = StripedStore::new(ds.clone(), 100).unwrap();
        st.put("obj", &pattern(1000)).unwrap();
        for (i, d) in ds.iter().enumerate() {
            let sz = fs::metadata(d.join("obj")).unwrap().len();
            assert!(sz > 0, "server {i} holds no data");
        }
        // Per-server share: 10 stripes over 4 servers → 300/300/200/200.
        let s0 = fs::metadata(ds[0].join("obj")).unwrap().len();
        assert_eq!(s0, 300);
        cleanup(&ds);
    }

    #[test]
    fn read_past_end_is_error() {
        let ds = dirs("eof", 2);
        let st = StripedStore::new(ds.clone(), 64).unwrap();
        st.put("obj", &pattern(100)).unwrap();
        let mut r = st.open("obj").unwrap();
        let mut buf = vec![0u8; 200];
        assert!(r.read_at(0, &mut buf).is_err());
        cleanup(&ds);
    }

    #[test]
    fn delete_removes_all_pieces() {
        let ds = dirs("del", 3);
        let st = StripedStore::new(ds.clone(), 64).unwrap();
        st.put("obj", &pattern(1000)).unwrap();
        st.delete("obj").unwrap();
        assert!(st.open("obj").is_err());
        for d in &ds {
            assert!(!d.join("obj").exists());
        }
        cleanup(&ds);
    }

    #[test]
    fn async_read_matches_sync_and_returns_before_the_data() {
        let ds = dirs("async", 4);
        let st = StripedStore::new(ds.clone(), 1024).unwrap();
        let data = pattern(100_000);
        st.put("obj", &data).unwrap();
        let mut r = StripedReader {
            store: st.clone(),
            name: "obj".into(),
            size: st.size("obj").unwrap(),
            fault_delays: Vec::new(),
        };
        // Slow one server so the fetch takes a visible amount of time.
        r.set_fault(1, 0.05);
        let t0 = std::time::Instant::now();
        let pending = r.read_at_async(0, 50_000).unwrap();
        let submit = t0.elapsed();
        let got = pending.wait().unwrap();
        let total = t0.elapsed();
        assert_eq!(&got[..], &data[..50_000]);
        assert!(
            submit < std::time::Duration::from_millis(40),
            "submission blocked for {submit:?}"
        );
        assert!(total >= std::time::Duration::from_millis(50));
        cleanup(&ds);
    }

    #[test]
    fn concurrent_async_reads_share_the_lanes() {
        let ds = dirs("concurrent", 3);
        let st = StripedStore::new(ds.clone(), 512).unwrap();
        let data = pattern(60_000);
        st.put("obj", &data).unwrap();
        let mut r = st.open("obj").unwrap();
        let pendings: Vec<_> = (0..8u64)
            .map(|i| r.read_at_async(i * 7000, 5000).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            let off = i * 7000;
            assert_eq!(p.wait().unwrap(), &data[off..off + 5000], "read {i}");
        }
        cleanup(&ds);
    }

    #[test]
    fn single_server_degenerates_to_local() {
        let ds = dirs("one", 1);
        let st = StripedStore::new(ds.clone(), 64 << 10).unwrap();
        let data = pattern(200_000);
        st.put("obj", &data).unwrap();
        assert_eq!(read_all(&st, "obj").unwrap(), data);
        cleanup(&ds);
    }
}
