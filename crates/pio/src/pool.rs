//! Persistent per-server reader threads and a completion-based
//! nonblocking read API.
//!
//! Before this module existed, every `read_at` on a striped or mirrored
//! store spawned one OS thread per involved server and joined them before
//! returning — tens of microseconds of spawn/join overhead on every call
//! (measured ~32 µs for a one-server 64 KiB read). Now each store owns one
//! long-lived thread per server directory (a *lane*, standing in for one
//! PVFS I/O daemon); a read enqueues one fetch job per involved lane and
//! either blocks on the completion (the classic `read_at`) or returns a
//! [`PendingRead`] handle immediately (`read_at_async`) so the caller can
//! overlap the wait with compute — the primitive the fragment-prefetch
//! pipeline in `mpiblast` is built on.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed set of persistent reader threads, one per server directory.
///
/// Jobs submitted to the same lane run in submission order (one PVFS I/O
/// daemon serves its disk serially); distinct lanes run in parallel. The
/// threads exit when the owning store (all clones of it) is dropped.
pub struct ReaderPool {
    lanes: Vec<Sender<Job>>,
    /// Modeled disk bandwidth in bytes/second (0 = unthrottled). Used by
    /// benchmarks to stand in for the paper's ~26 MB/s disks, where real
    /// reads would be served from the page cache at memory speed.
    throttle: Arc<AtomicU64>,
    /// Jobs ever submitted across all lanes — each stands in for one
    /// request at a PVFS I/O daemon, so benches read it to show the
    /// list-I/O request-count collapse on the real path.
    submitted: Arc<AtomicU64>,
}

impl ReaderPool {
    /// Spawn `lanes` persistent reader threads.
    pub fn new(lanes: usize) -> Self {
        let senders = (0..lanes)
            .map(|_| {
                let (tx, rx) = channel::unbounded::<Job>();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                });
                tx
            })
            .collect();
        ReaderPool {
            lanes: senders,
            throttle: Arc::new(AtomicU64::new(0)),
            submitted: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of lanes (server threads).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Enqueue `job` on `lane`; it runs after everything already queued
    /// there.
    pub fn submit(&self, lane: usize, job: impl FnOnce() + Send + 'static) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.lanes[lane]
            .send(Box::new(job))
            .unwrap_or_else(|_| unreachable!("lane thread outlives its sender"));
    }

    /// Total jobs submitted across all lanes since the pool was created
    /// (one job = one server request).
    pub fn jobs_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Model disk bandwidth: every fetched byte costs `1/bytes_per_s`
    /// seconds of lane time on top of the real read (0 disables).
    pub fn set_throttle(&self, bytes_per_s: u64) {
        self.throttle.store(bytes_per_s, Ordering::Relaxed);
    }

    /// Shared handle to the throttle setting, for capture in fetch jobs.
    pub fn throttle_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.throttle)
    }
}

impl fmt::Debug for ReaderPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReaderPool")
            .field("lanes", &self.lanes.len())
            .field("throttle", &self.throttle.load(Ordering::Relaxed))
            .finish()
    }
}

/// Sleep out the modeled transfer time of `bytes` at the throttle rate
/// (no-op when unthrottled). Called by fetch jobs on their lane thread, so
/// throttled lanes serialize exactly like a real disk would.
pub fn pace(throttle: &AtomicU64, bytes: u64) {
    let rate = throttle.load(Ordering::Relaxed);
    if rate > 0 && bytes > 0 {
        std::thread::sleep(Duration::from_secs_f64(bytes as f64 / rate as f64));
    }
}

/// Token-bucket pacing for background maintenance I/O (scrubbing, mirror
/// resync): `consume` sleeps just enough that the cumulative byte count
/// never exceeds `bytes_per_s × elapsed`. Unlike [`pace`], which models a
/// *disk's* service rate per request, a `RateLimiter` caps a whole
/// background walk so foreground reads keep most of the bandwidth.
#[derive(Debug)]
pub struct RateLimiter {
    rate: u64,
    started: std::time::Instant,
    consumed: u64,
}

impl RateLimiter {
    /// Cap at `bytes_per_s` (0 = unlimited).
    pub fn new(bytes_per_s: u64) -> Self {
        RateLimiter {
            rate: bytes_per_s,
            started: std::time::Instant::now(),
            consumed: 0,
        }
    }

    /// No pacing at all.
    pub fn unlimited() -> Self {
        RateLimiter::new(0)
    }

    /// Account `bytes` of background I/O, sleeping if ahead of the cap.
    pub fn consume(&mut self, bytes: u64) {
        if self.rate == 0 || bytes == 0 {
            return;
        }
        self.consumed += bytes;
        let due = self.consumed as f64 / self.rate as f64;
        let ahead = due - self.started.elapsed().as_secs_f64();
        if ahead > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(ahead));
        }
    }

    /// Bytes accounted so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

/// One fetched part's copy plan: `(dst, src, len)` — copy `len` bytes from
/// offset `src` of the part's contiguous local bytes to offset `dst` of
/// the logical read buffer.
pub type ScatterSeg = (usize, usize, usize);

/// Completion handle for an in-flight read: the read was split into parts
/// (one per involved server lane); each part delivers its bytes through a
/// channel together with a precomputed scatter plan. Waiting assembles the
/// logical buffer; until then the caller is free to compute.
pub struct PendingRead {
    len: usize,
    ready: Option<Vec<u8>>,
    rx: Option<Receiver<(usize, io::Result<Vec<u8>>)>>,
    scatters: Vec<Vec<ScatterSeg>>,
}

impl PendingRead {
    /// An already-completed read (used by sources with no async backend,
    /// e.g. plain files behind the default [`crate::ObjectReader`] impl).
    pub fn ready(data: Vec<u8>) -> Self {
        PendingRead {
            len: data.len(),
            ready: Some(data),
            rx: None,
            scatters: Vec::new(),
        }
    }

    /// A read in flight on pool lanes: `scatters[i]` is the copy plan for
    /// the part that will arrive tagged `i` on `rx`.
    pub fn in_flight(
        len: usize,
        rx: Receiver<(usize, io::Result<Vec<u8>>)>,
        scatters: Vec<Vec<ScatterSeg>>,
    ) -> Self {
        PendingRead {
            len,
            ready: None,
            rx: Some(rx),
            scatters,
        }
    }

    /// Logical length of the read.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length reads.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block until every part has arrived and assemble them into `buf`
    /// (which must be exactly the read's length). Returns the first part
    /// error if any server failed.
    pub fn wait_into(mut self, buf: &mut [u8]) -> io::Result<()> {
        if buf.len() != self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("buffer is {} bytes, read is {}", buf.len(), self.len),
            ));
        }
        if let Some(data) = self.ready.take() {
            buf.copy_from_slice(&data);
            return Ok(());
        }
        let rx = self.rx.take().unwrap_or_else(|| unreachable!());
        let mut first_err = None;
        // Drain every part even after an error so lane sends never linger.
        for _ in 0..self.scatters.len() {
            match rx.recv() {
                Ok((idx, Ok(data))) => {
                    for &(dst, src, n) in &self.scatters[idx] {
                        buf[dst..dst + n].copy_from_slice(&data[src..src + n]);
                    }
                }
                Ok((_, Err(e))) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "reader pool disconnected mid-read",
                    ))
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// [`Self::wait_into`] an owned buffer.
    pub fn wait(self) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; self.len];
        self.wait_into(&mut buf)?;
        Ok(buf)
    }
}

impl fmt::Debug for PendingRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingRead")
            .field("len", &self.len)
            .field("parts", &self.scatters.len())
            .field("ready", &self.ready.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_run_jobs_in_submission_order() {
        let pool = ReaderPool::new(2);
        let (tx, rx) = channel::unbounded();
        for i in 0..10u32 {
            let tx = tx.clone();
            pool.submit(0, move || {
                tx.send(i).unwrap();
            });
        }
        drop(tx);
        let got: Vec<u32> = rx.iter().take(10).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_lanes_run_in_parallel() {
        use std::sync::atomic::AtomicUsize;
        let pool = ReaderPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::unbounded();
        for lane in 0..4 {
            let (b, d, tx) = (Arc::clone(&barrier), Arc::clone(&done), tx.clone());
            pool.submit(lane, move || {
                // Deadlocks unless all four lanes reach this point at once.
                b.wait();
                d.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..4 {
            rx.recv().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pending_read_assembles_scattered_parts() {
        let (tx, rx) = channel::unbounded();
        // Two parts interleaving 2-byte stripes of an 8-byte buffer.
        let scatters = vec![
            vec![(0, 0, 2), (4, 2, 2)], // part 0: bytes 0-1 and 4-5
            vec![(2, 0, 2), (6, 2, 2)], // part 1: bytes 2-3 and 6-7
        ];
        tx.send((1usize, Ok(vec![3u8, 3, 4, 4]))).unwrap();
        tx.send((0usize, Ok(vec![1u8, 1, 2, 2]))).unwrap();
        let p = PendingRead::in_flight(8, rx, scatters);
        assert_eq!(p.wait().unwrap(), vec![1, 1, 3, 3, 2, 2, 4, 4]);
    }

    #[test]
    fn pending_read_surfaces_part_errors() {
        let (tx, rx) = channel::unbounded();
        tx.send((0usize, Ok(vec![0u8; 4]))).unwrap();
        tx.send((
            1usize,
            Err(io::Error::new(io::ErrorKind::NotFound, "replica gone")),
        ))
        .unwrap();
        let p = PendingRead::in_flight(8, rx, vec![vec![(0, 0, 4)], vec![(4, 0, 4)]]);
        assert_eq!(p.wait().unwrap_err().kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn ready_read_needs_matching_buffer() {
        let p = PendingRead::ready(vec![7u8; 3]);
        assert_eq!(p.len(), 3);
        let mut small = [0u8; 2];
        assert!(p.wait_into(&mut small).is_err());
    }

    #[test]
    fn pace_is_a_noop_when_unthrottled() {
        let t = AtomicU64::new(0);
        let t0 = std::time::Instant::now();
        pace(&t, 1 << 30);
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn rate_limiter_caps_throughput() {
        // 1 MB/s cap, 100 KB consumed → at least ~100 ms must elapse.
        let mut lim = RateLimiter::new(1 << 20);
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            lim.consume(10 << 10);
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(80),
            "{:?}",
            t0.elapsed()
        );
        assert_eq!(lim.consumed(), 100 << 10);
        // Unlimited never sleeps.
        let t0 = std::time::Instant::now();
        RateLimiter::unlimited().consume(1 << 40);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }
}
