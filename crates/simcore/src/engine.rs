//! The discrete-event engine.
//!
//! A simulation is a set of [`Component`]s exchanging events of a
//! user-chosen payload type `E` through a central time-ordered queue.
//! Components are addressed by [`CompId`]; delivery order is deterministic:
//! events fire in `(time, insertion sequence)` order, so two runs with the
//! same seed and the same construction order produce identical traces.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::rng::SimRng;
use crate::time::SimTime;

/// Handle to a registered component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub u32);

impl CompId {
    /// A reserved id that no component ever receives; useful as a sentinel
    /// "reply-to" for fire-and-forget requests.
    pub const NONE: CompId = CompId(u32::MAX);
}

/// A simulation actor. Each component owns its private state and reacts to
/// events delivered by the engine, scheduling follow-up events through the
/// [`Ctx`].
pub trait Component<E> {
    /// Handle one event addressed to this component.
    fn on_event(&mut self, ctx: &mut Ctx<'_, E>, ev: E);

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "component"
    }
}

/// Object-safe super-trait adding `Any` downcasting so harnesses can read
/// results back out of components after a run. Blanket-implemented for every
/// `'static` component; user code never implements it directly.
pub trait AnyComponent<E>: Component<E> {
    /// View as `Any` for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
    /// View as `Any` for downcasting (shared).
    fn as_any(&self) -> &dyn std::any::Any;
}

impl<E, T: Component<E> + 'static> AnyComponent<E> for T {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    dst: CompId,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One dispatched (or dropped) event in an engine trace — the replayable
/// record used by determinism checks. Two runs with identical seeds,
/// component construction order and schedules produce identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Dispatch time.
    pub time: SimTime,
    /// Engine-wide insertion sequence number of the event.
    pub seq: u64,
    /// Destination component.
    pub dst: CompId,
    /// `false` when the event was dropped (destination unknown, removed, or
    /// disabled by fault injection).
    pub delivered: bool,
}

/// Scheduling context handed to a component while it processes an event.
pub struct Ctx<'a, E> {
    now: SimTime,
    self_id: CompId,
    seq: &'a mut u64,
    heap: &'a mut BinaryHeap<Reverse<Scheduled<E>>>,
    rng: &'a mut SimRng,
    next_token: &'a mut u64,
    enabled: &'a mut Vec<bool>,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Id of the component currently being dispatched.
    #[inline]
    pub fn self_id(&self) -> CompId {
        self.self_id
    }

    /// Deterministic engine-wide RNG.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Fresh engine-unique correlation token (request ids, tags, ...).
    #[inline]
    pub fn fresh_token(&mut self) -> u64 {
        let t = *self.next_token;
        *self.next_token += 1;
        t
    }

    /// Schedule `ev` for `dst` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, dst: CompId, ev: E) {
        let time = at.max(self.now);
        let seq = *self.seq;
        *self.seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, dst, ev }));
    }

    /// Schedule `ev` for `dst` after `delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, dst: CompId, ev: E) {
        self.schedule_at(self.now.saturating_add(delay), dst, ev);
    }

    /// Deliver `ev` to `dst` "immediately" (same timestamp, after all events
    /// already queued for this instant).
    #[inline]
    pub fn send(&mut self, dst: CompId, ev: E) {
        self.schedule_at(self.now, dst, ev);
    }

    /// Schedule an event to self.
    #[inline]
    pub fn wake_in(&mut self, delay: SimTime, ev: E) {
        self.schedule_in(delay, self.self_id, ev);
    }

    /// Enable or disable event delivery to `target` (fault injection: a
    /// disabled component models a crashed node — every event addressed to
    /// it, including its own pending completions, is silently dropped).
    /// Unknown ids are ignored.
    pub fn set_component_enabled(&mut self, target: CompId, enabled: bool) {
        if let Some(slot) = self.enabled.get_mut(target.0 as usize) {
            *slot = enabled;
        }
    }

    /// Whether `target` currently receives events (unknown ids are `false`).
    pub fn component_enabled(&self, target: CompId) -> bool {
        self.enabled
            .get(target.0 as usize)
            .copied()
            .unwrap_or(false)
    }
}

/// Outcome of a call to [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    Horizon,
    /// The event budget was exhausted (runaway-simulation guard).
    Budget,
}

/// The discrete-event simulation engine.
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    next_token: u64,
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    comps: Vec<Option<Box<dyn AnyComponent<E>>>>,
    names: Vec<String>,
    enabled: Vec<bool>,
    rng: SimRng,
    events_processed: u64,
    events_dropped: u64,
    trace: Option<Vec<TraceEntry>>,
    /// Hard cap on total events processed; guards against accidental
    /// infinite self-scheduling loops. Default: `u64::MAX` (off).
    pub event_budget: u64,
}

impl<E> Engine<E> {
    /// New engine with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            next_token: 1,
            heap: BinaryHeap::new(),
            comps: Vec::new(),
            names: Vec::new(),
            enabled: Vec::new(),
            rng: SimRng::new(seed),
            events_processed: 0,
            events_dropped: 0,
            trace: None,
            event_budget: u64::MAX,
        }
    }

    /// Register a component; returns its address.
    pub fn add<C: Component<E> + 'static>(&mut self, comp: C) -> CompId {
        let id = CompId(self.comps.len() as u32);
        self.names.push(comp.name().to_string());
        self.comps.push(Some(Box::new(comp)));
        self.enabled.push(true);
        id
    }

    /// Enable or disable event delivery to `target` (see
    /// [`Ctx::set_component_enabled`]). Unknown ids are ignored.
    pub fn set_enabled(&mut self, target: CompId, enabled: bool) {
        if let Some(slot) = self.enabled.get_mut(target.0 as usize) {
            *slot = enabled;
        }
    }

    /// Whether `target` currently receives events.
    pub fn is_enabled(&self, target: CompId) -> bool {
        self.enabled
            .get(target.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Events dropped because the destination was unknown or disabled.
    #[inline]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Start recording every dispatched event into the trace buffer
    /// (cleared on each call). Used by the determinism tests.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace so far (empty when tracing is off).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Take the recorded trace, leaving tracing enabled with a fresh buffer.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        match self.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of registered components.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Seed an initial event before (or between) runs.
    pub fn schedule(&mut self, at: SimTime, dst: CompId, ev: E) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, dst, ev }));
    }

    /// Mutable access to a component, downcast to its concrete type.
    ///
    /// Panics if `id` is stale or the type does not match — both indicate
    /// harness bugs, not recoverable conditions.
    pub fn component_mut<C: Component<E> + 'static>(&mut self, id: CompId) -> &mut C {
        self.comps[id.0 as usize]
            .as_mut()
            .expect("component currently dispatched or removed")
            .as_any_mut()
            .downcast_mut::<C>()
            .expect("component type mismatch")
    }

    /// Shared access to a component, downcast to its concrete type.
    pub fn component<C: Component<E> + 'static>(&self, id: CompId) -> &C {
        self.comps[id.0 as usize]
            .as_ref()
            .expect("component currently dispatched or removed")
            .as_any()
            .downcast_ref::<C>()
            .expect("component type mismatch")
    }

    /// Run until the queue drains, `horizon` passes, or the event budget is
    /// exhausted.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            let Some(Reverse(head)) = self.heap.peek() else {
                return RunOutcome::Drained;
            };
            if head.time > horizon {
                return RunOutcome::Horizon;
            }
            if self.events_processed >= self.event_budget {
                return RunOutcome::Budget;
            }
            let Reverse(sch) = self.heap.pop().expect("peeked");
            self.now = sch.time;
            self.events_processed += 1;
            let idx = sch.dst.0 as usize;
            let deliverable = idx < self.comps.len() && self.enabled[idx];
            if let Some(trace) = self.trace.as_mut() {
                trace.push(TraceEntry {
                    time: sch.time,
                    seq: sch.seq,
                    dst: sch.dst,
                    delivered: deliverable,
                });
            }
            if !deliverable {
                // Addressed to CompId::NONE, an unknown id, or a component
                // disabled by fault injection: drop silently.
                self.events_dropped += 1;
                continue;
            }
            let mut comp = match self.comps[idx].take() {
                Some(c) => c,
                None => continue,
            };
            let mut ctx = Ctx {
                now: self.now,
                self_id: sch.dst,
                seq: &mut self.seq,
                heap: &mut self.heap,
                rng: &mut self.rng,
                next_token: &mut self.next_token,
                enabled: &mut self.enabled,
            };
            comp.on_event(&mut ctx, sch.ev);
            self.comps[idx] = Some(comp);
        }
    }

    /// Run until the queue drains (or the budget trips).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: CompId,
        remaining: u32,
        log: Vec<(SimTime, u32)>,
    }

    impl Component<Msg> for Pinger {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Msg) {
            match ev {
                Msg::Ping(n) => {
                    ctx.schedule_in(SimTime::from_millis(1), self.peer, Msg::Pong(n));
                }
                Msg::Pong(n) => {
                    self.log.push((ctx.now(), n));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        ctx.schedule_in(SimTime::from_millis(2), ctx.self_id(), Msg::Ping(n + 1));
                    }
                }
            }
        }
    }

    struct Echo;
    impl Component<Msg> for Echo {
        fn on_event(&mut self, _ctx: &mut Ctx<'_, Msg>, _ev: Msg) {}
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Msg> = Engine::new(42);
        struct Rec {
            seen: Vec<(SimTime, u32)>,
        }
        impl Component<Msg> for Rec {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Msg) {
                if let Msg::Ping(n) = ev {
                    self.seen.push((ctx.now(), n));
                }
            }
        }
        let r = eng.add(Rec { seen: vec![] });
        eng.schedule(SimTime::from_secs(3), r, Msg::Ping(3));
        eng.schedule(SimTime::from_secs(1), r, Msg::Ping(1));
        eng.schedule(SimTime::from_secs(2), r, Msg::Ping(2));
        assert_eq!(eng.run(), RunOutcome::Drained);
        assert_eq!(eng.events_processed(), 3);
        assert_eq!(eng.now(), SimTime::from_secs(3));
        let rec = eng.component::<Rec>(r);
        assert_eq!(
            rec.seen,
            vec![
                (SimTime::from_secs(1), 1),
                (SimTime::from_secs(2), 2),
                (SimTime::from_secs(3), 3),
            ]
        );
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        struct Order {
            seen: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        }
        impl Component<Msg> for Order {
            fn on_event(&mut self, _ctx: &mut Ctx<'_, Msg>, ev: Msg) {
                if let Msg::Ping(n) = ev {
                    self.seen.borrow_mut().push(n);
                }
            }
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let mut eng: Engine<Msg> = Engine::new(0);
        let o = eng.add(Order { seen: seen.clone() });
        for n in 0..10 {
            eng.schedule(SimTime::from_secs(5), o, Msg::Ping(n));
        }
        eng.run();
        assert_eq!(*seen.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn self_scheduling_round_trip() {
        let mut eng: Engine<Msg> = Engine::new(7);
        let echo = eng.add(Echo);
        let pinger = eng.add(Pinger {
            peer: echo,
            remaining: 0,
            log: vec![],
        });
        // Echo drops Pings; have the pinger ping itself through the pong path.
        eng.schedule(SimTime::ZERO, pinger, Msg::Pong(0));
        assert_eq!(eng.run(), RunOutcome::Drained);
        let _ = pinger;
    }

    #[test]
    fn horizon_stops_early() {
        let mut eng: Engine<Msg> = Engine::new(1);
        let echo = eng.add(Echo);
        eng.schedule(SimTime::from_secs(10), echo, Msg::Ping(0));
        assert_eq!(eng.run_until(SimTime::from_secs(5)), RunOutcome::Horizon);
        assert_eq!(eng.events_processed(), 0);
        assert_eq!(eng.run_until(SimTime::from_secs(20)), RunOutcome::Drained);
        assert_eq!(eng.events_processed(), 1);
    }

    #[test]
    fn budget_guard_trips() {
        struct Looper;
        impl Component<Msg> for Looper {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, _ev: Msg) {
                let me = ctx.self_id();
                ctx.schedule_in(SimTime::from_nanos(1), me, Msg::Ping(0));
            }
        }
        let mut eng: Engine<Msg> = Engine::new(1);
        eng.event_budget = 1000;
        let l = eng.add(Looper);
        eng.schedule(SimTime::ZERO, l, Msg::Ping(0));
        assert_eq!(eng.run(), RunOutcome::Budget);
        assert_eq!(eng.events_processed(), 1000);
    }

    #[test]
    fn events_to_none_are_dropped() {
        let mut eng: Engine<Msg> = Engine::new(1);
        eng.schedule(SimTime::ZERO, CompId::NONE, Msg::Ping(0));
        assert_eq!(eng.run(), RunOutcome::Drained);
    }

    #[test]
    fn disabled_components_drop_events() {
        struct Counter {
            n: u32,
        }
        impl Component<Msg> for Counter {
            fn on_event(&mut self, _ctx: &mut Ctx<'_, Msg>, _ev: Msg) {
                self.n += 1;
            }
        }
        let mut eng: Engine<Msg> = Engine::new(1);
        let c = eng.add(Counter { n: 0 });
        eng.schedule(SimTime::from_secs(1), c, Msg::Ping(0));
        eng.schedule(SimTime::from_secs(2), c, Msg::Ping(1));
        eng.schedule(SimTime::from_secs(3), c, Msg::Ping(2));
        assert!(eng.is_enabled(c));
        eng.run_until(SimTime::from_secs(1));
        eng.set_enabled(c, false);
        eng.run_until(SimTime::from_secs(2));
        eng.set_enabled(c, true);
        eng.run();
        assert_eq!(eng.component::<Counter>(c).n, 2, "crashed window dropped");
        assert_eq!(eng.events_dropped(), 1);
    }

    #[test]
    fn components_can_disable_each_other() {
        struct Killer {
            victim: CompId,
        }
        impl Component<Msg> for Killer {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, _ev: Msg) {
                assert!(ctx.component_enabled(self.victim));
                ctx.set_component_enabled(self.victim, false);
            }
        }
        let mut eng: Engine<Msg> = Engine::new(1);
        let victim = eng.add(Echo);
        let killer = eng.add(Killer { victim });
        eng.schedule(SimTime::from_secs(1), killer, Msg::Ping(0));
        eng.schedule(SimTime::from_secs(2), victim, Msg::Ping(0));
        eng.run();
        assert!(!eng.is_enabled(victim));
        assert_eq!(eng.events_dropped(), 1);
    }

    #[test]
    fn traces_are_identical_across_runs() {
        let run = || {
            let mut eng: Engine<Msg> = Engine::new(9);
            eng.enable_trace();
            let echo = eng.add(Echo);
            let pinger = eng.add(Pinger {
                peer: echo,
                remaining: 5,
                log: vec![],
            });
            eng.schedule(SimTime::ZERO, pinger, Msg::Pong(0));
            eng.run();
            eng.take_trace()
        };
        let (a, b) = (run(), run());
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn fresh_tokens_are_unique() {
        struct Tok {
            out: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl Component<Msg> for Tok {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, _ev: Msg) {
                self.out.borrow_mut().push(ctx.fresh_token());
            }
        }
        let out = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let mut eng: Engine<Msg> = Engine::new(1);
        let t = eng.add(Tok { out: out.clone() });
        for _ in 0..5 {
            eng.schedule(SimTime::ZERO, t, Msg::Ping(0));
        }
        eng.run();
        let v = out.borrow();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }
}
