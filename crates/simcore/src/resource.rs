//! Queueing resources embedded inside components.
//!
//! Two service disciplines cover the hardware models:
//!
//! * [`FcfsStation`] — a single server with first-come-first-served order
//!   (disks, NIC transmit/receive paths). Because service times are known
//!   at submission, the station can be simulated analytically: completion
//!   time is `max(now, previous completion) + service`.
//! * [`PsResource`] — generalized processor sharing with `c` servers
//!   (a node's CPUs). Jobs carry a work amount in "server-seconds"; each of
//!   the `k` active jobs progresses at rate `min(1, c/k)`. Because future
//!   arrivals change completion times, the owner drives it with
//!   `advance`/`next_completion` and reschedules wake-ups on every change.

use crate::stats::TimeWeighted;
use crate::time::SimTime;

/// Single FCFS server with deterministic completion times.
#[derive(Debug, Clone)]
pub struct FcfsStation {
    free_at: SimTime,
    busy: TimeWeighted,
    served: u64,
    busy_ns: u64,
}

impl FcfsStation {
    /// New idle station.
    pub fn new(t0: SimTime) -> Self {
        FcfsStation {
            free_at: t0,
            busy: TimeWeighted::new(t0, 0.0),
            served: 0,
            busy_ns: 0,
        }
    }

    /// Submit a request at `now` requiring `service` time; returns its
    /// completion time (the caller schedules the completion event).
    pub fn submit(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let start = self.free_at.max(now);
        let done = start.saturating_add(service);
        self.free_at = done;
        self.served += 1;
        self.busy_ns += service.as_nanos();
        done
    }

    /// Time at which the station next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Queue delay a request submitted at `now` would currently face.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.free_at.saturating_sub(now)
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Cumulative busy time.
    pub fn busy_time(&self) -> SimTime {
        SimTime::from_nanos(self.busy_ns)
    }

    /// Utilization over `[t0, now]`.
    pub fn utilization(&self, now: SimTime, t0: SimTime) -> f64 {
        let span = now.saturating_sub(t0).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        // Busy time cannot exceed wall time even though free_at may be in
        // the future; clamp.
        (self.busy_time().as_secs_f64() / span).min(1.0)
    }

    /// Expose the busy tracker for custom instrumentation.
    pub fn busy_tracker(&mut self) -> &mut TimeWeighted {
        &mut self.busy
    }
}

/// Identifier of a job inside a [`PsResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PsJobId(pub u64);

#[derive(Debug, Clone)]
struct PsJob {
    id: PsJobId,
    remaining: f64, // server-seconds
}

/// Generalized processor sharing with `servers` identical servers.
#[derive(Debug, Clone)]
pub struct PsResource {
    servers: f64,
    jobs: Vec<PsJob>,
    last: SimTime,
    next_id: u64,
    load: TimeWeighted,
    completed: u64,
}

impl PsResource {
    /// New empty resource with the given server count (e.g. 2.0 CPUs).
    pub fn new(t0: SimTime, servers: f64) -> Self {
        assert!(servers > 0.0);
        PsResource {
            servers,
            jobs: Vec::new(),
            last: t0,
            next_id: 1,
            load: TimeWeighted::new(t0, 0.0),
            completed: 0,
        }
    }

    fn rate(&self) -> f64 {
        let k = self.jobs.len() as f64;
        if k == 0.0 {
            0.0
        } else {
            (self.servers / k).min(1.0)
        }
    }

    /// Progress all jobs to `now`, removing finished ones and returning
    /// their ids. Call this before every query or mutation at `now`.
    pub fn advance(&mut self, now: SimTime) -> Vec<PsJobId> {
        let mut finished = Vec::new();
        let mut t = self.last;
        // Jobs may finish at staggered instants before `now`; step through
        // completion epochs so the rate is correct in each interval. Each
        // epoch either finishes at least one job (bounding the loop by the
        // job count) or consumes all available time and breaks.
        while !self.jobs.is_empty() {
            let rate = self.rate();
            // Earliest remaining completion under the current rate.
            let min_rem = self
                .jobs
                .iter()
                .map(|j| j.remaining)
                .fold(f64::INFINITY, f64::min);
            let dt_to_finish = min_rem / rate;
            let dt_avail = (now.saturating_sub(t)).as_secs_f64();
            if dt_to_finish <= dt_avail + 1e-12 {
                let step = dt_to_finish;
                for j in &mut self.jobs {
                    j.remaining -= rate * step;
                }
                t = t.saturating_add(SimTime::from_secs_f64(step)).min(now);
                let mut i = 0;
                let mut any = false;
                while i < self.jobs.len() {
                    if self.jobs[i].remaining <= 1e-9 {
                        finished.push(self.jobs.swap_remove(i).id);
                        self.completed += 1;
                        any = true;
                    } else {
                        i += 1;
                    }
                }
                // Guard against floating-point stall: if nothing finished,
                // force-finish the minimum-remaining job (it was within
                // rounding of done).
                if !any {
                    let (idx, _) = self
                        .jobs
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
                        .expect("nonempty");
                    finished.push(self.jobs.swap_remove(idx).id);
                    self.completed += 1;
                }
            } else {
                for j in &mut self.jobs {
                    j.remaining -= rate * dt_avail;
                }
                break;
            }
        }
        self.last = now;
        self.load.set(now, self.jobs.len() as f64);
        finished
    }

    /// Add a job with `work` server-seconds at `now`. `advance(now)` must be
    /// called first (debug-asserted).
    pub fn add(&mut self, now: SimTime, work: f64) -> PsJobId {
        debug_assert!(self.last == now, "advance() before add()");
        let id = PsJobId(self.next_id);
        self.next_id += 1;
        self.jobs.push(PsJob {
            id,
            remaining: work.max(0.0),
        });
        self.load.set(now, self.jobs.len() as f64);
        id
    }

    /// Remove a job before completion (e.g. cancelled work); returns the
    /// remaining server-seconds if the job existed.
    pub fn remove(&mut self, now: SimTime, id: PsJobId) -> Option<f64> {
        debug_assert!(self.last == now, "advance() before remove()");
        let idx = self.jobs.iter().position(|j| j.id == id)?;
        let job = self.jobs.swap_remove(idx);
        self.load.set(now, self.jobs.len() as f64);
        Some(job.remaining)
    }

    /// Predicted time of the next completion assuming no further arrivals.
    /// `None` when idle.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        debug_assert!(self.last == now, "advance() before next_completion()");
        if self.jobs.is_empty() {
            return None;
        }
        let rate = self.rate();
        let min_rem = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        Some(now.saturating_add(SimTime::from_secs_f64(min_rem / rate)))
    }

    /// Jobs currently in service.
    pub fn active(&self) -> usize {
        self.jobs.len()
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Time-averaged number of active jobs.
    pub fn average_load(&self, now: SimTime) -> f64 {
        self.load.average(now)
    }

    /// Fraction of server capacity in use right now.
    pub fn utilization_now(&self) -> f64 {
        (self.jobs.len() as f64 / self.servers).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_sequences_requests() {
        let mut st = FcfsStation::new(SimTime::ZERO);
        let d1 = st.submit(SimTime::ZERO, SimTime::from_secs(2));
        let d2 = st.submit(SimTime::ZERO, SimTime::from_secs(3));
        assert_eq!(d1, SimTime::from_secs(2));
        assert_eq!(d2, SimTime::from_secs(5));
        // A later arrival after the queue drains starts immediately.
        let d3 = st.submit(SimTime::from_secs(10), SimTime::from_secs(1));
        assert_eq!(d3, SimTime::from_secs(11));
        assert_eq!(st.served(), 3);
        assert_eq!(st.busy_time(), SimTime::from_secs(6));
    }

    #[test]
    fn fcfs_utilization() {
        let mut st = FcfsStation::new(SimTime::ZERO);
        st.submit(SimTime::ZERO, SimTime::from_secs(5));
        let u = st.utilization(SimTime::from_secs(10), SimTime::ZERO);
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ps_single_job_runs_at_full_rate() {
        let mut ps = PsResource::new(SimTime::ZERO, 2.0);
        ps.advance(SimTime::ZERO);
        let _id = ps.add(SimTime::ZERO, 4.0);
        let done = ps.next_completion(SimTime::ZERO).unwrap();
        // One job on a 2-server PS runs at rate 1 (a job can use one server).
        assert_eq!(done, SimTime::from_secs(4));
    }

    #[test]
    fn ps_three_jobs_on_two_cpus_share() {
        let mut ps = PsResource::new(SimTime::ZERO, 2.0);
        ps.advance(SimTime::ZERO);
        for _ in 0..3 {
            ps.add(SimTime::ZERO, 3.0);
        }
        // rate = 2/3 each → 3.0 work finishes at t = 4.5.
        let done = ps.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs_f64() - 4.5).abs() < 1e-9);
        let fin = ps.advance(SimTime::from_secs_f64(4.5));
        assert_eq!(fin.len(), 3);
        assert_eq!(ps.active(), 0);
    }

    #[test]
    fn ps_staggered_arrivals() {
        let mut ps = PsResource::new(SimTime::ZERO, 1.0);
        ps.advance(SimTime::ZERO);
        let a = ps.add(SimTime::ZERO, 2.0);
        // At t=1, add a second job; each then runs at rate 1/2.
        ps.advance(SimTime::from_secs(1));
        let b = ps.add(SimTime::from_secs(1), 2.0);
        // Job a has 1.0 left at t=1 → finishes at t=3; b finishes at t=1+ (2-?)...
        let next = ps.next_completion(SimTime::from_secs(1)).unwrap();
        assert!((next.as_secs_f64() - 3.0).abs() < 1e-9);
        let fin = ps.advance(SimTime::from_secs(3));
        assert_eq!(fin, vec![a]);
        // b had 1.0 remaining at t=3, now alone at rate 1 → done at t=4.
        let next = ps.next_completion(SimTime::from_secs(3)).unwrap();
        assert!((next.as_secs_f64() - 4.0).abs() < 1e-9);
        let fin = ps.advance(SimTime::from_secs(5));
        assert_eq!(fin, vec![b]);
    }

    #[test]
    fn ps_remove_returns_remaining() {
        let mut ps = PsResource::new(SimTime::ZERO, 1.0);
        ps.advance(SimTime::ZERO);
        let id = ps.add(SimTime::ZERO, 10.0);
        ps.advance(SimTime::from_secs(4));
        let rem = ps.remove(SimTime::from_secs(4), id).unwrap();
        assert!((rem - 6.0).abs() < 1e-9);
        assert_eq!(ps.active(), 0);
    }

    #[test]
    fn ps_average_load() {
        let mut ps = PsResource::new(SimTime::ZERO, 1.0);
        ps.advance(SimTime::ZERO);
        ps.add(SimTime::ZERO, 5.0);
        ps.advance(SimTime::from_secs(5));
        // 1 job for 5 s, then idle 5 s → average 0.5 over 10 s.
        ps.advance(SimTime::from_secs(10));
        let avg = ps.average_load(SimTime::from_secs(10));
        assert!((avg - 0.5).abs() < 1e-9, "avg={avg}");
    }
}
