//! Simulated time.
//!
//! Simulation time is a nanosecond counter wrapped in [`SimTime`]. All
//! hardware models compute service times in nanoseconds, which keeps the
//! arithmetic exact and the event ordering deterministic; conversion to
//! floating-point seconds only happens at reporting boundaries.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs saturate to zero: service-time formulas
    /// occasionally produce `-0.0`-ish values from floating-point noise and
    /// a simulator must never schedule into the past.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn saturating_sub(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition; `SimTime::MAX` is absorbing.
    #[inline]
    pub fn saturating_add(self, delta: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(delta.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(3));
        assert_eq!(a - b, SimTime::from_secs(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(b), SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
