//! # parblast-simcore
//!
//! A small, deterministic discrete-event simulation (DES) engine used by the
//! `parblast` workspace to model the PrairieFire Linux cluster from
//! *"A Case Study of Parallel I/O for Biological Sequence Search on Linux
//! Clusters"* (CLUSTER 2003).
//!
//! The engine is domain-agnostic: users pick an event payload type `E`,
//! register [`Component`]s, and exchange events through a time-ordered queue.
//! Determinism guarantees: identical seeds, component registration order and
//! scheduling calls yield bit-identical runs.
//!
//! ```
//! use parblast_simcore::prelude::*;
//!
//! enum Ev { Tick }
//!
//! struct Clock { ticks: u32 }
//! impl Component<Ev> for Clock {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, _ev: Ev) {
//!         self.ticks += 1;
//!         if self.ticks < 3 {
//!             ctx.wake_in(SimTime::from_secs(1), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut eng: Engine<Ev> = Engine::new(0);
//! let clock = eng.add(Clock { ticks: 0 });
//! eng.schedule(SimTime::ZERO, clock, Ev::Tick);
//! eng.run();
//! assert_eq!(eng.component::<Clock>(clock).ticks, 3);
//! assert_eq!(eng.now(), SimTime::from_secs(2));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{AnyComponent, CompId, Component, Ctx, Engine, RunOutcome, TraceEntry};
pub use resource::{FcfsStation, PsJobId, PsResource};
pub use rng::SimRng;
pub use stats::{LogHistogram, Percentiles, Summary, TimeWeighted};
pub use time::SimTime;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::engine::{CompId, Component, Ctx, Engine, RunOutcome};
    pub use crate::resource::{FcfsStation, PsResource};
    pub use crate::rng::SimRng;
    pub use crate::stats::{LogHistogram, Percentiles, Summary, TimeWeighted};
    pub use crate::time::SimTime;
}
