//! Deterministic random number generation for simulations.
//!
//! Wraps a seeded [`rand::rngs::StdRng`] and adds the distributions the
//! hardware and workload models need (exponential, lognormal, discrete
//! empirical). Distributions are hand-rolled on top of `rand` so the
//! workspace stays within its approved dependency set.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Deterministic simulation RNG.
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream. Streams derived with distinct
    /// tags from the same parent are statistically independent and stable
    /// across runs.
    pub fn stream(&self, parent_seed: u64, tag: u64) -> SimRng {
        // SplitMix64-style mixing of (seed, tag).
        let mut z = parent_seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.unit(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with mean `mu` and standard deviation `sigma`.
    #[inline]
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.std_normal()
    }

    /// Lognormal parameterized by the *underlying* normal's `mu`/`sigma`.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal parameterized by its own mean and coefficient of variation
    /// (`cv = stddev / mean`). Handy for "mean 1.5 kb, long right tail"
    /// sequence-length models.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        debug_assert!(mean > 0.0 && cv >= 0.0);
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Sample an index from unnormalized non-negative weights.
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted(): total weight must be positive");
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fill a byte buffer.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Raw `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_by_tag() {
        let root = SimRng::new(5);
        let mut s1 = root.stream(5, 1);
        let mut s2 = root.stream(5, 2);
        let v1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(v1, v2);
        // Same tag reproduces the same stream.
        let mut s1b = root.stream(5, 1);
        let v1b: Vec<u64> = (0..8).map(|_| s1b.next_u64()).collect();
        assert_eq!(v1, v1b);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < 0.15, "sample mean {m}");
    }

    #[test]
    fn lognormal_mean_cv_close() {
        let mut r = SimRng::new(11);
        let n = 40_000;
        let (mean, cv) = (1500.0, 2.0);
        let sum: f64 = (0..n).map(|_| r.lognormal_mean_cv(mean, cv)).sum();
        let m = sum / n as f64;
        assert!(
            (m - mean).abs() / mean < 0.1,
            "sample mean {m} vs expected {mean}"
        );
    }

    #[test]
    fn weighted_prefers_heavy_bucket() {
        let mut r = SimRng::new(17);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(23);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::new(29);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
