//! Measurement primitives: counters, running summaries, time-weighted
//! values, and logarithmic histograms.

use crate::time::SimTime;

/// Running scalar summary (count / mean / min / max / stddev) using
/// Welford's online algorithm.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Tracks the time integral of a piecewise-constant value, e.g. queue depth
/// or busy/idle state, yielding its time average and utilization.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking with an initial value at `t0`.
    pub fn new(t0: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_change: t0,
            integral: 0.0,
            start: t0,
        }
    }

    /// Set a new value at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_sub(self.last_change).as_secs_f64();
        self.integral += self.value * dt;
        self.value = value;
        self.last_change = now;
    }

    /// Add `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-averaged value over `[t0, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.saturating_sub(self.start).as_secs_f64();
        if span <= 0.0 {
            return self.value;
        }
        let pending = self.value * now.saturating_sub(self.last_change).as_secs_f64();
        (self.integral + pending) / span
    }
}

/// Power-of-two bucketed histogram for sizes and latencies spanning many
/// orders of magnitude (13 B .. 220 MB in the paper's Figure 4 trace).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    summary: Summary,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram with 64 power-of-two buckets.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 64],
            summary: Summary::new(),
        }
    }

    /// Record a non-negative value; bucket `i` holds values in
    /// `[2^i, 2^(i+1))` with 0 landing in bucket 0.
    pub fn record(&mut self, x: u64) {
        let idx = if x <= 1 {
            0
        } else {
            63 - x.leading_zeros() as usize
        };
        self.buckets[idx.min(63)] += 1;
        self.summary.record(x as f64);
    }

    /// Underlying scalar summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Iterator over `(bucket_floor, count)` for non-empty buckets.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// Approximate quantile using bucket interpolation.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return 1u64 << i;
            }
        }
        1u64 << 63
    }

    /// Quantile with linear interpolation *inside* the matched
    /// power-of-two bucket, assuming observations are spread uniformly
    /// over `[2^i, 2^(i+1))`. Much tighter than [`Self::quantile`] (which
    /// only returns bucket floors) while staying O(buckets) and clamped to
    /// the observed min/max so the tails never overshoot the data.
    pub fn quantile_interpolated(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = acc + c;
            if (next as f64) >= target {
                let into = (target - acc as f64) / c as f64; // (0, 1]
                let floor = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let width = if i == 0 { 2.0 } else { (1u64 << i) as f64 };
                let v = floor + into * width;
                // The histogram only knows bucket boundaries; the summary
                // knows the true extremes. Clamp so p99 of a single-valued
                // distribution is that value, not its bucket ceiling.
                let lo = self.summary.min().unwrap_or(0.0);
                let hi = self.summary.max().unwrap_or(v);
                return v.clamp(lo, hi);
            }
            acc = next;
        }
        self.summary.max().unwrap_or(0.0)
    }

    /// Median (interpolated).
    pub fn p50(&self) -> f64 {
        self.quantile_interpolated(0.50)
    }

    /// 95th percentile (interpolated).
    pub fn p95(&self) -> f64 {
        self.quantile_interpolated(0.95)
    }

    /// 99th percentile (interpolated).
    pub fn p99(&self) -> f64 {
        self.quantile_interpolated(0.99)
    }

    /// Merge another histogram into this one (bucket-wise), so per-client
    /// latency distributions can be pooled into a cluster-wide one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.summary.merge(&other.summary);
    }

    /// The three tail percentiles experiment reports quote.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
        }
    }
}

/// `p50`/`p95`/`p99` extracted from a [`LogHistogram`], in the histogram's
/// recording unit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        let expected_sd = (5.0f64 / 3.0).sqrt();
        assert!((s.stddev() - expected_sd).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_matches_combined() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in data.iter().enumerate() {
            all.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.stddev() - all.stddev()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(2), 10.0); // 0 for 2 s
        tw.set(SimTime::from_secs(6), 0.0); // 10 for 4 s
        let avg = tw.average(SimTime::from_secs(10)); // 0 for 4 more s
        assert!((avg - 4.0).abs() < 1e-12, "avg={avg}");
    }

    #[test]
    fn time_weighted_utilization_pattern() {
        // Busy 1 s out of every 4 s → 25 % utilization.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        for k in 0..10u64 {
            tw.set(SimTime::from_secs(4 * k), 1.0);
            tw.set(SimTime::from_secs(4 * k + 1), 0.0);
        }
        let u = tw.average(SimTime::from_secs(40));
        assert!((u - 0.25).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_buckets() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 2); // 2 and 3
        assert_eq!(h.bucket(10), 1); // 1024
        assert_eq!(h.summary().count(), 5);
    }

    #[test]
    fn log_histogram_quantile_monotone() {
        let mut h = LogHistogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn interpolated_percentiles_track_uniform_data() {
        let mut h = LogHistogram::new();
        for i in 0..=1000u64 {
            h.record(i);
        }
        let p = h.percentiles();
        // Bucket interpolation on power-of-two buckets is coarse but must
        // land within the right bucket's span of the true percentile.
        assert!(p.p50 >= 256.0 && p.p50 <= 1000.0, "p50={}", p.p50);
        assert!(p.p95 >= 512.0 && p.p95 <= 1000.0, "p95={}", p.p95);
        assert!(p.p99 >= 512.0 && p.p99 <= 1000.0, "p99={}", p.p99);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
    }

    #[test]
    fn interpolated_percentiles_clamp_to_observed_range() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(700);
        }
        let p = h.percentiles();
        assert_eq!(p.p50, 700.0);
        assert_eq!(p.p95, 700.0);
        assert_eq!(p.p99, 700.0);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..500u64 {
            all.record(i * 3);
            if i % 2 == 0 {
                a.record(i * 3);
            } else {
                b.record(i * 3);
            }
        }
        a.merge(&b);
        assert_eq!(a.summary().count(), all.summary().count());
        for i in 0..64 {
            assert_eq!(a.bucket(i), all.bucket(i), "bucket {i}");
        }
        assert_eq!(a.percentiles(), all.percentiles());
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = LogHistogram::new();
        let p = h.percentiles();
        assert_eq!((p.p50, p.p95, p.p99), (0.0, 0.0, 0.0));
    }
}
