//! # parblast-seqdb
//!
//! The sequence-database substrate of the `parblast` workspace:
//!
//! * [`alphabet`] — nucleotide/protein encodings (2-bit packing, reverse
//!   complement);
//! * [`fasta`] — streaming FASTA I/O;
//! * [`blastdb`] — formatted database volumes (the `formatdb` analogue)
//!   read through the [`blastdb::ReadAt`] seam so any I/O backend can
//!   supply the bytes;
//! * [`segment`] — `mpiformatdb`-style segmentation into balanced
//!   fragments;
//! * [`synthetic`] — an `nt`-statistics database generator standing in for
//!   the real 2.7 GB NCBI download (see DESIGN.md's substitution table).

#![warn(missing_docs)]

pub mod alphabet;
pub mod blastdb;
pub mod fasta;
pub mod segment;
pub mod synthetic;

pub use alphabet::{
    complement_nt, decode_aa, decode_nt, encode_aa, encode_aa_seq, encode_nt, encode_nt_seq,
    pack_2bit, reverse_complement, unpack_2bit, unpack_2bit_into, AA_ALPHABET,
};
pub use blastdb::{
    DbSequence, PackedVolume, PackedVolumeStream, ReadAt, SeqType, Volume, VolumeHeader,
    VolumeWriter,
};
pub use fasta::{FastaReader, FastaRecord, FastaWriter};
pub use segment::{fragment_path, segment_into_fragments, FragmentInfo};
pub use synthetic::{extract_query, to_ascii, SyntheticConfig, SyntheticNt};
