//! Database segmentation (the `mpiformatdb` substrate).
//!
//! mpiBLAST's database-segmentation approach splits the formatted database
//! into F fragments of near-equal residue counts so each worker searches a
//! similar amount of data. We do the same at format time: sequences are
//! dealt to the currently-lightest fragment (greedy balancing), each
//! fragment becoming one volume file `<name>.NNN.pdb`.

use std::io;
use std::path::{Path, PathBuf};

use crate::blastdb::{SeqType, VolumeWriter};

/// Description of one written fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentInfo {
    /// Fragment index.
    pub index: u32,
    /// Volume file path.
    pub path: PathBuf,
    /// Sequences in this fragment.
    pub nseq: u64,
    /// Residues in this fragment.
    pub residues: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// Fragment file name for `(name, index)`.
pub fn fragment_path(dir: &Path, name: &str, index: u32) -> PathBuf {
    dir.join(format!("{name}.{index:03}.pdb"))
}

/// Split a stream of `(defline, codes)` sequences into `fragments`
/// balanced volumes under `dir`.
pub fn segment_into_fragments<I>(
    dir: &Path,
    name: &str,
    seq_type: SeqType,
    fragments: u32,
    seqs: I,
) -> io::Result<Vec<FragmentInfo>>
where
    I: IntoIterator<Item = (String, Vec<u8>)>,
{
    assert!(fragments > 0, "need at least one fragment");
    std::fs::create_dir_all(dir)?;
    let mut writers: Vec<VolumeWriter<std::fs::File>> = (0..fragments)
        .map(|i| VolumeWriter::create(fragment_path(dir, name, i), seq_type))
        .collect::<io::Result<_>>()?;
    let mut loads = vec![0u64; fragments as usize];
    for (defline, codes) in seqs {
        // Greedy: lightest fragment takes the next sequence.
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .expect("at least one fragment");
        writers[idx].add_codes(&defline, &codes)?;
        loads[idx] += codes.len() as u64;
    }
    let mut out = Vec::with_capacity(fragments as usize);
    for (i, w) in writers.into_iter().enumerate() {
        let (nseq, residues, bytes) = w.finish()?;
        out.push(FragmentInfo {
            index: i as u32,
            path: fragment_path(dir, name, i as u32),
            nseq,
            residues,
            bytes,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blastdb::Volume;
    use crate::synthetic::{SyntheticConfig, SyntheticNt};
    use std::fs::File;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seg_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn gen_seqs(total: u64) -> Vec<(String, Vec<u8>)> {
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: total,
            ..Default::default()
        });
        let mut v = vec![];
        while let Some(x) = g.next() {
            v.push(x);
        }
        v
    }

    #[test]
    fn fragments_are_balanced() {
        let dir = tmpdir("balance");
        let seqs = gen_seqs(400_000);
        let longest = seqs.iter().map(|(_, c)| c.len() as u64).max().unwrap();
        let frags = segment_into_fragments(&dir, "nt", SeqType::Nucleotide, 8, seqs).unwrap();
        assert_eq!(frags.len(), 8);
        let min = frags.iter().map(|f| f.residues).min().unwrap();
        let max = frags.iter().map(|f| f.residues).max().unwrap();
        // Greedy min-load guarantee: spread bounded by the longest sequence.
        assert!(
            max - min <= longest,
            "imbalance {min}..{max} exceeds longest sequence {longest}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_sequence_lost_or_duplicated() {
        let dir = tmpdir("conserve");
        let seqs = gen_seqs(120_000);
        let total_in: u64 = seqs.iter().map(|(_, c)| c.len() as u64).sum();
        let n_in = seqs.len() as u64;
        let frags = segment_into_fragments(&dir, "nt", SeqType::Nucleotide, 5, seqs).unwrap();
        let n_out: u64 = frags.iter().map(|f| f.nseq).sum();
        let total_out: u64 = frags.iter().map(|f| f.residues).sum();
        assert_eq!(n_in, n_out);
        assert_eq!(total_in, total_out);
        // Deflines must be unique across fragments.
        let mut ids = std::collections::HashSet::new();
        for f in &frags {
            let mut file = File::open(&f.path).unwrap();
            let v = Volume::read_from(&mut file).unwrap();
            for s in &v.sequences {
                assert!(ids.insert(s.defline.clone()), "dup {}", s.defline);
            }
        }
        assert_eq!(ids.len() as u64, n_in);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_fragment_keeps_order() {
        let dir = tmpdir("single");
        let seqs = vec![
            ("a".to_string(), vec![0u8, 1, 2, 3]),
            ("b".to_string(), vec![3u8, 2]),
        ];
        let frags = segment_into_fragments(&dir, "db", SeqType::Nucleotide, 1, seqs).unwrap();
        assert_eq!(frags.len(), 1);
        let mut f = File::open(&frags[0].path).unwrap();
        let v = Volume::read_from(&mut f).unwrap();
        assert_eq!(v.sequences[0].defline, "a");
        assert_eq!(v.sequences[1].defline, "b");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fragment_paths_are_stable() {
        let p = fragment_path(Path::new("/x"), "nt", 7);
        assert_eq!(p, PathBuf::from("/x/nt.007.pdb"));
    }
}
