//! Synthetic `nt`-like database generation.
//!
//! The paper uses NCBI's `nt` (1.76 M sequences, 2.7 GB ≈ mean 1.5 kb per
//! entry) — unavailable here, so we synthesize databases with the same
//! statistics at a configurable scale: lognormal sequence lengths with a
//! heavy right tail, first-order Markov base composition (so local repeats
//! and word hits occur at realistic rates), and NCBI-style deflines.
//!
//! Queries are drawn the way the paper drew its 568-nt query from
//! `ecoli.nt`: a window cut from a database sequence, optionally mutated,
//! so that searches actually find alignments.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::alphabet::decode_nt;

/// Statistics of the generated database.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Target total residues (the "2.7 GB" knob, scaled).
    pub total_residues: u64,
    /// Mean sequence length (nt's ≈ 1534).
    pub mean_len: f64,
    /// Coefficient of variation of the length distribution.
    pub len_cv: f64,
    /// Minimum sequence length.
    pub min_len: usize,
    /// GC content, `0.0..=1.0`.
    pub gc: f64,
    /// First-order Markov "stickiness": probability that the next base
    /// repeats the previous one (0.25 = i.i.d. uniform-ish).
    pub repeat_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            total_residues: 16 << 20,
            mean_len: 1534.0,
            len_cv: 1.8,
            min_len: 60,
            gc: 0.5,
            repeat_bias: 0.3,
            seed: 42,
        }
    }
}

/// Generator state.
pub struct SyntheticNt {
    cfg: SyntheticConfig,
    rng: StdRng,
    emitted: u64,
    count: u64,
}

impl SyntheticNt {
    /// New generator.
    pub fn new(cfg: SyntheticConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        SyntheticNt {
            cfg,
            rng,
            emitted: 0,
            count: 0,
        }
    }

    fn sample_len(&mut self) -> usize {
        let mean = self.cfg.mean_len;
        let cv = self.cfg.len_cv;
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        let z: f64 = {
            let u1: f64 = 1.0 - self.rng.random::<f64>();
            let u2: f64 = self.rng.random();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let len = (mu + sigma2.sqrt() * z).exp();
        (len as usize).max(self.cfg.min_len)
    }

    fn sample_seq(&mut self, len: usize) -> Vec<u8> {
        let gc = self.cfg.gc;
        let bias = self.cfg.repeat_bias;
        // Base probabilities honoring GC content: A,T share (1-gc), C,G share gc.
        let probs = [(1.0 - gc) / 2.0, gc / 2.0, gc / 2.0, (1.0 - gc) / 2.0];
        let mut out = Vec::with_capacity(len);
        let mut prev = 0u8;
        for i in 0..len {
            let c = if i > 0 && self.rng.random::<f64>() < bias {
                prev
            } else {
                let x: f64 = self.rng.random();
                let mut acc = 0.0;
                let mut pick = 3u8;
                for (b, &p) in probs.iter().enumerate() {
                    acc += p;
                    if x < acc {
                        pick = b as u8;
                        break;
                    }
                }
                pick
            };
            out.push(c);
            prev = c;
        }
        out
    }

    /// Next sequence as `(defline, 2-bit codes)`, or `None` once the total
    /// residue budget is spent.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(String, Vec<u8>)> {
        if self.emitted >= self.cfg.total_residues {
            return None;
        }
        let len = self
            .sample_len()
            .min((self.cfg.total_residues - self.emitted) as usize)
            .max(self.cfg.min_len);
        let codes = self.sample_seq(len);
        self.count += 1;
        self.emitted += len as u64;
        let gi = 10_000_000 + self.count;
        let defline = format!(
            "gi|{gi}|snt|SNT{:08}.1 synthetic nucleotide sequence {}",
            self.count, self.count
        );
        Some((defline, codes))
    }

    /// Residues emitted so far.
    pub fn residues(&self) -> u64 {
        self.emitted
    }

    /// Sequences emitted so far.
    pub fn sequences(&self) -> u64 {
        self.count
    }
}

/// Cut a query of `len` residues out of a database sequence (2-bit codes),
/// mutating each position with probability `mutation_rate` — the paper's
/// "568-character query extracted from ecoli.nt" shape.
pub fn extract_query(seq: &[u8], len: usize, mutation_rate: f64, seed: u64) -> Vec<u8> {
    assert!(
        !seq.is_empty(),
        "cannot extract a query from an empty sequence"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let len = len.min(seq.len());
    let start = if seq.len() == len {
        0
    } else {
        rng.random_range(0..seq.len() - len)
    };
    seq[start..start + len]
        .iter()
        .map(|&c| {
            if rng.random::<f64>() < mutation_rate {
                (c + 1 + rng.random_range(0..3u8)) & 3
            } else {
                c
            }
        })
        .collect()
}

/// Render 2-bit codes as ASCII (for FASTA output or debugging).
pub fn to_ascii(codes: &[u8]) -> Vec<u8> {
    codes.iter().map(|&c| decode_nt(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_total_residue_budget() {
        let cfg = SyntheticConfig {
            total_residues: 100_000,
            ..Default::default()
        };
        let mut g = SyntheticNt::new(cfg);
        let mut total = 0u64;
        while let Some((_, codes)) = g.next() {
            total += codes.len() as u64;
        }
        assert!(total >= 100_000);
        assert!(
            total < 100_000 + 200_000,
            "overshoot bounded by one sequence"
        );
        assert_eq!(total, g.residues());
    }

    #[test]
    fn mean_length_approximately_nt() {
        let cfg = SyntheticConfig {
            total_residues: 3_000_000,
            ..Default::default()
        };
        let mut g = SyntheticNt::new(cfg);
        while g.next().is_some() {}
        let mean = g.residues() as f64 / g.sequences() as f64;
        assert!(
            (mean - 1534.0).abs() / 1534.0 < 0.25,
            "mean length = {mean}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let mk = || {
            let mut g = SyntheticNt::new(SyntheticConfig {
                total_residues: 10_000,
                ..Default::default()
            });
            let mut v = vec![];
            while let Some(x) = g.next() {
                v.push(x);
            }
            v
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn gc_content_matches() {
        let cfg = SyntheticConfig {
            total_residues: 500_000,
            gc: 0.6,
            repeat_bias: 0.0,
            ..Default::default()
        };
        let mut g = SyntheticNt::new(cfg);
        let mut gc = 0u64;
        let mut total = 0u64;
        while let Some((_, codes)) = g.next() {
            gc += codes.iter().filter(|&&c| c == 1 || c == 2).count() as u64;
            total += codes.len() as u64;
        }
        let frac = gc as f64 / total as f64;
        assert!((frac - 0.6).abs() < 0.02, "gc = {frac}");
    }

    #[test]
    fn query_extraction_is_exact_without_mutation() {
        let seq: Vec<u8> = (0..2000).map(|i| (i % 4) as u8).collect();
        let q = extract_query(&seq, 568, 0.0, 9);
        assert_eq!(q.len(), 568);
        // The query must be a substring of the source.
        let found = seq.windows(568).any(|w| w == &q[..]);
        assert!(found);
    }

    #[test]
    fn query_mutation_changes_some_positions() {
        let seq: Vec<u8> = vec![0; 1000];
        let q = extract_query(&seq, 500, 0.1, 9);
        let muts = q.iter().filter(|&&c| c != 0).count();
        assert!(muts > 20 && muts < 100, "muts = {muts}");
    }

    #[test]
    fn deflines_are_ncbi_shaped() {
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 1000,
            ..Default::default()
        });
        let (d, _) = g.next().unwrap();
        assert!(d.starts_with("gi|"), "{d}");
        assert!(d.contains("synthetic nucleotide"));
    }
}
