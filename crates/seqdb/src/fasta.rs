//! FASTA reading and writing.
//!
//! Byte-oriented streaming parser (no per-line `String` allocation) that
//! tolerates CRLF, blank lines, and wrapped sequences, as real `nt` dumps
//! require.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Identifier (first word of the defline).
    pub id: String,
    /// Rest of the defline.
    pub desc: String,
    /// Raw sequence letters (whitespace stripped, case preserved).
    pub seq: Vec<u8>,
}

impl FastaRecord {
    /// Full defline (`id desc`).
    pub fn defline(&self) -> String {
        if self.desc.is_empty() {
            self.id.clone()
        } else {
            format!("{} {}", self.id, self.desc)
        }
    }
}

/// Streaming FASTA reader over any `Read`.
pub struct FastaReader<R: Read> {
    inner: BufReader<R>,
    pending_defline: Option<String>,
    line: Vec<u8>,
}

impl FastaReader<File> {
    /// Open a FASTA file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(FastaReader::new(File::open(path)?))
    }
}

impl<R: Read> FastaReader<R> {
    /// Wrap a reader.
    pub fn new(r: R) -> Self {
        FastaReader {
            inner: BufReader::with_capacity(1 << 20, r),
            pending_defline: None,
            line: Vec::with_capacity(256),
        }
    }

    fn read_line(&mut self) -> io::Result<bool> {
        self.line.clear();
        let n = self.inner.read_until(b'\n', &mut self.line)?;
        while matches!(self.line.last(), Some(b'\n') | Some(b'\r')) {
            self.line.pop();
        }
        Ok(n > 0)
    }

    /// Read the next record, or `None` at end of input.
    pub fn next_record(&mut self) -> io::Result<Option<FastaRecord>> {
        let defline = match self.pending_defline.take() {
            Some(d) => d,
            None => loop {
                if !self.read_line()? {
                    return Ok(None);
                }
                if self.line.first() == Some(&b'>') {
                    break String::from_utf8_lossy(&self.line[1..]).into_owned();
                }
                // Skip junk before the first record (blank lines, comments).
            },
        };
        let mut seq = Vec::new();
        loop {
            if !self.read_line()? {
                break;
            }
            if self.line.first() == Some(&b'>') {
                self.pending_defline = Some(String::from_utf8_lossy(&self.line[1..]).into_owned());
                break;
            }
            seq.extend(
                self.line
                    .iter()
                    .copied()
                    .filter(|c| !c.is_ascii_whitespace()),
            );
        }
        let mut parts = defline.splitn(2, char::is_whitespace);
        let id = parts.next().unwrap_or("").to_string();
        let desc = parts.next().unwrap_or("").trim().to_string();
        Ok(Some(FastaRecord { id, desc, seq }))
    }

    /// Collect all records (convenience for small files).
    pub fn read_all(&mut self) -> io::Result<Vec<FastaRecord>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Write records in FASTA format, wrapping sequences at `width` columns.
pub struct FastaWriter<W: Write> {
    inner: BufWriter<W>,
    width: usize,
}

impl FastaWriter<File> {
    /// Create a FASTA file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(FastaWriter::new(File::create(path)?))
    }
}

impl<W: Write> FastaWriter<W> {
    /// Wrap a writer (default 70-column wrapping).
    pub fn new(w: W) -> Self {
        FastaWriter {
            inner: BufWriter::with_capacity(1 << 20, w),
            width: 70,
        }
    }

    /// Write one record.
    pub fn write_record(&mut self, id: &str, desc: &str, seq: &[u8]) -> io::Result<()> {
        if desc.is_empty() {
            writeln!(self.inner, ">{id}")?;
        } else {
            writeln!(self.inner, ">{id} {desc}")?;
        }
        for chunk in seq.chunks(self.width) {
            self.inner.write_all(chunk)?;
            self.inner.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Flush buffered output.
    pub fn finish(mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Vec<FastaRecord> {
        FastaReader::new(s.as_bytes()).read_all().unwrap()
    }

    #[test]
    fn parses_simple_records() {
        let v = parse(">seq1 first record\nACGT\nACGT\n>seq2\nTTTT\n");
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].id, "seq1");
        assert_eq!(v[0].desc, "first record");
        assert_eq!(v[0].seq, b"ACGTACGT");
        assert_eq!(v[1].id, "seq2");
        assert_eq!(v[1].desc, "");
        assert_eq!(v[1].seq, b"TTTT");
    }

    #[test]
    fn tolerates_crlf_and_blank_lines() {
        let v = parse(">a x\r\nAC GT\r\n\r\nTT\r\n>b\nGG\n\n");
        assert_eq!(v[0].seq, b"ACGTTT");
        assert_eq!(v[1].seq, b"GG");
    }

    #[test]
    fn empty_input_and_empty_sequence() {
        assert!(parse("").is_empty());
        let v = parse(">only_header\n>next\nAC\n");
        assert_eq!(v.len(), 2);
        assert!(v[0].seq.is_empty());
        assert_eq!(v[1].seq, b"AC");
    }

    #[test]
    fn skips_leading_junk() {
        let v = parse("; comment\n\n>x\nACGT\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].id, "x");
    }

    #[test]
    fn round_trip_through_writer() {
        let mut buf = Vec::new();
        {
            let mut w = FastaWriter::new(&mut buf);
            w.write_record("id1", "some desc", b"ACGTACGTACGT").unwrap();
            w.write_record("id2", "", b"TT").unwrap();
            w.finish().unwrap();
        }
        let v = FastaReader::new(&buf[..]).read_all().unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].id, "id1");
        assert_eq!(v[0].desc, "some desc");
        assert_eq!(v[0].seq, b"ACGTACGTACGT");
        assert_eq!(v[1].defline(), "id2");
    }

    #[test]
    fn wrapping_respects_width() {
        let mut buf = Vec::new();
        {
            let mut w = FastaWriter::new(&mut buf);
            w.width = 4;
            w.write_record("x", "", b"ACGTACGTAC").unwrap();
            w.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, ">x\nACGT\nACGT\nAC\n");
    }
}
