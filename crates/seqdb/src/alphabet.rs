//! Sequence alphabets and encodings.
//!
//! Nucleotides use the compact 2-bit code `A=0 C=1 G=2 T=3` (ambiguity
//! codes are canonicalized before packing, as `formatdb` does for its
//! `.nsq` files); amino acids use the NCBIstdaa-like ordinal code below.

/// Nucleotide codes.
pub const NT_A: u8 = 0;
/// Cytosine.
pub const NT_C: u8 = 1;
/// Guanine.
pub const NT_G: u8 = 2;
/// Thymine.
pub const NT_T: u8 = 3;

/// The 24-letter protein alphabet (20 standard + B, Z, X, *), indexed by
/// ordinal code.
pub const AA_LETTERS: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// Encode one nucleotide ASCII letter to its 2-bit code. Ambiguity codes
/// (N, R, Y, ...) map to a deterministic canonical base so packing stays
/// 2-bit; lowercase accepted. Returns `None` for non-nucleotide bytes.
pub fn encode_nt(c: u8) -> Option<u8> {
    Some(match c.to_ascii_uppercase() {
        b'A' => NT_A,
        b'C' => NT_C,
        b'G' => NT_G,
        b'T' | b'U' => NT_T,
        // IUPAC ambiguity codes: canonicalize to their first possibility.
        b'R' | b'D' | b'V' | b'W' | b'M' | b'H' | b'N' => NT_A,
        b'Y' | b'B' | b'S' => NT_C,
        b'K' => NT_G,
        _ => return None,
    })
}

/// Decode a 2-bit nucleotide code to its ASCII letter.
pub fn decode_nt(code: u8) -> u8 {
    match code & 3 {
        NT_A => b'A',
        NT_C => b'C',
        NT_G => b'G',
        _ => b'T',
    }
}

/// Complement of a 2-bit nucleotide code.
pub fn complement_nt(code: u8) -> u8 {
    3 - (code & 3)
}

/// Encode one amino-acid ASCII letter to its ordinal code. Unknowns map to
/// `X`. Returns `None` only for bytes that are clearly not residue letters.
pub fn encode_aa(c: u8) -> Option<u8> {
    let u = c.to_ascii_uppercase();
    if !u.is_ascii_uppercase() && u != b'*' {
        return None;
    }
    Some(match u {
        b'A' => 0,
        b'R' => 1,
        b'N' => 2,
        b'D' => 3,
        b'C' => 4,
        b'Q' => 5,
        b'E' => 6,
        b'G' => 7,
        b'H' => 8,
        b'I' => 9,
        b'L' => 10,
        b'K' => 11,
        b'M' => 12,
        b'F' => 13,
        b'P' => 14,
        b'S' => 15,
        b'T' => 16,
        b'W' => 17,
        b'Y' => 18,
        b'V' => 19,
        b'B' => 20,
        b'Z' => 21,
        b'*' => 23,
        // J, O, U, X and anything else unknown → X.
        _ => 22,
    })
}

/// Decode an amino-acid ordinal code to its ASCII letter.
pub fn decode_aa(code: u8) -> u8 {
    AA_LETTERS[(code as usize).min(23)]
}

/// Number of amino-acid codes.
pub const AA_ALPHABET: usize = 24;

/// Encode an ASCII nucleotide sequence; non-sequence bytes are skipped.
pub fn encode_nt_seq(ascii: &[u8]) -> Vec<u8> {
    ascii.iter().filter_map(|&c| encode_nt(c)).collect()
}

/// Encode an ASCII protein sequence; non-sequence bytes are skipped.
pub fn encode_aa_seq(ascii: &[u8]) -> Vec<u8> {
    ascii.iter().filter_map(|&c| encode_aa(c)).collect()
}

/// Reverse complement of a 2-bit-coded nucleotide sequence.
pub fn reverse_complement(codes: &[u8]) -> Vec<u8> {
    codes.iter().rev().map(|&c| complement_nt(c)).collect()
}

/// Pack 2-bit nucleotide codes, 4 per byte (big-endian within the byte,
/// like NCBI's ncbi2na).
pub fn pack_2bit(codes: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; codes.len().div_ceil(4)];
    for (i, &c) in codes.iter().enumerate() {
        out[i / 4] |= (c & 3) << (6 - 2 * (i % 4));
    }
    out
}

/// Unpack `len` 2-bit nucleotide codes from packed bytes.
pub fn unpack_2bit(packed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::new();
    unpack_2bit_into(packed, len, &mut out);
    out
}

/// Unpack `len` 2-bit nucleotide codes into a reusable buffer (cleared
/// first). The allocation-free counterpart of [`unpack_2bit`] for hot
/// per-subject paths: full bytes expand four codes at a time.
pub fn unpack_2bit_into(packed: &[u8], len: usize, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(len);
    let full = len / 4;
    for &b in &packed[..full] {
        out.extend_from_slice(&[(b >> 6) & 3, (b >> 4) & 3, (b >> 2) & 3, b & 3]);
    }
    for i in full * 4..len {
        out.push((packed[i / 4] >> (6 - 2 * (i % 4))) & 3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt_round_trip() {
        for (c, code) in [(b'A', 0), (b'C', 1), (b'G', 2), (b'T', 3)] {
            assert_eq!(encode_nt(c), Some(code));
            assert_eq!(decode_nt(code), c);
        }
        assert_eq!(encode_nt(b'a'), Some(0));
        assert_eq!(encode_nt(b'u'), Some(3));
        assert_eq!(encode_nt(b'N'), Some(0));
        assert_eq!(encode_nt(b'-'), None);
        assert_eq!(encode_nt(b'\n'), None);
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(complement_nt(NT_A), NT_T);
        assert_eq!(complement_nt(NT_T), NT_A);
        assert_eq!(complement_nt(NT_C), NT_G);
        assert_eq!(complement_nt(NT_G), NT_C);
    }

    #[test]
    fn reverse_complement_involution() {
        let seq = encode_nt_seq(b"ACGTTGCAAT");
        assert_eq!(reverse_complement(&reverse_complement(&seq)), seq);
        let rc = reverse_complement(&encode_nt_seq(b"ACGT"));
        let ascii: Vec<u8> = rc.iter().map(|&c| decode_nt(c)).collect();
        assert_eq!(ascii, b"ACGT");
    }

    #[test]
    fn aa_round_trip() {
        for (i, &letter) in AA_LETTERS.iter().enumerate() {
            if letter == b'X' {
                continue;
            }
            assert_eq!(
                encode_aa(letter),
                Some(i as u8),
                "letter {}",
                letter as char
            );
        }
        assert_eq!(encode_aa(b'J'), Some(22)); // unknown → X
        assert_eq!(decode_aa(22), b'X');
        assert_eq!(encode_aa(b'1'), None);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for len in 0..40usize {
            let codes: Vec<u8> = (0..len).map(|i| (i * 7 % 4) as u8).collect();
            let packed = pack_2bit(&codes);
            assert_eq!(packed.len(), len.div_ceil(4));
            assert_eq!(unpack_2bit(&packed, len), codes);
        }
    }

    #[test]
    fn pack_layout_is_big_endian_in_byte() {
        // A C G T → 00 01 10 11 → 0b00011011 = 0x1B.
        let packed = pack_2bit(&[0, 1, 2, 3]);
        assert_eq!(packed, vec![0x1B]);
    }
}
