//! Formatted sequence database volumes (the `formatdb` substrate).
//!
//! A *volume* is one self-contained file holding packed sequences, an
//! offsets index, and deflines — the role NCBI's `.nsq`/`.nin`/`.nhr`
//! triple plays, folded into a single file for simplicity:
//!
//! ```text
//! [ header 48 B ][ packed sequence data ][ index 32 B × nseq ][ deflines ]
//! ```
//!
//! Reading goes through the [`ReadAt`] trait so the same decoder works over
//! a plain file, an in-memory buffer, or the `pio` striped/mirrored stores —
//! and so the application-level I/O tracer can observe every access. The
//! access pattern mirrors BLAST's: a small header read, an index read, then
//! one large read of the whole data region (the paper's Figure 4 reads of
//! up to 220 MB).

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::alphabet::{encode_aa_seq, encode_nt_seq, pack_2bit, unpack_2bit_into};

/// Magic bytes of a volume file.
pub const MAGIC: [u8; 4] = *b"PBDB";
/// Format version.
pub const VERSION: u32 = 1;
/// Header size in bytes.
pub const HEADER_LEN: u64 = 48;
/// Index entry size in bytes.
pub const INDEX_ENTRY_LEN: u64 = 32;

/// Residue type stored in a volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqType {
    /// Nucleotides, 2-bit packed.
    Nucleotide,
    /// Amino acids, one code per byte.
    Protein,
}

/// Positional read access (the seam between the decoder and the I/O
/// backends).
pub trait ReadAt {
    /// Fill `buf` from absolute `offset`; must read exactly `buf.len()`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Read every `(offset, len)` region, returning the bytes concatenated
    /// in list order (list I/O). The default loops [`ReadAt::read_at`];
    /// sources backed by a parallel store override it to ship one vectored
    /// request per server instead of one per region.
    fn read_many_at(&mut self, regions: &[(u64, u64)]) -> io::Result<Vec<u8>> {
        let total: usize = regions.iter().map(|&(_, l)| l as usize).sum();
        let mut out = vec![0u8; total];
        let mut at = 0usize;
        for &(off, len) in regions {
            let n = len as usize;
            self.read_at(off, &mut out[at..at + n])?;
            at += n;
        }
        Ok(out)
    }
    /// Total length in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// True when the source holds no bytes.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

impl ReadAt for File {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.seek(SeekFrom::Start(offset))?;
        self.read_exact(buf)
    }
    fn len(&mut self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

/// In-memory `ReadAt` (tests, and volumes already fetched by a worker).
impl ReadAt for &[u8] {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = offset as usize;
        let end = start + buf.len();
        if end > <[u8]>::len(self) {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of buffer",
            ));
        }
        buf.copy_from_slice(&self[start..end]);
        Ok(())
    }
    fn len(&mut self) -> io::Result<u64> {
        Ok(<[u8]>::len(self) as u64)
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

/// Volume header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeHeader {
    /// Residue type.
    pub seq_type: SeqType,
    /// Number of sequences.
    pub nseq: u64,
    /// Total residues across all sequences.
    pub residues: u64,
    /// File offset of the index.
    pub index_offset: u64,
    /// File offset of the defline blob.
    pub defline_offset: u64,
}

impl VolumeHeader {
    fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(HEADER_LEN as usize);
        b.extend_from_slice(&MAGIC);
        b.extend_from_slice(&VERSION.to_le_bytes());
        b.push(match self.seq_type {
            SeqType::Nucleotide => 0,
            SeqType::Protein => 1,
        });
        b.extend_from_slice(&[0u8; 7]);
        put_u64(&mut b, self.nseq);
        put_u64(&mut b, self.residues);
        put_u64(&mut b, self.index_offset);
        put_u64(&mut b, self.defline_offset);
        debug_assert_eq!(b.len() as u64, HEADER_LEN);
        b
    }

    fn from_bytes(b: &[u8]) -> io::Result<Self> {
        if b.len() < HEADER_LEN as usize || b[0..4] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a PBDB volume",
            ));
        }
        let version = u32::from_le_bytes(b[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported volume version {version}"),
            ));
        }
        let seq_type = match b[8] {
            0 => SeqType::Nucleotide,
            1 => SeqType::Protein,
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad sequence type {t}"),
                ))
            }
        };
        Ok(VolumeHeader {
            seq_type,
            nseq: get_u64(b, 16),
            residues: get_u64(b, 24),
            index_offset: get_u64(b, 32),
            defline_offset: get_u64(b, 40),
        })
    }
}

/// Streaming volume writer.
pub struct VolumeWriter<W: Write + Seek> {
    out: W,
    seq_type: SeqType,
    data_cursor: u64,
    index: Vec<u8>,
    deflines: Vec<u8>,
    nseq: u64,
    residues: u64,
}

impl VolumeWriter<File> {
    /// Create a volume file.
    pub fn create(path: impl AsRef<Path>, seq_type: SeqType) -> io::Result<Self> {
        VolumeWriter::new(File::create(path)?, seq_type)
    }
}

impl<W: Write + Seek> VolumeWriter<W> {
    /// Start writing a volume.
    pub fn new(mut out: W, seq_type: SeqType) -> io::Result<Self> {
        // Header placeholder; fixed up in finish().
        out.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(VolumeWriter {
            out,
            seq_type,
            data_cursor: HEADER_LEN,
            index: Vec::new(),
            deflines: Vec::new(),
            nseq: 0,
            residues: 0,
        })
    }

    /// Append one sequence given as raw ASCII letters.
    pub fn add_ascii(&mut self, defline: &str, ascii_seq: &[u8]) -> io::Result<()> {
        let codes = match self.seq_type {
            SeqType::Nucleotide => encode_nt_seq(ascii_seq),
            SeqType::Protein => encode_aa_seq(ascii_seq),
        };
        self.add_codes(defline, &codes)
    }

    /// Append one sequence given as alphabet codes.
    pub fn add_codes(&mut self, defline: &str, codes: &[u8]) -> io::Result<()> {
        let packed;
        let bytes: &[u8] = match self.seq_type {
            SeqType::Nucleotide => {
                packed = pack_2bit(codes);
                &packed
            }
            SeqType::Protein => codes,
        };
        let def = defline.as_bytes();
        put_u64(&mut self.index, self.data_cursor);
        put_u64(&mut self.index, codes.len() as u64);
        put_u64(&mut self.index, self.deflines.len() as u64);
        put_u64(&mut self.index, def.len() as u64);
        self.deflines.extend_from_slice(def);
        self.out.write_all(bytes)?;
        self.data_cursor += bytes.len() as u64;
        self.nseq += 1;
        self.residues += codes.len() as u64;
        Ok(())
    }

    /// Write the index, deflines and header; returns `(nseq, residues,
    /// file size)`.
    pub fn finish(mut self) -> io::Result<(u64, u64, u64)> {
        let index_offset = self.data_cursor;
        let defline_offset = index_offset + self.index.len() as u64;
        self.out.write_all(&self.index)?;
        self.out.write_all(&self.deflines)?;
        let total = defline_offset + self.deflines.len() as u64;
        let header = VolumeHeader {
            seq_type: self.seq_type,
            nseq: self.nseq,
            residues: self.residues,
            index_offset,
            defline_offset,
        };
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&header.to_bytes())?;
        self.out.flush()?;
        Ok((self.nseq, self.residues, total))
    }
}

/// One decoded sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbSequence {
    /// Defline (id + description).
    pub defline: String,
    /// Alphabet codes (2-bit values for nucleotides, ordinals for protein).
    pub codes: Vec<u8>,
}

impl DbSequence {
    /// Identifier: first word of the defline.
    pub fn id(&self) -> &str {
        self.defline.split_whitespace().next().unwrap_or("")
    }
}

/// A fully-decoded volume.
#[derive(Debug, Clone)]
pub struct Volume {
    /// Residue type.
    pub seq_type: SeqType,
    /// Sequences in storage order.
    pub sequences: Vec<DbSequence>,
}

impl Volume {
    /// Total residues.
    pub fn residues(&self) -> u64 {
        self.sequences.iter().map(|s| s.codes.len() as u64).sum()
    }

    /// Read a whole volume through any [`ReadAt`] source, decoding every
    /// sequence to one code per byte. Performs the BLAST-shaped access
    /// sequence: header → index → bulk data → deflines. Hot search paths
    /// should prefer [`PackedVolume::read_from`], which keeps nucleotide
    /// data 2-bit packed instead of expanding it 4×.
    pub fn read_from<R: ReadAt>(src: &mut R) -> io::Result<Volume> {
        Ok(PackedVolume::read_from(src)?.into_volume())
    }

    /// Read just the header.
    pub fn read_header<R: ReadAt>(src: &mut R) -> io::Result<VolumeHeader> {
        let mut hdr = [0u8; HEADER_LEN as usize];
        src.read_at(0, &mut hdr)?;
        VolumeHeader::from_bytes(&hdr)
    }
}

/// One sequence's location inside a [`PackedVolume`].
#[derive(Debug, Clone, Copy)]
struct PackedEntry {
    /// Byte offset of the sequence inside the data blob.
    data_start: usize,
    /// Residue count.
    nres: usize,
    /// Defline byte range inside the defline blob.
    def_start: usize,
    def_len: usize,
}

/// A volume decoded only to its storage representation: nucleotide data
/// stays 2-bit packed (4 bases per byte), protein data is one code per
/// byte either way. This is the zero-copy substrate of the packed-scan
/// blastn kernel — the scanner rolls its seed word directly across these
/// bytes and only subjects that produce seed hits are ever unpacked (into
/// a caller-provided reusable buffer).
#[derive(Debug, Clone)]
pub struct PackedVolume {
    /// Residue type.
    pub seq_type: SeqType,
    data: Vec<u8>,
    entries: Vec<PackedEntry>,
    deflines: Vec<u8>,
}

impl PackedVolume {
    /// Read a whole volume through any [`ReadAt`] source without unpacking.
    /// Performs the exact same access sequence as [`Volume::read_from`]
    /// (header → index → bulk data → deflines), so I/O traces are
    /// identical between the two readers.
    pub fn read_from<R: ReadAt>(src: &mut R) -> io::Result<PackedVolume> {
        let mut hdr = [0u8; HEADER_LEN as usize];
        src.read_at(0, &mut hdr)?;
        let header = VolumeHeader::from_bytes(&hdr)?;
        let index_len = (header.nseq * INDEX_ENTRY_LEN) as usize;
        let mut index = vec![0u8; index_len];
        src.read_at(header.index_offset, &mut index)?;
        // One large read for the entire packed data region.
        let data_len = (header.index_offset - HEADER_LEN) as usize;
        let mut data = vec![0u8; data_len];
        src.read_at(HEADER_LEN, &mut data)?;
        let total = src.len()?;
        let def_len = (total - header.defline_offset) as usize;
        let mut deflines = vec![0u8; def_len];
        src.read_at(header.defline_offset, &mut deflines)?;
        Self::assemble(&header, &index, data, deflines)
    }

    /// [`PackedVolume::read_from`] over list I/O: after the header, the
    /// index, packed data, and defline regions travel in ONE vectored
    /// [`ReadAt::read_many_at`] call — one aggregated request per storage
    /// server instead of one per region — listed in the same
    /// index → data → deflines order the plain reader visits them, so the
    /// traced read sequence (and of course the decoded volume) is
    /// identical.
    pub fn read_from_listio<R: ReadAt>(src: &mut R) -> io::Result<PackedVolume> {
        let mut hdr = [0u8; HEADER_LEN as usize];
        src.read_at(0, &mut hdr)?;
        let header = VolumeHeader::from_bytes(&hdr)?;
        let index_len = (header.nseq * INDEX_ENTRY_LEN) as usize;
        let data_len = (header.index_offset - HEADER_LEN) as usize;
        let total = src.len()?;
        let def_len = (total - header.defline_offset) as usize;
        let blob = src.read_many_at(&[
            (header.index_offset, index_len as u64),
            (HEADER_LEN, data_len as u64),
            (header.defline_offset, def_len as u64),
        ])?;
        let index = blob[..index_len].to_vec();
        let data = blob[index_len..index_len + data_len].to_vec();
        let deflines = blob[index_len + data_len..].to_vec();
        Self::assemble(&header, &index, data, deflines)
    }

    /// Shared parse tail: build the volume from its four raw regions.
    fn assemble(
        header: &VolumeHeader,
        index: &[u8],
        data: Vec<u8>,
        deflines: Vec<u8>,
    ) -> io::Result<PackedVolume> {
        let mut entries = Vec::with_capacity(header.nseq as usize);
        for i in 0..header.nseq as usize {
            let at = i * INDEX_ENTRY_LEN as usize;
            let data_start = (get_u64(index, at) - HEADER_LEN) as usize;
            let nres = get_u64(index, at + 8) as usize;
            let def_start = get_u64(index, at + 16) as usize;
            let dlen = get_u64(index, at + 24) as usize;
            let stored = match header.seq_type {
                SeqType::Nucleotide => nres.div_ceil(4),
                SeqType::Protein => nres,
            };
            if data_start + stored > data.len() || def_start + dlen > deflines.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "volume index entry out of bounds",
                ));
            }
            entries.push(PackedEntry {
                data_start,
                nres,
                def_start,
                def_len: dlen,
            });
        }
        Ok(PackedVolume {
            seq_type: header.seq_type,
            data,
            entries,
            deflines,
        })
    }

    /// Number of sequences.
    pub fn nseq(&self) -> usize {
        self.entries.len()
    }

    /// Total residues across all sequences.
    pub fn residues(&self) -> u64 {
        self.entries.iter().map(|e| e.nres as u64).sum()
    }

    /// Residue count of sequence `i`.
    pub fn seq_len(&self, i: usize) -> usize {
        self.entries[i].nres
    }

    /// Stored bytes of sequence `i`: 2-bit packed for nucleotide volumes
    /// (big-endian within the byte, [`crate::alphabet::pack_2bit`] layout),
    /// one code per byte for protein volumes.
    pub fn packed(&self, i: usize) -> &[u8] {
        let e = &self.entries[i];
        let stored = match self.seq_type {
            SeqType::Nucleotide => e.nres.div_ceil(4),
            SeqType::Protein => e.nres,
        };
        &self.data[e.data_start..e.data_start + stored]
    }

    /// Defline of sequence `i`.
    pub fn defline(&self, i: usize) -> std::borrow::Cow<'_, str> {
        let e = &self.entries[i];
        String::from_utf8_lossy(&self.deflines[e.def_start..e.def_start + e.def_len])
    }

    /// Identifier of sequence `i`: first word of its defline.
    pub fn id(&self, i: usize) -> String {
        self.defline(i)
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string()
    }

    /// Unpack sequence `i` into a reusable buffer (cleared first); for
    /// protein volumes this is a plain copy.
    pub fn unpack_into(&self, i: usize, out: &mut Vec<u8>) {
        let e = &self.entries[i];
        match self.seq_type {
            SeqType::Nucleotide => unpack_2bit_into(self.packed(i), e.nres, out),
            SeqType::Protein => {
                out.clear();
                out.extend_from_slice(self.packed(i));
            }
        }
    }

    /// Decode every sequence into a [`Volume`] (the 1-byte-per-residue
    /// representation the protein search paths and reporting use).
    pub fn to_volume(&self) -> Volume {
        let mut sequences = Vec::with_capacity(self.entries.len());
        for i in 0..self.entries.len() {
            let mut codes = Vec::new();
            self.unpack_into(i, &mut codes);
            sequences.push(DbSequence {
                defline: self.defline(i).into_owned(),
                codes,
            });
        }
        Volume {
            seq_type: self.seq_type,
            sequences,
        }
    }

    /// Consuming variant of [`Self::to_volume`].
    pub fn into_volume(self) -> Volume {
        self.to_volume()
    }
}

/// Incremental [`PackedVolume`] loader: the metadata (header, index,
/// deflines) arrives up front, then the packed data region streams in
/// chunks — and every sequence whose bytes have fully arrived is already
/// searchable through [`Self::volume`], so a scan can start before the
/// fragment finishes loading. This is the seqdb half of the prefetch
/// pipeline: a worker overlapping fetch with search consumes chunks as the
/// I/O layer delivers them instead of blocking on one monolithic
/// [`PackedVolume::read_from`].
///
/// The access order differs from `read_from` (deflines before data rather
/// than after) precisely so subject identifiers are available while data
/// is still in flight; the finished volume is byte-identical either way,
/// which `tests/properties.rs` pins for ragged chunk boundaries.
#[derive(Debug)]
pub struct PackedVolumeStream {
    vol: PackedVolume,
    /// End offset (within the data blob) of each sequence's stored bytes,
    /// in storage order.
    stored_ends: Vec<usize>,
    /// Bytes of the data region received so far.
    filled: usize,
    /// Sequences fully contained in the filled prefix.
    ready: usize,
}

impl PackedVolumeStream {
    /// Read the metadata (header → index → deflines) and prepare a
    /// zero-filled data region for streaming.
    pub fn begin<R: ReadAt>(src: &mut R) -> io::Result<PackedVolumeStream> {
        let mut hdr = [0u8; HEADER_LEN as usize];
        src.read_at(0, &mut hdr)?;
        let header = VolumeHeader::from_bytes(&hdr)?;
        let index_len = (header.nseq * INDEX_ENTRY_LEN) as usize;
        let mut index = vec![0u8; index_len];
        src.read_at(header.index_offset, &mut index)?;
        let total = src.len()?;
        let def_len = (total - header.defline_offset) as usize;
        let mut deflines = vec![0u8; def_len];
        src.read_at(header.defline_offset, &mut deflines)?;
        let data_len = (header.index_offset - HEADER_LEN) as usize;

        let mut entries = Vec::with_capacity(header.nseq as usize);
        let mut stored_ends = Vec::with_capacity(header.nseq as usize);
        for i in 0..header.nseq as usize {
            let at = i * INDEX_ENTRY_LEN as usize;
            let data_start = (get_u64(&index, at) - HEADER_LEN) as usize;
            let nres = get_u64(&index, at + 8) as usize;
            let def_start = get_u64(&index, at + 16) as usize;
            let dlen = get_u64(&index, at + 24) as usize;
            let stored = match header.seq_type {
                SeqType::Nucleotide => nres.div_ceil(4),
                SeqType::Protein => nres,
            };
            if data_start + stored > data_len || def_start + dlen > deflines.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "volume index entry out of bounds",
                ));
            }
            entries.push(PackedEntry {
                data_start,
                nres,
                def_start,
                def_len: dlen,
            });
            stored_ends.push(data_start + stored);
        }
        Ok(PackedVolumeStream {
            vol: PackedVolume {
                seq_type: header.seq_type,
                data: vec![0u8; data_len],
                entries,
                deflines,
            },
            stored_ends,
            filled: 0,
            ready: 0,
        })
    }

    /// Total size of the packed data region.
    pub fn data_len(&self) -> usize {
        self.vol.data.len()
    }

    /// Data bytes received so far.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// True once the whole data region has arrived.
    pub fn is_complete(&self) -> bool {
        self.filled == self.vol.data.len()
    }

    /// Read the next chunk of up to `max` data bytes from `src` (which
    /// must be the same source `begin` read from). Returns the number of
    /// bytes consumed — 0 once the stream is complete.
    pub fn feed<R: ReadAt>(&mut self, src: &mut R, max: usize) -> io::Result<usize> {
        let n = max.min(self.vol.data.len() - self.filled);
        if n == 0 {
            return Ok(0);
        }
        let at = HEADER_LEN + self.filled as u64;
        src.read_at(at, &mut self.vol.data[self.filled..self.filled + n])?;
        self.filled += n;
        while self.ready < self.stored_ends.len() && self.stored_ends[self.ready] <= self.filled {
            self.ready += 1;
        }
        Ok(n)
    }

    /// Number of sequences whose packed bytes have fully arrived: subjects
    /// `[0, ready_seqs())` of [`Self::volume`] are valid to scan.
    pub fn ready_seqs(&self) -> usize {
        self.ready
    }

    /// The partially-loaded volume. Metadata (sequence count, lengths,
    /// deflines) is complete; packed bytes are only valid for subjects
    /// below [`Self::ready_seqs`] — the rest still read as zeros.
    pub fn volume(&self) -> &PackedVolume {
        &self.vol
    }

    /// Drain any remaining data from `src` and return the finished volume,
    /// equal to what [`PackedVolume::read_from`] would have produced.
    pub fn finish<R: ReadAt>(mut self, src: &mut R) -> io::Result<PackedVolume> {
        while self.feed(src, 1 << 20)? > 0 {}
        Ok(self.vol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn build(seq_type: SeqType, seqs: &[(&str, &[u8])]) -> Vec<u8> {
        let mut buf = Cursor::new(Vec::new());
        let mut w = VolumeWriter::new(&mut buf, seq_type).unwrap();
        for &(d, s) in seqs {
            w.add_ascii(d, s).unwrap();
        }
        w.finish().unwrap();
        buf.into_inner()
    }

    #[test]
    fn nt_volume_round_trip() {
        let bytes = build(
            SeqType::Nucleotide,
            &[
                ("seq1 E. coli fragment", b"ACGTACGTACGTA"),
                ("seq2", b"TTTTGGGG"),
                ("seq3 with N runs", b"ACGNNNNACG"),
            ],
        );
        let v = Volume::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(v.seq_type, SeqType::Nucleotide);
        assert_eq!(v.sequences.len(), 3);
        assert_eq!(v.sequences[0].defline, "seq1 E. coli fragment");
        assert_eq!(v.sequences[0].id(), "seq1");
        assert_eq!(v.sequences[0].codes.len(), 13);
        assert_eq!(
            v.sequences[1].codes,
            crate::alphabet::encode_nt_seq(b"TTTTGGGG")
        );
        // N canonicalizes to A.
        assert_eq!(
            v.sequences[2].codes,
            crate::alphabet::encode_nt_seq(b"ACGAAAAACG")
        );
        assert_eq!(v.residues(), 13 + 8 + 10);
    }

    #[test]
    fn packed_volume_matches_decoded_volume() {
        for (seq_type, seqs) in [
            (
                SeqType::Nucleotide,
                vec![
                    ("seq1 E. coli fragment", b"ACGTACGTACGTA".as_slice()),
                    ("seq2", b"TTTTGGGG"),
                    ("seq3 ragged", b"ACGTACG"),
                ],
            ),
            (
                SeqType::Protein,
                vec![("p1 kinase", b"MKVLA".as_slice()), ("p2", b"ARNDCQE")],
            ),
        ] {
            let bytes = build(seq_type, &seqs);
            let v = Volume::read_from(&mut bytes.as_slice()).unwrap();
            let p = PackedVolume::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(p.seq_type, v.seq_type);
            assert_eq!(p.nseq(), v.sequences.len());
            assert_eq!(p.residues(), v.residues());
            let mut buf = Vec::new();
            for (i, s) in v.sequences.iter().enumerate() {
                assert_eq!(p.seq_len(i), s.codes.len());
                assert_eq!(p.defline(i), s.defline);
                assert_eq!(p.id(i), s.id());
                p.unpack_into(i, &mut buf);
                assert_eq!(buf, s.codes, "seq {i}");
                if seq_type == SeqType::Nucleotide {
                    assert_eq!(p.packed(i), crate::alphabet::pack_2bit(&s.codes));
                } else {
                    assert_eq!(p.packed(i), s.codes.as_slice());
                }
            }
        }
    }

    #[test]
    fn packed_volume_issues_the_same_reads_as_volume() {
        // The two readers must be trace-identical so pio/Tracer-based tests
        // and figure reproductions hold for either. Record (offset, len)
        // pairs through a counting ReadAt wrapper.
        struct Recorder<'a> {
            inner: &'a [u8],
            reads: Vec<(u64, usize)>,
        }
        impl ReadAt for Recorder<'_> {
            fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
                self.reads.push((offset, buf.len()));
                let mut s = self.inner;
                s.read_at(offset, buf)
            }
            fn len(&mut self) -> io::Result<u64> {
                Ok(self.inner.len() as u64)
            }
        }
        let bytes = build(
            SeqType::Nucleotide,
            &[("a", b"ACGTACGTA".as_slice()), ("b", b"GGCC")],
        );
        let mut r1 = Recorder {
            inner: &bytes,
            reads: vec![],
        };
        Volume::read_from(&mut r1).unwrap();
        let mut r2 = Recorder {
            inner: &bytes,
            reads: vec![],
        };
        PackedVolume::read_from(&mut r2).unwrap();
        assert_eq!(r1.reads, r2.reads);
        // header → index → bulk data → deflines: four reads.
        assert_eq!(r1.reads.len(), 4);
        assert_eq!(r1.reads[0], (0, HEADER_LEN as usize));
    }

    #[test]
    fn stream_equals_read_from_at_any_chunk_size() {
        let bytes = build(
            SeqType::Nucleotide,
            &[
                ("s1 first", b"ACGTACGTACGTACGTA" as &[u8]),
                ("s2 second", b"TTTTGGGGCCCCAAAA"),
                ("s3 third", b"ACGT"),
                ("s4 fourth", b"GGGTTTAAACCCGGGTTTAAACCC"),
            ],
        );
        let whole = PackedVolume::read_from(&mut bytes.as_slice()).unwrap();
        for chunk in [1usize, 3, 7, 16, 1024] {
            let mut src = bytes.as_slice();
            let mut stream = PackedVolumeStream::begin(&mut src).unwrap();
            let mut prev_ready = 0;
            while !stream.is_complete() {
                stream.feed(&mut src, chunk).unwrap();
                // Readiness is monotone and every ready subject's bytes
                // already equal the final volume's.
                assert!(stream.ready_seqs() >= prev_ready);
                prev_ready = stream.ready_seqs();
                for i in 0..stream.ready_seqs() {
                    assert_eq!(stream.volume().packed(i), whole.packed(i), "chunk {chunk}");
                }
            }
            assert_eq!(stream.ready_seqs(), whole.nseq());
            let done = stream.finish(&mut src).unwrap();
            assert_eq!(format!("{done:?}"), format!("{whole:?}"), "chunk {chunk}");
        }
    }

    #[test]
    fn stream_metadata_is_complete_before_any_data() {
        let bytes = build(
            SeqType::Protein,
            &[("p1 a protein", b"MKV" as &[u8]), ("p2 another", b"GG")],
        );
        let mut src = bytes.as_slice();
        let stream = PackedVolumeStream::begin(&mut src).unwrap();
        assert_eq!(stream.ready_seqs(), 0);
        assert_eq!(stream.volume().nseq(), 2);
        assert_eq!(stream.volume().seq_len(0), 3);
        assert_eq!(stream.volume().id(0), "p1");
        assert_eq!(stream.volume().id(1), "p2");
        assert!(!stream.is_complete());
    }

    #[test]
    fn stream_handles_empty_volume() {
        let bytes = build(SeqType::Nucleotide, &[]);
        let mut src = bytes.as_slice();
        let stream = PackedVolumeStream::begin(&mut src).unwrap();
        assert!(stream.is_complete());
        assert_eq!(stream.ready_seqs(), 0);
        let v = stream.finish(&mut bytes.as_slice()).unwrap();
        assert_eq!(v.nseq(), 0);
    }

    #[test]
    fn protein_volume_round_trip() {
        let bytes = build(
            SeqType::Protein,
            &[("p1 some protein", b"MKVLAARN"), ("p2", b"WWYY")],
        );
        let v = Volume::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(v.seq_type, SeqType::Protein);
        assert_eq!(
            v.sequences[0].codes,
            crate::alphabet::encode_aa_seq(b"MKVLAARN")
        );
    }

    #[test]
    fn empty_volume() {
        let bytes = build(SeqType::Nucleotide, &[]);
        let v = Volume::read_from(&mut bytes.as_slice()).unwrap();
        assert!(v.sequences.is_empty());
    }

    #[test]
    fn header_survives_round_trip() {
        let bytes = build(SeqType::Nucleotide, &[("a", b"ACGT"), ("b", b"GG")]);
        let h = Volume::read_header(&mut bytes.as_slice()).unwrap();
        assert_eq!(h.nseq, 2);
        assert_eq!(h.residues, 6);
        assert_eq!(h.seq_type, SeqType::Nucleotide);
    }

    #[test]
    fn rejects_garbage() {
        let garbage = vec![0u8; 64];
        assert!(Volume::read_from(&mut garbage.as_slice()).is_err());
    }

    #[test]
    fn file_backed_round_trip() {
        let dir = std::env::temp_dir().join(format!("pbdb_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vol.pdb");
        {
            let mut w = VolumeWriter::create(&path, SeqType::Nucleotide).unwrap();
            w.add_ascii("f1", b"ACGTACGT").unwrap();
            let (n, r, sz) = w.finish().unwrap();
            assert_eq!((n, r), (1, 8));
            assert_eq!(sz, std::fs::metadata(&path).unwrap().len());
        }
        let mut f = File::open(&path).unwrap();
        let v = Volume::read_from(&mut f).unwrap();
        assert_eq!(v.sequences[0].codes.len(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }
}
