//! Experiment harness: one function per figure of the paper's evaluation
//! (§4), each returning structured rows that the `parblast-bench` binaries
//! print and EXPERIMENTS.md records.
//!
//! Timing experiments (Figures 5–9) run on the calibrated simulator at the
//! paper's full 2.7 GB scale; the I/O-characterization experiment
//! (Figure 4) runs the *real* engine on a scaled synthetic database.

use std::path::Path;

use parblast_blast::{DbStats, Program, SearchParams};
use parblast_mpiblast::{
    run_simblast, ParallelBlast, Parallelization, Scheme, SimBlastConfig, SimScheme, TraceSummary,
    Tracer,
};
use parblast_seqdb::{
    extract_query, segment_into_fragments, SeqType, SyntheticConfig, SyntheticNt,
};

/// Paper database size (nt, 2.7 GB).
pub const NT_BYTES: u64 = 2_700_000_000;

fn sim_base(workers: u32, nodes: usize, scheme: SimScheme) -> SimBlastConfig {
    SimBlastConfig {
        nodes,
        workers,
        fragments: workers,
        db_bytes: NT_BYTES,
        scheme,
        master_node: (nodes - 1) as u32,
        ..Default::default()
    }
}

/// §4.1 calibration: simulated Bonnie and Netperf numbers.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Sequential disk write bandwidth, MB/s (paper: 32).
    pub disk_write_mbs: f64,
    /// Sequential disk read bandwidth, MB/s (paper: 26).
    pub disk_read_mbs: f64,
    /// TCP stream bandwidth, MB/s (paper: ≈112).
    pub net_mbs: f64,
    /// CPU cost of saturating TCP, fraction of one CPU (paper: 0.47).
    pub net_cpu_fraction: f64,
}

/// Run the calibration micro-benchmarks on the simulated hardware.
pub fn calibration() -> Calibration {
    use parblast_hwsim::*;
    use parblast_simcore::*;

    // Bonnie: stream 256 MiB sequentially through one LocalFs.
    let measure_disk = |write: bool| -> f64 {
        let mut eng: Engine<Ev> = Engine::new(1);
        let c = Cluster::build(&mut eng, 1, HwParams::default());
        struct Streamer {
            fs: CompId,
            write: bool,
            offset: u64,
            total: u64,
            done_at: std::rc::Rc<std::cell::Cell<f64>>,
        }
        impl Component<Ev> for Streamer {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, _ev: Ev) {
                if self.offset >= self.total {
                    self.done_at.set(ctx.now().as_secs_f64());
                    return;
                }
                let len = (1u64 << 20).min(self.total - self.offset);
                let msg = if self.write {
                    FsMsg::Write {
                        file: 1,
                        offset: self.offset,
                        len,
                        sync: true,
                        reply_to: ctx.self_id(),
                        tag: 0,
                    }
                } else {
                    FsMsg::Read {
                        file: 1,
                        offset: self.offset,
                        len,
                        mmap: false,
                        unit: 0,
                        reply_to: ctx.self_id(),
                        tag: 0,
                    }
                };
                self.offset += len;
                ctx.send(self.fs, Ev::Fs(msg));
            }
        }
        let done_at = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let total = 256 * MIB;
        let s = eng.add(Streamer {
            fs: c.nodes[0].fs,
            write,
            offset: 0,
            total,
            done_at: done_at.clone(),
        });
        eng.schedule(SimTime::ZERO, s, Ev::Timer(0));
        eng.run();
        total as f64 / MIB as f64 / done_at.get()
    };

    // Netperf: stream 512 MiB between two nodes, measure bw + CPU tax.
    let (net_mbs, net_cpu_fraction) = {
        let mut eng: Engine<Ev> = Engine::new(1);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        struct Sink;
        impl Component<Ev> for Sink {
            fn on_event(&mut self, _ctx: &mut Ctx<'_, Ev>, _ev: Ev) {}
        }
        let sink = eng.add(Sink);
        let total = 512 * MIB;
        for i in 0..(total / MIB) {
            eng.schedule(
                SimTime::from_nanos(i),
                c.net,
                Ev::Net(NetSend {
                    src_node: 0,
                    dst_node: 1,
                    bytes: MIB,
                    dst: sink,
                    payload: Box::new(()),
                }),
            );
        }
        eng.run();
        let t = eng.now().as_secs_f64();
        let bw = total as f64 / MIB as f64 / t;
        let cpu = eng.component::<Cpu>(c.nodes[0].cpu).injected_work() / t;
        (bw, cpu)
    };

    Calibration {
        disk_write_mbs: measure_disk(true),
        disk_read_mbs: measure_disk(false),
        net_mbs,
        net_cpu_fraction,
    }
}

/// One Figure 5 row: same node count for both schemes.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Worker node count (nodes double as PVFS servers).
    pub nodes: u32,
    /// Original scheme execution time, seconds.
    pub t_original: f64,
    /// Over-PVFS execution time, seconds.
    pub t_pvfs: f64,
}

/// Average a configuration's makespan over a few seeds (the paper
/// averages repeated measurements; this removes compute-variability
/// noise from the comparison).
fn mean_makespan(cfg: &SimBlastConfig, seeds: &[u64]) -> f64 {
    let total: f64 = seeds
        .iter()
        .map(|&seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            run_simblast(&c).makespan_s
        })
        .sum();
    total / seeds.len() as f64
}

const SEEDS: [u64; 3] = [42, 1003, 77];

/// Figure 5: original vs over-PVFS under equal resources.
pub fn fig5(node_counts: &[u32], db_bytes: u64) -> Vec<Fig5Row> {
    node_counts
        .iter()
        .map(|&n| {
            let mut orig = sim_base(n, n as usize + 1, SimScheme::Original);
            orig.db_bytes = db_bytes;
            let mut pvfs = sim_base(
                n,
                n as usize + 1,
                SimScheme::Pvfs {
                    servers: (0..n).collect(),
                },
            );
            pvfs.db_bytes = db_bytes;
            Fig5Row {
                nodes: n,
                t_original: mean_makespan(&orig, &SEEDS),
                t_pvfs: mean_makespan(&pvfs, &SEEDS),
            }
        })
        .collect()
}

/// One Figure 6 cell.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Worker count.
    pub workers: u32,
    /// PVFS data-server count (0 = the original baseline).
    pub servers: u32,
    /// Execution time, seconds.
    pub t: f64,
    /// Measured I/O fraction of the run.
    pub io_fraction: f64,
}

/// Figure 6: execution time across worker × server configurations, plus
/// the original baseline (`servers == 0` rows).
pub fn fig6(workers: &[u32], servers: &[u32], db_bytes: u64) -> Vec<Fig6Cell> {
    let mut out = Vec::new();
    for &w in workers {
        let mut orig = sim_base(w, w as usize + 1, SimScheme::Original);
        orig.db_bytes = db_bytes;
        let o = run_simblast(&orig);
        out.push(Fig6Cell {
            workers: w,
            servers: 0,
            t: o.makespan_s,
            io_fraction: o.io_fraction,
        });
        for &s in servers {
            let nodes = w.max(s) as usize + 1;
            let mut cfg = sim_base(
                w,
                nodes,
                SimScheme::Pvfs {
                    servers: (0..s).collect(),
                },
            );
            cfg.db_bytes = db_bytes;
            let r = run_simblast(&cfg);
            out.push(Fig6Cell {
                workers: w,
                servers: s,
                t: r.makespan_s,
                io_fraction: r.io_fraction,
            });
        }
    }
    out
}

/// One Figure 7 row.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Worker count.
    pub workers: u32,
    /// over-PVFS (8 data servers) execution time.
    pub t_pvfs: f64,
    /// over-CEFT-PVFS (4 mirroring 4) execution time.
    pub t_ceft: f64,
}

/// Figure 7: PVFS with 8 servers vs CEFT-PVFS with 4+4, varying workers.
pub fn fig7(workers: &[u32], db_bytes: u64) -> Vec<Fig7Row> {
    workers
        .iter()
        .map(|&w| {
            let mut pvfs = sim_base(
                w,
                9,
                SimScheme::Pvfs {
                    servers: (0..8).collect(),
                },
            );
            pvfs.db_bytes = db_bytes;
            let mut ceft = sim_base(
                w,
                9,
                SimScheme::Ceft {
                    primary: (0..4).collect(),
                    mirror: (4..8).collect(),
                },
            );
            ceft.db_bytes = db_bytes;
            Fig7Row {
                workers: w,
                t_pvfs: mean_makespan(&pvfs, &SEEDS),
                t_ceft: mean_makespan(&ceft, &SEEDS),
            }
        })
        .collect()
}

/// One Figure 9 row.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Scheme label.
    pub scheme: &'static str,
    /// Execution time without stress.
    pub t_clean: f64,
    /// Execution time with one stressed disk.
    pub t_stressed: f64,
    /// Degradation factor.
    pub factor: f64,
    /// CEFT parts redirected away from the hot server.
    pub skipped_parts: u64,
}

/// Figure 9: all three schemes, 8 workers / 8 data servers, with one
/// data-server disk stressed by the Figure 8 program.
pub fn fig9(db_bytes: u64) -> Vec<Fig9Row> {
    let schemes: Vec<(&'static str, SimScheme)> = vec![
        ("original", SimScheme::Original),
        (
            "over-PVFS",
            SimScheme::Pvfs {
                servers: (0..8).collect(),
            },
        ),
        (
            "over-CEFT-PVFS",
            SimScheme::Ceft {
                primary: (0..4).collect(),
                mirror: (4..8).collect(),
            },
        ),
    ];
    schemes
        .into_iter()
        .map(|(label, scheme)| {
            let mut cfg = sim_base(8, 9, scheme);
            cfg.db_bytes = db_bytes;
            let clean = run_simblast(&cfg);
            cfg.stress_nodes = vec![1];
            let hot = run_simblast(&cfg);
            Fig9Row {
                scheme: label,
                t_clean: clean.makespan_s,
                t_stressed: hot.makespan_s,
                factor: hot.makespan_s / clean.makespan_s,
                skipped_parts: hot.skipped_parts,
            }
        })
        .collect()
}

/// One read-ahead ablation cell: one scheme at one prefetch depth.
#[derive(Debug, Clone)]
pub struct ReadAheadCell {
    /// Scheme label.
    pub scheme: &'static str,
    /// Chunk read-ahead depth (0 = the paper's synchronous loop).
    pub depth: u32,
    /// Predicted execution time, seconds.
    pub makespan_s: f64,
    /// Speedup over the same scheme's synchronous run.
    pub speedup: f64,
}

/// Read-ahead ablation (DESIGN.md §11): the simulator's prediction of how
/// much of each scheme's I/O a double-buffered chunk pipeline hides, at 4
/// workers (PVFS on 4 servers, CEFT on 2+2). Depth 0 is the calibrated
/// paper-faithful loop; the benefit is bounded by each scheme's I/O
/// fraction, so it saturates at one chunk of look-ahead.
pub fn read_ahead_ablation(db_bytes: u64, depths: &[u32]) -> Vec<ReadAheadCell> {
    let schemes: Vec<(&'static str, SimScheme)> = vec![
        ("original", SimScheme::Original),
        (
            "over-PVFS",
            SimScheme::Pvfs {
                servers: (0..4).collect(),
            },
        ),
        (
            "over-CEFT-PVFS",
            SimScheme::Ceft {
                primary: (0..2).collect(),
                mirror: (2..4).collect(),
            },
        ),
    ];
    let mut out = Vec::new();
    for (label, scheme) in schemes {
        let mut base = sim_base(4, 5, scheme);
        base.db_bytes = db_bytes;
        let t0 = mean_makespan(&base, &SEEDS);
        for &depth in depths {
            let makespan_s = if depth == 0 {
                t0
            } else {
                let mut cfg = base.clone();
                cfg.read_ahead = depth;
                mean_makespan(&cfg, &SEEDS)
            };
            out.push(ReadAheadCell {
                scheme: label,
                depth,
                makespan_s,
                speedup: t0 / makespan_s,
            });
        }
    }
    out
}

/// One `faults` experiment row: one scheme at one failure time.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scheme label.
    pub scheme: &'static str,
    /// When the data server crashed, seconds after job start.
    pub fail_at_s: f64,
    /// Fault-free execution time, seconds.
    pub t_clean: f64,
    /// Execution time with the crash (to completion, abort, or horizon).
    pub t_faulted: f64,
    /// Did the job finish every fragment?
    pub completed: bool,
    /// The reported I/O error when it did not.
    pub error: Option<String>,
    /// Client requests re-sent after timeouts.
    pub retries: u64,
    /// CEFT reads re-routed to mirror partners.
    pub failovers: u64,
}

/// Fault-tolerance experiment: crash data server 1 at each failure time
/// and compare the three schemes (8 workers; PVFS on 8 servers, CEFT on
/// 4+4). CEFT fails reads over to the crashed server's mirror partner and
/// completes at roughly halved read parallelism; PVFS exhausts its
/// retries and terminates with a reported I/O error; the original scheme
/// has no data servers and is unaffected.
pub fn faults(db_bytes: u64, fail_times_s: &[f64]) -> Vec<FaultRow> {
    use parblast_hwsim::FaultSchedule;
    use parblast_simcore::SimTime;

    let schemes: Vec<(&'static str, SimScheme)> = vec![
        ("original", SimScheme::Original),
        (
            "over-PVFS",
            SimScheme::Pvfs {
                servers: (0..8).collect(),
            },
        ),
        (
            "over-CEFT-PVFS",
            SimScheme::Ceft {
                primary: (0..4).collect(),
                mirror: (4..8).collect(),
            },
        ),
    ];
    let mut out = Vec::new();
    for (label, scheme) in schemes {
        let mut cfg = sim_base(8, 9, scheme);
        cfg.db_bytes = db_bytes;
        let t_clean = run_simblast(&cfg).makespan_s;
        for &fail_at_s in fail_times_s {
            let mut faulted = cfg.clone();
            // Server index 1 is a primary-group member under CEFT.
            faulted.faults = FaultSchedule::new()
                .crash_server(SimTime::from_secs_f64(cfg.warmup_s + fail_at_s), 1);
            let r = run_simblast(&faulted);
            out.push(FaultRow {
                scheme: label,
                fail_at_s,
                t_clean,
                t_faulted: r.makespan_s,
                completed: r.completed,
                error: r.error,
                retries: r.retries,
                failovers: r.failovers,
            });
        }
    }
    out
}

/// One `integrity` experiment row: the crash + revive scenario at one
/// resync rate cap.
#[derive(Debug, Clone)]
pub struct IntegrityRow {
    /// Resync pacing cap, MB/s (`0.0` = unpaced: the rebuild copies as
    /// fast as the mirror partner's disk serves it).
    pub rate_cap_mbs: f64,
    /// Fault-free execution time, seconds (resync configured, never
    /// triggered).
    pub t_clean: f64,
    /// Execution time with the corruption + crash + revive, seconds.
    pub t_faulted: f64,
    /// Foreground read p95 of the clean run, microseconds.
    pub clean_p95_us: f64,
    /// Foreground read p95 of the faulted run (failover + rebuild
    /// traffic included), microseconds.
    pub faulted_p95_us: f64,
    /// Did every fragment complete?
    pub completed: bool,
    /// Online resyncs completed (1 when the revived server was rebuilt).
    pub resyncs: u64,
    /// Corrupt stripes rewritten from the mirror by read-repair.
    pub repaired_stripes: u64,
    /// Reads re-routed to mirror partners while the primary was down.
    pub failovers: u64,
}

/// Rebuild-overhead ablation: CEFT 4+4 with 8 workers; a latent corrupt
/// stripe on primary server 0 exercises read-repair, then primary
/// server 1 crashes mid-search and revives 8 s later, forcing an online
/// resync before it may serve reads again. Each row paces the rebuild
/// copy at a different rate cap, trading rebuild duration against the
/// disk bandwidth stolen from foreground reads — measured as the
/// foreground read p95 vs the clean run. Averaged over the usual seeds.
pub fn integrity(db_bytes: u64, rate_caps_mbs: &[f64]) -> Vec<IntegrityRow> {
    use parblast_hwsim::FaultSchedule;
    use parblast_mpiblast::FRAG_FILE_BASE;
    use parblast_simcore::SimTime;

    let mut base = sim_base(
        8,
        9,
        SimScheme::Ceft {
            primary: (0..4).collect(),
            mirror: (4..8).collect(),
        },
    );
    base.db_bytes = db_bytes;
    // Fast heartbeat so the metadata server's dead sweep (grace =
    // 2.5 beats) notices the crash well before the revival.
    base.ceft.heartbeat = SimTime::from_secs(1);

    let n = SEEDS.len() as f64;
    // The clean baseline never triggers a resync, so it is the same for
    // every cap; measure it once per seed.
    let (mut t_clean, mut clean_p95) = (0.0, 0.0);
    for &seed in &SEEDS {
        let mut c = base.clone();
        c.ceft.resync_rate = Some(u64::MAX);
        c.seed = seed;
        let clean = run_simblast(&c);
        t_clean += clean.makespan_s;
        clean_p95 += clean.read_latency_us.p95;
    }
    t_clean /= n;
    clean_p95 /= n;

    let crash_at = base.warmup_s + 2.0;
    let revive_at = base.warmup_s + 10.0;
    let mut out = Vec::new();
    for &cap in rate_caps_mbs {
        let mut faulted = base.clone();
        faulted.ceft.resync_rate = Some(if cap <= 0.0 {
            u64::MAX
        } else {
            (cap * 1e6) as u64
        });
        // Latent corruption planted before the job starts, on primary
        // servers that stay up — found and repaired during the search.
        faulted.faults = FaultSchedule::new()
            .corrupt_stripe(
                SimTime::from_secs_f64(base.warmup_s * 0.5),
                0,
                FRAG_FILE_BASE,
                0,
            )
            .corrupt_stripe(
                SimTime::from_secs_f64(base.warmup_s * 0.5),
                2,
                FRAG_FILE_BASE + 2,
                2,
            )
            .crash_server(SimTime::from_secs_f64(crash_at), 1)
            .revive_server(SimTime::from_secs_f64(revive_at), 1);

        let mut t_faulted = 0.0;
        let mut faulted_p95 = 0.0;
        let mut completed = true;
        let (mut resyncs, mut repaired, mut failovers) = (0, 0, 0);
        for &seed in &SEEDS {
            let mut f = faulted.clone();
            f.seed = seed;
            let r = run_simblast(&f);
            t_faulted += r.makespan_s;
            faulted_p95 += r.read_latency_us.p95;
            completed &= r.completed;
            resyncs += r.resyncs;
            repaired += r.repaired_stripes;
            failovers += r.failovers;
        }
        out.push(IntegrityRow {
            rate_cap_mbs: cap,
            t_clean,
            t_faulted: t_faulted / n,
            clean_p95_us: clean_p95,
            faulted_p95_us: faulted_p95 / n,
            completed,
            resyncs,
            repaired_stripes: repaired,
            failovers,
        });
    }
    out
}

/// Per-worker scan rate for the *serving* workload, bytes/second.
///
/// The paper's single 568-nt query is compute-heavy (≈2.3 MB/s per
/// worker, I/O ≈11% of the run). A serving workload is dominated by
/// short interactive queries whose per-byte search cost is far lower, so
/// the database scan is a much larger share of each pass (≈45–55% here).
/// That is precisely the regime where scan sharing pays: the I/O half of
/// the pass is amortized over the whole batch.
///
/// Calibrated against the packed-scan kernel: `bench --bin engine`
/// measures ≈32 MB of on-disk volume bytes searched per second per
/// 568-nt query (`fragment_search.packed_bytes_per_s` in
/// `BENCH_engine.json`); the pre-rewrite kernel measured ≈24 MB/s, the
/// previous value of this constant.
pub const SERVE_SEARCH_RATE: f64 = 32e6;

/// One serving-sweep row: one (scheme, offered load, batch cap) cell.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Scheme label.
    pub scheme: &'static str,
    /// Offered load relative to unbatched capacity (λ · S₁).
    pub load: f64,
    /// Scan-sharing batch cap `B` (1 = no sharing).
    pub max_batch: usize,
    /// Poisson arrival rate, queries/second.
    pub arrival_qps: f64,
    /// Unbatched single-pass service time S₁, seconds.
    pub service_s: f64,
    /// Frozen serving-run metrics.
    pub report: parblast_serve::ServeReport,
}

/// Serving sweep: batch cap × offered load × scheme (8 workers; PVFS on
/// 8 servers, CEFT on 4+4), `queries` Poisson arrivals per cell.
///
/// Per scheme, the service model probes the calibrated simulator once per
/// batch size (a genuine `run_simblast` with `queries_per_pass = k`) and
/// the arrival rate is set to `load / S₁` — `load > 1` offers more
/// traffic than unbatched serving can absorb, so without scan sharing
/// the queue grows without bound while batch caps ≥ 4 stay stable. The
/// same arrival sequence (seed 2003) drives every batch cap, so cells in
/// a (scheme, load) group are directly comparable.
pub fn serve_sweep(
    db_bytes: u64,
    loads: &[f64],
    batch_caps: &[usize],
    queries: usize,
    capacity: usize,
) -> Vec<ServeRow> {
    use parblast_hwsim::ArrivalProcess;
    use parblast_serve::{BatchPolicy, Query, ScanSharingServer, ServiceModel, SimExecutor};
    use parblast_simcore::SimRng;

    let schemes: Vec<(&'static str, SimScheme)> = vec![
        ("original", SimScheme::Original),
        (
            "over-PVFS",
            SimScheme::Pvfs {
                servers: (0..8).collect(),
            },
        ),
        (
            "over-CEFT-PVFS",
            SimScheme::Ceft {
                primary: (0..4).collect(),
                mirror: (4..8).collect(),
            },
        ),
    ];
    let cap_max = batch_caps.iter().copied().max().unwrap_or(1) as u32;
    let mut out = Vec::new();
    for (label, scheme) in schemes {
        let mut cfg = sim_base(8, 9, scheme);
        cfg.db_bytes = db_bytes;
        cfg.search_rate = SERVE_SEARCH_RATE;
        // The serving tier runs the fused multi-query kernel (`bench --bin
        // serve` measures the real path), so the service model does too:
        // compute grows sublinearly in batch size per
        // `SimBlastConfig::batch_compute_factor`.
        cfg.fused_kernel = true;
        let mut model = ServiceModel::new(cfg);
        // Probe every batch size once up front; the executors below clone
        // the warmed cache and never touch the simulator again.
        for k in 1..=cap_max {
            model.cost(k);
        }
        let s1 = model.cost(1).service_s;
        for &load in loads {
            let rate = load / s1;
            let times =
                ArrivalProcess::Poisson { rate_qps: rate }.times(queries, &mut SimRng::new(2003));
            let arrivals: Vec<Query> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| Query::new(i as u64, t))
                .collect();
            for &b in batch_caps {
                let exec = SimExecutor::new(model.clone(), 7 + b as u64, 0.10);
                let mut srv = ScanSharingServer::new(capacity, BatchPolicy { max_batch: b }, exec);
                let report = srv.run_open_loop(&arrivals);
                out.push(ServeRow {
                    scheme: label,
                    load,
                    max_batch: b,
                    arrival_qps: rate,
                    service_s: s1,
                    report,
                });
            }
        }
    }
    out
}

/// Figure 4 output: the real run's trace.
#[derive(Debug)]
pub struct Fig4Result {
    /// Aggregate trace statistics (§4.2's numbers).
    pub summary: TraceSummary,
    /// Scatter data as TSV (`time_s bytes kind worker`).
    pub scatter_tsv: String,
    /// Number of hits the search returned (sanity: the query is found).
    pub hits: usize,
}

/// Figure 4: run the *real* parallel BLAST with tracing enabled — 8
/// workers, 8 fragments, 568-nt query — on a synthetic database of
/// `total_residues` (scaled from nt's 2.7 G).
pub fn fig4(workdir: &Path, total_residues: u64) -> std::io::Result<Fig4Result> {
    let scheme = Scheme::local_at(&workdir.join("io"), 8)?;
    let mut g = SyntheticNt::new(SyntheticConfig {
        total_residues,
        seed: 2003,
        ..Default::default()
    });
    let mut seqs = vec![];
    while let Some(x) = g.next() {
        seqs.push(x);
    }
    // The paper's query: 568 characters extracted from a real sequence.
    let query = extract_query(&seqs[0].1, 568, 0.02, 1);
    let db = DbStats {
        residues: g.residues(),
        nseq: g.sequences(),
    };
    let infos = segment_into_fragments(&workdir.join("fmt"), "nt", SeqType::Nucleotide, 8, seqs)?;
    let mut fragments = vec![];
    for info in &infos {
        let bytes = std::fs::read(&info.path)?;
        let name = info
            .path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        scheme.load_fragment(&name, &bytes)?;
        fragments.push(name);
    }
    let tracer = Tracer::new();
    let job = ParallelBlast {
        program: Program::Blastn,
        params: SearchParams::blastn(),
        db,
        fragments,
        workers: 8,
        scheme,
        tracer: tracer.clone(),
        parallelization: Parallelization::DatabaseSegmentation,
        prefetch: false,
        list_io: false,
    };
    let out = job.run(&query)?;
    let events = tracer.events();
    Ok(Fig4Result {
        summary: TraceSummary::from_events(&events),
        scatter_tsv: TraceSummary::scatter_tsv(&events),
        hits: out.hits.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_DB: u64 = 192 << 20;

    #[test]
    fn calibration_matches_paper_numbers() {
        let c = calibration();
        assert!((c.disk_write_mbs - 32.0).abs() < 2.0, "{c:?}");
        assert!((c.disk_read_mbs - 26.0).abs() < 2.0, "{c:?}");
        assert!((c.net_mbs - 112.0).abs() < 6.0, "{c:?}");
        assert!((c.net_cpu_fraction - 0.47).abs() < 0.1, "{c:?}");
    }

    #[test]
    fn fig5_shape_crossover() {
        // Scaled-down sanity check of the crossover (the full 2.7 GB runs
        // in the fig5 binary resolve all four node counts): at 1 node PVFS
        // loses, at 2 it wins.
        let rows = fig5(&[1, 2], SMALL_DB);
        assert!(rows[0].t_pvfs > rows[0].t_original, "{rows:?}");
        assert!(rows[1].t_pvfs < rows[1].t_original, "{rows:?}");
    }

    #[test]
    fn read_ahead_ablation_hides_io_for_the_parallel_schemes() {
        let cells = read_ahead_ablation(SMALL_DB, &[0, 1]);
        for scheme in ["over-PVFS", "over-CEFT-PVFS"] {
            let d0 = cells
                .iter()
                .find(|c| c.scheme == scheme && c.depth == 0)
                .unwrap();
            let d1 = cells
                .iter()
                .find(|c| c.scheme == scheme && c.depth == 1)
                .unwrap();
            assert!(
                d1.makespan_s < d0.makespan_s,
                "{scheme}: depth 1 {} vs depth 0 {}",
                d1.makespan_s,
                d0.makespan_s
            );
            assert!(d1.speedup > 1.0, "{scheme}");
        }
    }

    #[test]
    fn fig7_shape_ceft_slightly_worse() {
        let rows = fig7(&[2, 4], SMALL_DB);
        for r in &rows {
            let ratio = r.t_ceft / r.t_pvfs;
            assert!(ratio > 0.9 && ratio < 1.35, "{r:?}");
        }
    }

    #[test]
    fn serve_batching_saves_io_and_improves_p95_under_saturation() {
        // At an arrival rate where unbatched serving saturates, a batch
        // cap of 4 cuts database-read bytes ≥2× and improves p95 latency,
        // under all three schemes. The fused kernel raised batched
        // capacity (cap-4 passes cost ~1.7 single-query units of compute,
        // not 4), so saturating the batched server's queue enough to fill
        // its batches takes a higher offered load than the pre-fused 1.45.
        let rows = serve_sweep(SMALL_DB, &[2.5], &[1, 4], 120, 4096);
        for scheme in ["original", "over-PVFS", "over-CEFT-PVFS"] {
            let cell = |b: usize| {
                rows.iter()
                    .find(|r| r.scheme == scheme && r.max_batch == b)
                    .unwrap()
            };
            let (un, b4) = (cell(1), cell(4));
            assert_eq!(un.report.served, 120, "{scheme}");
            assert_eq!(b4.report.served, 120, "{scheme}");
            assert!(
                b4.report.bytes_read * 2 <= un.report.bytes_read,
                "{scheme}: batched bytes {} vs unbatched {}",
                b4.report.bytes_read,
                un.report.bytes_read
            );
            assert!(b4.report.io_savings() >= 2.0, "{scheme}");
            assert!(
                b4.report.latency.p95 < un.report.latency.p95,
                "{scheme}: batched p95 {:.1} vs unbatched {:.1}",
                b4.report.latency.p95,
                un.report.latency.p95
            );
            assert!(
                b4.report.throughput_qps > un.report.throughput_qps,
                "{scheme}"
            );
        }
    }

    #[test]
    fn fig4_real_trace_is_read_dominated() {
        let dir = std::env::temp_dir().join(format!("fig4_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let r = fig4(&dir, 2 << 20).unwrap();
        assert!(r.summary.read_fraction > 0.6, "{:?}", r.summary);
        assert!(r.summary.write_max <= 778);
        assert!(r.hits > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
