//! # parblast-core
//!
//! The public facade of the `parblast` workspace — a reproduction of
//! *"A Case Study of Parallel I/O for Biological Sequence Search on Linux
//! Clusters"* (Zhu, Jiang, Qin, Swanson; CLUSTER 2003).
//!
//! The workspace provides, from the bottom up:
//!
//! * [`simcore`]/[`hwsim`] — a deterministic discrete-event simulator of
//!   the PrairieFire cluster (IDE disks, Myrinet TCP, dual CPUs, page
//!   cache, the Figure 8 disk stressor);
//! * [`pvfs`]/[`ceft`] — simulated PVFS and CEFT-PVFS (RAID-0 and RAID-10
//!   parallel file systems, dual-half reads, hot-spot skipping);
//! * [`pio`] — a *real* user-space parallel-I/O library with the same
//!   striping/mirroring semantics over actual files;
//! * [`seqdb`]/[`blast`] — a real sequence-database substrate and a
//!   from-scratch BLAST engine (blastn/blastp/blastx/tblastn/tblastx);
//! * [`mpiblast`] — the parallel BLAST layer, both as a real threaded job
//!   and as a simulated twin;
//! * [`experiments`] — one function per figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use parblast_core::prelude::*;
//!
//! // Generate a small synthetic nt-like database.
//! let mut gen = SyntheticNt::new(SyntheticConfig {
//!     total_residues: 200_000,
//!     ..Default::default()
//! });
//! let mut seqs = Vec::new();
//! while let Some(s) = gen.next() { seqs.push(s); }
//!
//! // Cut a 568-nt query out of it (like the paper's ecoli.nt query)...
//! let query = extract_query(&seqs[0].1, 568, 0.02, 7);
//!
//! // ...and search it with blastn.
//! let volume = Volume {
//!     seq_type: SeqType::Nucleotide,
//!     sequences: seqs
//!         .into_iter()
//!         .map(|(defline, codes)| DbSequence { defline, codes })
//!         .collect(),
//! };
//! let hits = blastall(Program::Blastn, &query, &volume, &SearchParams::blastn());
//! assert!(!hits.is_empty());
//! ```

#![warn(missing_docs)]

pub mod experiments;

pub use parblast_blast as blast;
pub use parblast_ceft as ceft;
pub use parblast_hwsim as hwsim;
pub use parblast_mpiblast as mpiblast;
pub use parblast_net as net;
pub use parblast_pio as pio;
pub use parblast_pvfs as pvfs;
pub use parblast_seqdb as seqdb;
pub use parblast_serve as serve;
pub use parblast_simcore as simcore;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use parblast_blast::{
        blastall, tabular, DbStats, GapPenalties, Hit, Hsp, Program, Scorer, SearchParams,
    };
    pub use parblast_mpiblast::{
        run_simblast, ParallelBlast, Parallelization, RunOutcome, Scheme, SimBlastConfig,
        SimOutcome, SimScheme, TraceSummary, Tracer,
    };
    pub use parblast_net::{BlastRunner, ClientConfig, NetClient, NetServer, ServerConfig};
    pub use parblast_pio::{
        LocalStore, MirroredStore, ObjectReader, ObjectStore, ServerId, StripedStore,
    };
    pub use parblast_seqdb::blastdb::DbSequence;
    pub use parblast_seqdb::{
        extract_query, segment_into_fragments, FastaReader, FastaWriter, SeqType, SyntheticConfig,
        SyntheticNt, Volume, VolumeWriter,
    };
    pub use parblast_serve::{
        serve_batched, AdmissionQueue, BatchPolicy, Priority, Query, ScanSharingServer,
        ServeReport, ServiceModel, SimExecutor,
    };

    pub use crate::experiments;
}
