//! Node-local file system: page cache + read-ahead over the node's disk.
//!
//! Models the behaviour of a 2003 Linux node as seen by an application:
//!
//! * **Reads** behave like a faulting memory-mapped reader — the request is
//!   broken into read-ahead-sized units issued *one at a time*; each unit is
//!   served from the page cache when resident, otherwise from the disk and
//!   then inserted into the cache.
//! * **Writes** are buffered (complete at memory speed, inserted into the
//!   cache) unless `sync` is set, in which case every unit goes to the
//!   platter before completion — the paper's Figure 8 stressor relies on
//!   this to guarantee a disk access per append.
//!
//! File offsets are mapped onto the disk's platter address space by
//! [`file_pos`], giving each file a disjoint, internally-contiguous extent —
//! so intra-file sequential access is sequential at the disk and accesses to
//! different files always seek.

use std::collections::HashMap;

use parblast_simcore::{CompId, Component, Ctx, SimTime};

use crate::cache::{BlockKey, PageCache};
use crate::event::{DiskOp, DiskReq, Ev, FsDone, FsMsg};
use crate::params::NodeParams;

/// Map `(file, offset)` to a platter position: each file gets a disjoint
/// 64 GiB extent, preserving intra-file contiguity.
pub fn file_pos(file: u64, offset: u64) -> u64 {
    debug_assert!(offset < 1 << 36, "file offset exceeds 64 GiB extent");
    (file << 36) | offset
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    MmapRead,
    WriteSync,
    WriteBuffered,
}

#[derive(Debug)]
struct InFlight {
    kind: Kind,
    file: u64,
    offset: u64,
    len: u64,
    unit: u64,
    cursor: u64,           // bytes already completed
    last_unit: (u64, u64), // absolute (start, len) of the unit in flight
    cached_bytes: u64,
    reply_to: CompId,
    tag: u64,
    started: SimTime,
}

/// Node-local file system component.
pub struct LocalFs {
    disk: CompId,
    cache: PageCache,
    readahead: u64,
    write_unit: u64,
    cache_hit_s: f64,
    mmap_fault_s: f64,
    read_gap_s: f64,
    inflight: HashMap<u64, InFlight>,
    next_req: u64,
    // statistics
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    bytes_from_cache: u64,
    name: String,
}

impl LocalFs {
    /// New file system over `disk` with the given node parameters.
    pub fn new(name: impl Into<String>, disk: CompId, node: &NodeParams) -> Self {
        LocalFs {
            disk,
            // Page-granular cache (4 KiB) so that I/O units of any size
            // map exactly onto cached blocks — a unit must not mark bytes
            // it did not read as resident.
            cache: PageCache::new(node.cache_bytes, 4096),
            readahead: node.readahead,
            write_unit: 1 << 20,
            cache_hit_s: node.cache_hit_s,
            mmap_fault_s: node.mmap_fault_s,
            read_gap_s: node.read_gap_s,
            inflight: HashMap::new(),
            next_req: 1,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
            bytes_from_cache: 0,
            name: name.into(),
        }
    }

    /// Drop every cached page (cold-start between experiment runs).
    pub fn drop_caches(&mut self) {
        self.cache.clear();
    }

    /// `(ops, bytes)` read and written plus bytes served from cache.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.reads,
            self.bytes_read,
            self.writes,
            self.bytes_written,
            self.bytes_from_cache,
        )
    }

    /// Cache hit/miss/eviction counters.
    pub fn cache_counters(&self) -> (u64, u64, u64) {
        self.cache.counters()
    }

    fn unit_of(&self, st: &InFlight) -> (u64, u64) {
        // Next unit: aligned to the unit size so cache blocks line up.
        let unit = match st.kind {
            Kind::Read | Kind::MmapRead => {
                if st.unit > 0 {
                    st.unit
                } else {
                    self.readahead
                }
            }
            _ => self.write_unit,
        };
        let abs = st.offset + st.cursor;
        let unit_end = (abs / unit + 1) * unit;
        let end = (st.offset + st.len).min(unit_end);
        (abs, end - abs)
    }

    /// Advance one request; issues the next unit or completes it.
    fn step(&mut self, ctx: &mut Ctx<'_, Ev>, req_id: u64) {
        let Some(st) = self.inflight.get(&req_id) else {
            return;
        };
        if st.cursor >= st.len {
            let st = self.inflight.remove(&req_id).unwrap();
            let latency = ctx.now().saturating_sub(st.started);
            match st.kind {
                Kind::Read | Kind::MmapRead => {
                    self.reads += 1;
                    self.bytes_read += st.len;
                    self.bytes_from_cache += st.cached_bytes;
                }
                _ => {
                    self.writes += 1;
                    self.bytes_written += st.len;
                }
            }
            ctx.send(
                st.reply_to,
                Ev::FsDone(FsDone {
                    tag: st.tag,
                    latency,
                    cached_bytes: st.cached_bytes,
                }),
            );
            return;
        }
        let (abs, len) = self.unit_of(st);
        let kind = st.kind;
        let file = st.file;
        match kind {
            Kind::Read | Kind::MmapRead => {
                let all_cached = self
                    .cache
                    .blocks_of(file, abs, len)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .all(|k| self.cache.access(k));
                if all_cached {
                    let st = self.inflight.get_mut(&req_id).unwrap();
                    st.cursor += len;
                    st.cached_bytes += len;
                    ctx.wake_in(
                        SimTime::from_secs_f64(self.cache_hit_s),
                        Ev::Fs(FsMsg::UnitDone { req: req_id }),
                    );
                } else {
                    let st = self.inflight.get_mut(&req_id).unwrap();
                    st.cursor += len;
                    st.last_unit = (abs, len);
                    ctx.send(
                        self.disk,
                        Ev::Disk(DiskReq {
                            op: DiskOp::Read,
                            pos: file_pos(file, abs),
                            len,
                            reply_to: ctx.self_id(),
                            tag: req_id,
                        }),
                    );
                }
            }
            Kind::WriteSync => {
                let st = self.inflight.get_mut(&req_id).unwrap();
                st.cursor += len;
                ctx.send(
                    self.disk,
                    Ev::Disk(DiskReq {
                        op: DiskOp::Write,
                        pos: file_pos(file, abs),
                        len,
                        reply_to: ctx.self_id(),
                        tag: req_id,
                    }),
                );
            }
            Kind::WriteBuffered => {
                let st = self.inflight.get_mut(&req_id).unwrap();
                st.cursor += len;
                ctx.wake_in(
                    SimTime::from_secs_f64(self.cache_hit_s),
                    Ev::Fs(FsMsg::UnitDone { req: req_id }),
                );
            }
        }
    }

    fn fill_cache(&mut self, file: u64, abs: u64, len: u64) {
        let keys: Vec<BlockKey> = self.cache.blocks_of(file, abs, len).collect();
        for k in keys {
            self.cache.insert(k);
        }
    }
}

impl Component<Ev> for LocalFs {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Fs(FsMsg::Read {
                file,
                offset,
                len,
                mmap,
                unit,
                reply_to,
                tag,
            }) => {
                let id = self.next_req;
                self.next_req += 1;
                self.inflight.insert(
                    id,
                    InFlight {
                        kind: if mmap { Kind::MmapRead } else { Kind::Read },
                        file,
                        offset,
                        len,
                        unit,
                        cursor: 0,
                        last_unit: (0, 0),
                        cached_bytes: 0,
                        reply_to,
                        tag,
                        started: ctx.now(),
                    },
                );
                self.step(ctx, id);
            }
            Ev::Fs(FsMsg::Write {
                file,
                offset,
                len,
                sync,
                reply_to,
                tag,
            }) => {
                let id = self.next_req;
                self.next_req += 1;
                self.inflight.insert(
                    id,
                    InFlight {
                        kind: if sync {
                            Kind::WriteSync
                        } else {
                            Kind::WriteBuffered
                        },
                        file,
                        offset,
                        len,
                        unit: 0,
                        cursor: 0,
                        last_unit: (0, 0),
                        cached_bytes: 0,
                        reply_to,
                        tag,
                        started: ctx.now(),
                    },
                );
                self.fill_cache(file, offset, len);
                self.step(ctx, id);
            }
            Ev::Fs(FsMsg::Truncate { file }) => {
                self.cache.invalidate_file(file);
            }
            Ev::Fs(FsMsg::UnitDone { req }) => {
                self.step(ctx, req);
            }
            Ev::DiskDone(done) => {
                // The unit just read enters the page cache; memory-mapped
                // readers pay the per-fault overhead before continuing.
                let mut fault = 0.0;
                if let Some(st) = self.inflight.get(&done.tag) {
                    let info = matches!(st.kind, Kind::Read | Kind::MmapRead)
                        .then(|| (st.file, st.last_unit));
                    fault = match st.kind {
                        Kind::MmapRead => self.mmap_fault_s,
                        Kind::Read => self.read_gap_s,
                        _ => 0.0,
                    };
                    if let Some((file, (abs, len))) = info {
                        self.fill_cache(file, abs, len);
                    }
                }
                if fault > 0.0 {
                    ctx.wake_in(
                        SimTime::from_secs_f64(fault),
                        Ev::Fs(FsMsg::UnitDone { req: done.tag }),
                    );
                } else {
                    self.step(ctx, done.tag);
                }
            }
            _ => debug_assert!(false, "localfs received unexpected event"),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use crate::params::{DiskParams, HwParams, KIB, MIB};
    use parblast_simcore::Engine;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink {
        done: Rc<RefCell<Vec<(SimTime, FsDone)>>>,
    }
    impl Component<Ev> for Sink {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            if let Ev::FsDone(d) = ev {
                self.done.borrow_mut().push((ctx.now(), d));
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn harness() -> (
        Engine<Ev>,
        CompId,
        CompId,
        CompId,
        Rc<RefCell<Vec<(SimTime, FsDone)>>>,
    ) {
        let p = HwParams::default();
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let fs = eng.add(LocalFs::new("fs0", disk, &p.node));
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        (eng, disk, fs, sink, done)
    }

    #[test]
    fn cold_read_goes_to_disk_then_cache_hits() {
        let (mut eng, disk, fs, sink, done) = harness();
        eng.schedule(
            SimTime::ZERO,
            fs,
            Ev::Fs(FsMsg::Read {
                file: 1,
                offset: 0,
                len: 4 * MIB,
                mmap: false,
                unit: 0,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.run();
        let cold = done.borrow()[0].1.latency;
        assert_eq!(done.borrow()[0].1.cached_bytes, 0);
        // Same read again: now fully cached, orders of magnitude faster.
        let start = eng.now();
        eng.schedule(
            start,
            fs,
            Ev::Fs(FsMsg::Read {
                file: 1,
                offset: 0,
                len: 4 * MIB,
                mmap: false,
                unit: 0,
                reply_to: sink,
                tag: 2,
            }),
        );
        eng.run();
        let warm = done.borrow()[1].1.latency;
        assert_eq!(done.borrow()[1].1.cached_bytes, 4 * MIB);
        assert!(warm.as_secs_f64() < cold.as_secs_f64() / 20.0);
        let d = eng.component::<Disk>(disk);
        assert_eq!(d.bytes().0, 4 * MIB); // disk touched only once
    }

    #[test]
    fn cold_read_rate_near_media_rate() {
        let (mut eng, _disk, fs, sink, done) = harness();
        let len = 16 * MIB;
        eng.schedule(
            SimTime::ZERO,
            fs,
            Ev::Fs(FsMsg::Read {
                file: 1,
                offset: 0,
                len,
                mmap: false,
                unit: 0,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.run();
        let t = done.borrow()[0].1.latency.as_secs_f64();
        let bw = len as f64 / MIB as f64 / t;
        assert!((bw - 26.0).abs() / 26.0 < 0.1, "bw = {bw} MiB/s");
    }

    #[test]
    fn sync_write_touches_disk() {
        let (mut eng, disk, fs, sink, done) = harness();
        eng.schedule(
            SimTime::ZERO,
            fs,
            Ev::Fs(FsMsg::Write {
                file: 2,
                offset: 0,
                len: MIB,
                sync: true,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.run();
        assert_eq!(eng.component::<Disk>(disk).bytes().1, MIB);
        let lat = done.borrow()[0].1.latency.as_secs_f64();
        // ≈ seek + rot + 1 MiB / 32 MB/s ≈ 44 ms.
        assert!(lat > 0.03 && lat < 0.06, "lat = {lat}");
    }

    #[test]
    fn buffered_write_is_memory_speed() {
        let (mut eng, disk, fs, sink, done) = harness();
        eng.schedule(
            SimTime::ZERO,
            fs,
            Ev::Fs(FsMsg::Write {
                file: 2,
                offset: 0,
                len: 700, // paper: mean write is 690 B
                sync: false,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.run();
        assert_eq!(eng.component::<Disk>(disk).bytes().1, 0);
        let lat = done.borrow()[0].1.latency.as_secs_f64();
        assert!(lat < 1e-3, "lat = {lat}");
    }

    #[test]
    fn truncate_invalidates_cache() {
        let (mut eng, _disk, fs, sink, done) = harness();
        eng.schedule(
            SimTime::ZERO,
            fs,
            Ev::Fs(FsMsg::Read {
                file: 1,
                offset: 0,
                len: MIB,
                mmap: false,
                unit: 0,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.run();
        let t1 = eng.now();
        eng.schedule(t1, fs, Ev::Fs(FsMsg::Truncate { file: 1 }));
        eng.schedule(
            t1,
            fs,
            Ev::Fs(FsMsg::Read {
                file: 1,
                offset: 0,
                len: MIB,
                mmap: false,
                unit: 0,
                reply_to: sink,
                tag: 2,
            }),
        );
        eng.run();
        assert_eq!(done.borrow()[1].1.cached_bytes, 0);
    }

    #[test]
    fn zero_length_read_completes() {
        let (mut eng, _disk, fs, sink, done) = harness();
        eng.schedule(
            SimTime::ZERO,
            fs,
            Ev::Fs(FsMsg::Read {
                file: 1,
                offset: 5,
                len: 0,
                mmap: false,
                unit: 0,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.run();
        assert_eq!(done.borrow().len(), 1);
    }

    #[test]
    fn unaligned_read_works() {
        let (mut eng, _disk, fs, sink, done) = harness();
        eng.schedule(
            SimTime::ZERO,
            fs,
            Ev::Fs(FsMsg::Read {
                file: 1,
                offset: 100 * KIB + 17,
                len: 300 * KIB + 5,
                mmap: false,
                unit: 0,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.run();
        assert_eq!(done.borrow().len(), 1);
    }
}
