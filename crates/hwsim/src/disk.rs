//! IDE disk model with an elevator-style scheduler.
//!
//! Service time for one request is
//! `overhead + (seek + rotational if the head moves) + len / rate`.
//! The scheduler prefers a request that continues the current sequential
//! stream (no head movement) over older requests from other streams, up to a
//! per-stream batch budget — large for writes (write-back clustering),
//! small for synchronous reads. A short anticipation window after each
//! completion lets a stream's next request, issued upon completion, be
//! captured before the head switches away.
//!
//! This reproduces the three behaviours the paper's evaluation rests on:
//!
//! 1. a lone sequential reader/writer achieves the Bonnie media rates;
//! 2. two interleaved streams pay a seek per alternation and batch in
//!    elevator slots, degrading gracefully;
//! 3. a continuously-appending synchronous writer (the Figure 8 stressor)
//!    monopolizes the head in multi-megabyte batches, collapsing a
//!    concurrent reader's bandwidth by an order of magnitude.

use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

use parblast_simcore::{Component, Ctx, SimTime, Summary};

use crate::event::{DiskCtl, DiskOp, DiskReq, Ev, FaultCmd};
use crate::params::DiskParams;

/// Simulated disk component.
pub struct Disk {
    params: DiskParams,
    queue: VecDeque<(SimTime, DiskReq)>,
    busy: bool,
    head_pos: u64,
    streak_bytes: u64,
    streak_op: DiskOp,
    in_service: Option<(SimTime, DiskReq)>,
    /// Bumped on every fault that voids in-flight service; completions
    /// stamped with an older generation are stale and ignored.
    generation: u64,
    /// Nothing enters service before this time (fault-injected hiccup).
    stalled_until: SimTime,
    /// Hard-failed: requests are swallowed without completion notices.
    failed: bool,
    /// Requests discarded by fail/reset faults.
    dropped: u64,
    // statistics
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    seeks: u64,
    busy_ns: u64,
    read_latency: Summary,
    write_latency: Summary,
    gauge: Rc<Cell<DiskGauge>>,
    name: String,
}

/// Live load snapshot a [`Disk`] publishes for out-of-band observers
/// (CEFT-PVFS load monitors sample this the way `/proc/diskstats` would be
/// sampled on a real server).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskGauge {
    /// Cumulative busy nanoseconds.
    pub busy_ns: u64,
    /// Requests currently queued (excluding in service).
    pub queued: u64,
}

impl Disk {
    /// New disk with the given parameters.
    pub fn new(name: impl Into<String>, params: DiskParams) -> Self {
        Disk {
            params,
            queue: VecDeque::new(),
            busy: false,
            head_pos: 0,
            streak_bytes: 0,
            streak_op: DiskOp::Read,
            in_service: None,
            generation: 0,
            stalled_until: SimTime::ZERO,
            failed: false,
            dropped: 0,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
            seeks: 0,
            busy_ns: 0,
            read_latency: Summary::new(),
            write_latency: Summary::new(),
            gauge: Rc::new(Cell::new(DiskGauge::default())),
            name: name.into(),
        }
    }

    /// Shared handle to this disk's live load gauge.
    pub fn gauge(&self) -> Rc<Cell<DiskGauge>> {
        Rc::clone(&self.gauge)
    }

    fn publish_gauge(&self) {
        self.gauge.set(DiskGauge {
            busy_ns: self.busy_ns,
            queued: self.queue.len() as u64,
        });
    }

    /// Pure service-time formula (no queueing), exposed for calibration.
    pub fn service_time(params: &DiskParams, sequential: bool, op: DiskOp, len: u64) -> SimTime {
        let rate = match op {
            DiskOp::Read => params.read_bw,
            DiskOp::Write => params.write_bw,
        };
        let mut s = params.overhead_s + len as f64 / rate;
        if !sequential {
            s += params.seek_s + params.rotational_s;
        }
        SimTime::from_secs_f64(s)
    }

    fn batch_limit(&self, op: DiskOp) -> u64 {
        match op {
            DiskOp::Read => self.params.read_batch_bytes,
            DiskOp::Write => self.params.write_batch_bytes,
        }
    }

    /// Choose the next request: a sequential continuation within the batch
    /// budget wins; otherwise the oldest request.
    fn pick(&mut self) -> Option<(SimTime, DiskReq)> {
        if self.queue.is_empty() {
            return None;
        }
        let seq_idx = self.queue.iter().position(|(_, r)| {
            r.pos == self.head_pos
                && r.op == self.streak_op
                && self.streak_bytes + r.len <= self.batch_limit(r.op)
        });
        let idx = match seq_idx {
            Some(i) => i,
            None => {
                // Stream switch (or budget exhausted): take the oldest.
                self.streak_bytes = 0;
                0
            }
        };
        self.queue.remove(idx)
    }

    fn start_service(&mut self, ctx: &mut Ctx<'_, Ev>, arrival: SimTime, req: DiskReq) {
        let sequential = req.pos == self.head_pos;
        if !sequential {
            self.seeks += 1;
            self.streak_bytes = 0;
        }
        self.streak_op = req.op;
        self.streak_bytes += req.len;
        let service = Self::service_time(&self.params, sequential, req.op, req.len);
        self.busy = true;
        self.busy_ns += service.as_nanos();
        self.head_pos = req.pos + req.len;
        self.in_service = Some((arrival, req));
        self.publish_gauge();
        ctx.wake_in(
            service,
            Ev::DiskCtl(DiskCtl::Complete {
                generation: self.generation,
            }),
        );
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if self.busy || self.failed {
            return;
        }
        if ctx.now() < self.stalled_until {
            // Re-arm dispatch for when the stall lifts.
            let wait = self.stalled_until.saturating_sub(ctx.now());
            ctx.wake_in(wait, Ev::DiskCtl(DiskCtl::Dispatch));
            return;
        }
        if let Some((arrival, req)) = self.pick() {
            self.start_service(ctx, arrival, req);
        }
    }

    /// Drop the in-service request and everything queued, without
    /// completion notices, and invalidate pending completion events.
    fn void_in_flight(&mut self) {
        self.generation += 1;
        self.dropped += self.queue.len() as u64 + u64::from(self.in_service.is_some());
        self.queue.clear();
        self.in_service = None;
        self.busy = false;
        self.publish_gauge();
    }

    fn apply_fault(&mut self, ctx: &mut Ctx<'_, Ev>, cmd: FaultCmd) {
        match cmd {
            FaultCmd::DiskStall { for_ } => {
                self.stalled_until = self.stalled_until.max(ctx.now() + for_);
            }
            FaultCmd::DiskFail => {
                self.failed = true;
                self.void_in_flight();
            }
            FaultCmd::DiskRepair => {
                self.failed = false;
                ctx.wake_in(SimTime::ZERO, Ev::DiskCtl(DiskCtl::Dispatch));
            }
            FaultCmd::Reset => {
                self.failed = false;
                self.stalled_until = SimTime::ZERO;
                self.void_in_flight();
            }
            FaultCmd::NetRule(_) | FaultCmd::NetClear => {
                debug_assert!(false, "network fault sent to a disk");
            }
            // Addressed to the storage daemon, not the platter model.
            FaultCmd::CorruptStripe { .. } => {}
        }
    }

    /// Requests served.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Bytes transferred `(read, written)`.
    pub fn bytes(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// Seeks performed.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// Cumulative busy time.
    pub fn busy_time(&self) -> SimTime {
        SimTime::from_nanos(self.busy_ns)
    }

    /// Utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            (self.busy_time().as_secs_f64() / span).min(1.0)
        }
    }

    /// Request latency summaries `(read, write)`.
    pub fn latency(&self) -> (&Summary, &Summary) {
        (&self.read_latency, &self.write_latency)
    }

    /// Requests currently waiting (excluding the one in service).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Is the disk hard-failed (swallowing requests)?
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Requests discarded by injected faults (never completed).
    pub fn dropped_requests(&self) -> u64 {
        self.dropped
    }
}

impl Component<Ev> for Disk {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Disk(req) => {
                if self.failed {
                    // A failed disk swallows requests: the caller only ever
                    // sees a timeout, like a dead IDE drive.
                    self.dropped += 1;
                    return;
                }
                self.queue.push_back((ctx.now(), req));
                self.publish_gauge();
                if !self.busy {
                    // Dispatch in a fresh event so that all same-instant
                    // arrivals are enqueued before the choice is made.
                    ctx.wake_in(SimTime::ZERO, Ev::DiskCtl(DiskCtl::Dispatch));
                }
            }
            Ev::DiskCtl(DiskCtl::Complete { generation }) => {
                if generation != self.generation {
                    // Scheduled before a fail/reset voided the service.
                    return;
                }
                let (arrival, req) = self.in_service.take().expect("completion without service");
                self.busy = false;
                let latency = ctx.now().saturating_sub(arrival);
                match req.op {
                    DiskOp::Read => {
                        self.reads += 1;
                        self.bytes_read += req.len;
                        self.read_latency.record(latency.as_secs_f64());
                    }
                    DiskOp::Write => {
                        self.writes += 1;
                        self.bytes_written += req.len;
                        self.write_latency.record(latency.as_secs_f64());
                    }
                }
                ctx.send(
                    req.reply_to,
                    Ev::DiskDone(crate::event::DiskDone {
                        tag: req.tag,
                        latency,
                    }),
                );
                // Anticipation: give the completed stream a chance to issue
                // its sequential successor before switching away.
                let wait = SimTime::from_secs_f64(self.params.anticipation_s);
                ctx.wake_in(wait, Ev::DiskCtl(DiskCtl::Dispatch));
            }
            Ev::DiskCtl(DiskCtl::Dispatch) => self.dispatch(ctx),
            Ev::Fault(cmd) => self.apply_fault(ctx, cmd),
            _ => debug_assert!(false, "disk received unexpected event"),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DiskDone;
    use crate::params::{KIB, MIB};
    use parblast_simcore::{CompId, Engine};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records completions.
    struct Sink {
        done: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }
    impl Component<Ev> for Sink {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            if let Ev::DiskDone(DiskDone { tag, .. }) = ev {
                self.done.borrow_mut().push((ctx.now(), tag));
            }
        }
    }

    /// A synchronous sequential reader: issues the next unit when the
    /// previous completes.
    struct SeqReader {
        disk: CompId,
        pos: u64,
        unit: u64,
        remaining: u64,
        finish: Rc<RefCell<Option<SimTime>>>,
    }
    impl Component<Ev> for SeqReader {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, _ev: Ev) {
            // Both the kick-off Timer and every DiskDone land here.
            if self.remaining == 0 {
                *self.finish.borrow_mut() = Some(ctx.now());
                return;
            }
            let len = self.unit.min(self.remaining);
            self.remaining -= len;
            let req = DiskReq {
                op: DiskOp::Read,
                pos: self.pos,
                len,
                reply_to: ctx.self_id(),
                tag: 0,
            };
            self.pos += len;
            ctx.send(self.disk, Ev::Disk(req));
        }
    }

    /// The Figure 8 stressor shape: back-to-back sequential sync writes.
    struct SeqWriter {
        disk: CompId,
        pos: u64,
        unit: u64,
        stop_at: SimTime,
    }
    impl Component<Ev> for SeqWriter {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, _ev: Ev) {
            if ctx.now() >= self.stop_at {
                return;
            }
            let req = DiskReq {
                op: DiskOp::Write,
                pos: self.pos,
                len: self.unit,
                reply_to: ctx.self_id(),
                tag: 0,
            };
            self.pos += self.unit;
            ctx.send(self.disk, Ev::Disk(req));
        }
    }

    #[test]
    fn lone_sequential_reader_hits_bonnie_rate() {
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let finish = Rc::new(RefCell::new(None));
        let total = 64 * MIB;
        let rd = eng.add(SeqReader {
            disk,
            pos: 0,
            unit: 128 * KIB,
            remaining: total,
            finish: finish.clone(),
        });
        eng.schedule(SimTime::ZERO, rd, Ev::Timer(0));
        eng.run();
        let t = finish.borrow().unwrap().as_secs_f64();
        let bw = total as f64 / MIB as f64 / t;
        assert!((bw - 26.0).abs() / 26.0 < 0.08, "read bw = {bw} MiB/s");
    }

    #[test]
    fn lone_sequential_writer_hits_bonnie_rate() {
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let wr = eng.add(SeqWriter {
            disk,
            pos: 0,
            unit: MIB,
            stop_at: SimTime::from_secs(10),
        });
        eng.schedule(SimTime::ZERO, wr, Ev::Timer(0));
        eng.run();
        let d = eng.component::<Disk>(disk);
        let bw = d.bytes().1 as f64 / MIB as f64 / eng.now().as_secs_f64();
        assert!((bw - 32.0).abs() / 32.0 < 0.08, "write bw = {bw} MiB/s");
    }

    #[test]
    fn stressor_collapses_reader_bandwidth() {
        // The §4.5 scenario: one synchronous appender vs one page-faulting
        // reader → reader bandwidth must drop by an order of magnitude.
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let finish = Rc::new(RefCell::new(None));
        let total = 8 * MIB;
        let rd = eng.add(SeqReader {
            disk,
            pos: 1 << 40,
            unit: 128 * KIB,
            remaining: total,
            finish: finish.clone(),
        });
        let wr = eng.add(SeqWriter {
            disk,
            pos: 0,
            unit: MIB,
            stop_at: SimTime::from_secs(3600),
        });
        eng.schedule(SimTime::ZERO, wr, Ev::Timer(0));
        eng.schedule(SimTime::ZERO, rd, Ev::Timer(0));
        eng.run_until(SimTime::from_secs(600));
        let t = finish.borrow().expect("reader should finish").as_secs_f64();
        let bw = total as f64 / MIB as f64 / t;
        assert!(
            bw < 26.0 / 10.0,
            "stressed reader bw = {bw} MiB/s, expected < 2.6"
        );
        assert!(bw > 0.02, "reader must not fully starve: {bw}");
    }

    #[test]
    fn two_readers_share_with_batching() {
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let f1 = Rc::new(RefCell::new(None));
        let f2 = Rc::new(RefCell::new(None));
        let total = 32 * MIB;
        let r1 = eng.add(SeqReader {
            disk,
            pos: 0,
            unit: 128 * KIB,
            remaining: total,
            finish: f1.clone(),
        });
        let r2 = eng.add(SeqReader {
            disk,
            pos: 1 << 40,
            unit: 128 * KIB,
            remaining: total,
            finish: f2.clone(),
        });
        eng.schedule(SimTime::ZERO, r1, Ev::Timer(0));
        eng.schedule(SimTime::ZERO, r2, Ev::Timer(0));
        eng.run();
        let t = f1.borrow().unwrap().max(f2.borrow().unwrap()).as_secs_f64();
        let agg = 2.0 * total as f64 / MIB as f64 / t;
        // Aggregate should be well below the lone-reader rate (seeks) but
        // far above the stressed collapse.
        assert!(agg > 8.0 && agg < 24.0, "aggregate = {agg} MiB/s");
    }

    #[test]
    fn completions_preserve_fcfs_between_streams() {
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        // Three single-shot far-apart requests: no sequential preference
        // applies, so they complete oldest-first.
        for i in 0..3u64 {
            eng.schedule(
                SimTime::from_nanos(i),
                disk,
                Ev::Disk(DiskReq {
                    op: DiskOp::Read,
                    pos: i << 40,
                    len: 64 * KIB,
                    reply_to: sink,
                    tag: i,
                }),
            );
        }
        eng.run();
        let tags: Vec<u64> = done.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    fn stats_accumulate() {
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        eng.schedule(
            SimTime::ZERO,
            disk,
            Ev::Disk(DiskReq {
                op: DiskOp::Read,
                pos: 0,
                len: MIB,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.schedule(
            SimTime::ZERO,
            disk,
            Ev::Disk(DiskReq {
                op: DiskOp::Write,
                pos: 1 << 40,
                len: 2 * MIB,
                reply_to: sink,
                tag: 2,
            }),
        );
        eng.run();
        let d = eng.component::<Disk>(disk);
        assert_eq!(d.ops(), 2);
        assert_eq!(d.bytes(), (MIB, 2 * MIB));
        assert!(d.busy_time() > SimTime::ZERO);
        assert_eq!(d.latency().0.count(), 1);
        assert_eq!(d.latency().1.count(), 1);
    }
}
