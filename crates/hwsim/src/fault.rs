//! Deterministic fault injection.
//!
//! A [`FaultSchedule`] is a declarative list of `(time, fault)` pairs built
//! up-front; a [`FaultInjector`] component replays it inside the engine's
//! event queue. Because every fault is applied by an ordinary event at a
//! precise simulation time, two runs with the same schedule and engine seed
//! produce bit-identical traces — there is no out-of-band mutation.
//!
//! Fault classes:
//!
//! * **Server crash/revive** — every component registered for the server is
//!   atomically disabled in the engine (its pending and future events are
//!   dropped, exactly like a powered-off node); revival re-enables them and
//!   sends [`FaultCmd::Reset`] so daemons discard pre-crash state.
//! * **Disk stall/fail/repair** — delivered to the node's [`crate::Disk`]
//!   as [`FaultCmd`]s: a stall freezes the head for a duration, a failure
//!   swallows requests without completions until repaired.
//! * **Network drop/delay** — installs a [`NetFaultRule`] on the
//!   [`crate::Network`], matching messages by `(src, dst)` until a
//!   deadline.

use std::collections::HashMap;

use parblast_simcore::{CompId, Component, Ctx, Engine, SimTime};

use crate::event::{Ev, FaultCmd, NetFaultMode, NetFaultRule};

/// One injectable fault.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Disable every component registered for `server` (see
    /// [`FaultInjector::register_server`]).
    ServerCrash {
        /// Server identifier used at registration.
        server: usize,
    },
    /// Re-enable `server`'s components and send each a [`FaultCmd::Reset`].
    ServerRevive {
        /// Server identifier used at registration.
        server: usize,
    },
    /// Freeze `node`'s disk head for `for_`.
    DiskStall {
        /// Node whose disk stalls.
        node: u32,
        /// Stall duration.
        for_: SimTime,
    },
    /// Hard-fail `node`'s disk: requests vanish until repaired.
    DiskFail {
        /// Node whose disk fails.
        node: u32,
    },
    /// Repair `node`'s disk.
    DiskRepair {
        /// Node whose disk recovers.
        node: u32,
    },
    /// Drop every matching `src → dst` message until `until`.
    NetDrop {
        /// Source filter (`None` = any).
        src: Option<u32>,
        /// Destination filter (`None` = any).
        dst: Option<u32>,
        /// Rule expiry time.
        until: SimTime,
    },
    /// Silently flip bits in one stripe of `file` on `server`'s local disk
    /// (delivered to the server's storage daemon as
    /// [`FaultCmd::CorruptStripe`]). The daemon keeps serving the stripe —
    /// only checksum verification can notice.
    CorruptStripe {
        /// Server identifier used at registration.
        server: usize,
        /// Daemon-local file identifier.
        file: u64,
        /// Stripe index within the daemon's local portion of the file.
        stripe: u64,
    },
    /// Delay every matching `src → dst` message by `delay` until `until`.
    NetDelay {
        /// Source filter (`None` = any).
        src: Option<u32>,
        /// Destination filter (`None` = any).
        dst: Option<u32>,
        /// Extra latency added to matched messages.
        delay: SimTime,
        /// Rule expiry time.
        until: SimTime,
    },
}

/// A fault bound to its injection time.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Simulation time at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub fault: Fault,
}

/// Declarative, time-ordered fault plan (builder style).
///
/// ```
/// use parblast_hwsim::FaultSchedule;
/// use parblast_simcore::SimTime;
///
/// let plan = FaultSchedule::new()
///     .crash_server(SimTime::from_secs(30), 2)
///     .revive_server(SimTime::from_secs(90), 2)
///     .fail_disk(SimTime::from_secs(10), 5);
/// assert_eq!(plan.events().len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Append an arbitrary fault event.
    pub fn push(mut self, at: SimTime, fault: Fault) -> Self {
        self.events.push(FaultEvent { at, fault });
        self
    }

    /// Crash `server` at `at`.
    pub fn crash_server(self, at: SimTime, server: usize) -> Self {
        self.push(at, Fault::ServerCrash { server })
    }

    /// Revive `server` at `at`.
    pub fn revive_server(self, at: SimTime, server: usize) -> Self {
        self.push(at, Fault::ServerRevive { server })
    }

    /// Stall `node`'s disk for `for_` starting at `at`.
    pub fn stall_disk(self, at: SimTime, node: u32, for_: SimTime) -> Self {
        self.push(at, Fault::DiskStall { node, for_ })
    }

    /// Hard-fail `node`'s disk at `at`.
    pub fn fail_disk(self, at: SimTime, node: u32) -> Self {
        self.push(at, Fault::DiskFail { node })
    }

    /// Repair `node`'s disk at `at`.
    pub fn repair_disk(self, at: SimTime, node: u32) -> Self {
        self.push(at, Fault::DiskRepair { node })
    }

    /// Silently corrupt `stripe` of `file` on `server` at `at`.
    pub fn corrupt_stripe(self, at: SimTime, server: usize, file: u64, stripe: u64) -> Self {
        self.push(
            at,
            Fault::CorruptStripe {
                server,
                file,
                stripe,
            },
        )
    }

    /// Drop `src → dst` messages from `at` until `until`.
    pub fn drop_messages(
        self,
        at: SimTime,
        src: Option<u32>,
        dst: Option<u32>,
        until: SimTime,
    ) -> Self {
        self.push(at, Fault::NetDrop { src, dst, until })
    }

    /// Delay `src → dst` messages by `delay` from `at` until `until`.
    pub fn delay_messages(
        self,
        at: SimTime,
        src: Option<u32>,
        dst: Option<u32>,
        delay: SimTime,
        until: SimTime,
    ) -> Self {
        self.push(
            at,
            Fault::NetDelay {
                src,
                dst,
                delay,
                until,
            },
        )
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// No faults scheduled?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Component that replays a [`FaultSchedule`].
///
/// Build it, register the targets (servers, disks, the network), then
/// [`install`](FaultInjector::install) it into the engine. Targets are
/// registered by the simulation builder, which knows the component ids;
/// the schedule itself stays purely declarative.
pub struct FaultInjector {
    /// Events sorted by time (stable, so same-time faults keep insertion
    /// order).
    schedule: Vec<FaultEvent>,
    next: usize,
    servers: HashMap<usize, Vec<CompId>>,
    disks: HashMap<u32, CompId>,
    net: Option<CompId>,
    injected: u64,
    name: String,
}

impl FaultInjector {
    /// New injector for `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        let mut events = schedule.events;
        events.sort_by_key(|e| e.at);
        FaultInjector {
            schedule: events,
            next: 0,
            servers: HashMap::new(),
            disks: HashMap::new(),
            net: None,
            injected: 0,
            name: "fault-injector".into(),
        }
    }

    /// Register the components that make up data server `server` (its iod
    /// or CEFT daemon, load monitor, …). Crashing the server disables all
    /// of them; reviving re-enables and resets them.
    pub fn register_server(&mut self, server: usize, comps: Vec<CompId>) {
        self.servers.entry(server).or_default().extend(comps);
    }

    /// Register `node`'s disk component.
    pub fn register_disk(&mut self, node: u32, disk: CompId) {
        self.disks.insert(node, disk);
    }

    /// Register the network component.
    pub fn register_net(&mut self, net: CompId) {
        self.net = Some(net);
    }

    /// Faults applied so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Add the injector to `eng` and arm its first timer. Returns the
    /// injector's component id (useful for inspection after the run).
    pub fn install(self, eng: &mut Engine<Ev>) -> CompId {
        let first = self.schedule.first().map(|e| e.at);
        let id = eng.add(self);
        if let Some(at) = first {
            eng.schedule(at, id, Ev::Timer(0));
        }
        id
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, Ev>, fault: Fault) {
        self.injected += 1;
        match fault {
            Fault::ServerCrash { server } => {
                for &comp in self.servers.get(&server).into_iter().flatten() {
                    ctx.set_component_enabled(comp, false);
                }
            }
            Fault::ServerRevive { server } => {
                let comps = self.servers.get(&server).cloned().unwrap_or_default();
                for comp in comps {
                    ctx.set_component_enabled(comp, true);
                    ctx.send(comp, Ev::Fault(FaultCmd::Reset));
                }
            }
            Fault::DiskStall { node, for_ } => {
                if let Some(&disk) = self.disks.get(&node) {
                    ctx.send(disk, Ev::Fault(FaultCmd::DiskStall { for_ }));
                }
            }
            Fault::DiskFail { node } => {
                if let Some(&disk) = self.disks.get(&node) {
                    ctx.send(disk, Ev::Fault(FaultCmd::DiskFail));
                }
            }
            Fault::DiskRepair { node } => {
                if let Some(&disk) = self.disks.get(&node) {
                    ctx.send(disk, Ev::Fault(FaultCmd::DiskRepair));
                }
            }
            Fault::CorruptStripe {
                server,
                file,
                stripe,
            } => {
                // Delivered to every component of the server; non-storage
                // components (load monitors, …) ignore the command.
                for &comp in self.servers.get(&server).into_iter().flatten() {
                    ctx.send(comp, Ev::Fault(FaultCmd::CorruptStripe { file, stripe }));
                }
            }
            Fault::NetDrop { src, dst, until } => {
                if let Some(net) = self.net {
                    ctx.send(
                        net,
                        Ev::Fault(FaultCmd::NetRule(NetFaultRule {
                            src,
                            dst,
                            until,
                            mode: NetFaultMode::Drop,
                        })),
                    );
                }
            }
            Fault::NetDelay {
                src,
                dst,
                delay,
                until,
            } => {
                if let Some(net) = self.net {
                    ctx.send(
                        net,
                        Ev::Fault(FaultCmd::NetRule(NetFaultRule {
                            src,
                            dst,
                            until,
                            mode: NetFaultMode::Delay(delay),
                        })),
                    );
                }
            }
        }
    }
}

impl Component<Ev> for FaultInjector {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, _ev: Ev) {
        // Apply every fault due now, then re-arm for the next one.
        while self.next < self.schedule.len() && self.schedule[self.next].at <= ctx.now() {
            let fault = self.schedule[self.next].fault.clone();
            self.next += 1;
            self.apply(ctx, fault);
        }
        if let Some(e) = self.schedule.get(self.next) {
            let wait = e.at.saturating_sub(ctx.now());
            ctx.wake_in(wait, Ev::Timer(0));
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// ---------------------------------------------------------------------------
// Socket-level fault schedules (shared with `net::chaos`)
// ---------------------------------------------------------------------------

/// Which half of a byte stream a [`SocketFault`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocketDir {
    /// The fault fires when the *read* cursor reaches the offset.
    Read,
    /// The fault fires when the *write* cursor reaches the offset.
    Write,
}

/// One injectable stream fault. Mirrors the failure modes a TCP connection
/// actually exhibits: partial transfers, stalls, and hard resets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFaultKind {
    /// Cap the next transfer in this direction at `cap` bytes (≥ 1 — a
    /// zero-byte read would forge an EOF, which is a different fault).
    ShortOp {
        /// Maximum bytes the next op may move.
        cap: usize,
    },
    /// Sleep `for_ms` milliseconds before the next op in this direction —
    /// a straggler link, or a slowloris peer when injected on writes.
    Stall {
        /// Stall duration, wall milliseconds.
        for_ms: u64,
    },
    /// Hard-close the underlying transport; every later op in *either*
    /// direction fails with `ConnectionReset`.
    Reset,
}

/// A [`SocketFaultKind`] bound to a byte offset in one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketFault {
    /// Direction whose cursor triggers the fault.
    pub dir: SocketDir,
    /// Cursor position (bytes moved so far in `dir`) at or past which the
    /// fault fires.
    pub at_byte: u64,
    /// What happens.
    pub kind: SocketFaultKind,
}

/// Knobs for [`SocketFaultSchedule::seeded`]: per-connection probabilities
/// and ranges from which a deterministic schedule is drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocketChaosProfile {
    /// Probability this connection gets a hard reset.
    pub reset_prob: f64,
    /// Probability this connection gets short reads/writes sprinkled in.
    pub short_prob: f64,
    /// How many short ops to inject when drawn.
    pub shorts: usize,
    /// Probability this connection gets a stall.
    pub stall_prob: f64,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
    /// Fault byte offsets are drawn uniformly from `[0, window)`.
    pub window: u64,
    /// Independent draw rounds, one per consecutive `window` of bytes:
    /// round `r` places its faults in `[r*window, (r+1)*window)`. With 1
    /// (the default) the probabilities are per-connection; raising it
    /// makes them per-window-of-traffic, which keeps fault pressure on
    /// long-lived pooled connections instead of only testing their first
    /// few frames.
    pub repeats: usize,
}

impl Default for SocketChaosProfile {
    fn default() -> Self {
        SocketChaosProfile {
            reset_prob: 0.0,
            short_prob: 0.0,
            shorts: 4,
            stall_prob: 0.0,
            stall_ms: 1,
            window: 256,
            repeats: 1,
        }
    }
}

impl SocketChaosProfile {
    /// A profile that only injects connection resets.
    pub fn resets(prob: f64, window: u64) -> Self {
        SocketChaosProfile {
            reset_prob: prob,
            window,
            ..Default::default()
        }
    }

    /// A profile that only injects short reads/writes.
    pub fn short_ops(prob: f64, shorts: usize, window: u64) -> Self {
        SocketChaosProfile {
            short_prob: prob,
            shorts,
            window,
            ..Default::default()
        }
    }

    /// A profile that only injects stalls.
    pub fn stalls(prob: f64, stall_ms: u64, window: u64) -> Self {
        SocketChaosProfile {
            stall_prob: prob,
            stall_ms,
            window,
            ..Default::default()
        }
    }

    /// Re-draw the profile once per consecutive `window` of bytes for
    /// `repeats` windows (probabilities become per-window-of-traffic).
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }
}

/// Declarative per-connection stream-fault plan, byte-offset ordered within
/// each direction. Built explicitly (builder style, like [`FaultSchedule`])
/// or drawn deterministically from a seed + [`SocketChaosProfile`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SocketFaultSchedule {
    faults: Vec<SocketFault>,
}

impl SocketFaultSchedule {
    /// Empty schedule (a perfectly healthy connection).
    pub fn new() -> Self {
        SocketFaultSchedule::default()
    }

    /// Cap the read that crosses offset `at_byte` to `cap` bytes.
    pub fn short_read(mut self, at_byte: u64, cap: usize) -> Self {
        self.faults.push(SocketFault {
            dir: SocketDir::Read,
            at_byte,
            kind: SocketFaultKind::ShortOp { cap: cap.max(1) },
        });
        self
    }

    /// Cap the write that crosses offset `at_byte` to `cap` bytes.
    pub fn short_write(mut self, at_byte: u64, cap: usize) -> Self {
        self.faults.push(SocketFault {
            dir: SocketDir::Write,
            at_byte,
            kind: SocketFaultKind::ShortOp { cap: cap.max(1) },
        });
        self
    }

    /// Stall the read that crosses offset `at_byte` by `for_ms` ms.
    pub fn stall_read(mut self, at_byte: u64, for_ms: u64) -> Self {
        self.faults.push(SocketFault {
            dir: SocketDir::Read,
            at_byte,
            kind: SocketFaultKind::Stall { for_ms },
        });
        self
    }

    /// Stall the write that crosses offset `at_byte` by `for_ms` ms.
    pub fn stall_write(mut self, at_byte: u64, for_ms: u64) -> Self {
        self.faults.push(SocketFault {
            dir: SocketDir::Write,
            at_byte,
            kind: SocketFaultKind::Stall { for_ms },
        });
        self
    }

    /// Hard-reset the connection once `dir`'s cursor reaches `at_byte`.
    pub fn reset_at(mut self, dir: SocketDir, at_byte: u64) -> Self {
        self.faults.push(SocketFault {
            dir,
            at_byte,
            kind: SocketFaultKind::Reset,
        });
        self
    }

    /// Draw a schedule from `seed` and `profile`. The same `(seed,
    /// profile)` always yields the same schedule — chaos tests replay
    /// byte-identically across runs and machines.
    pub fn seeded(seed: u64, profile: &SocketChaosProfile) -> Self {
        let mut rng = parblast_simcore::SimRng::new(seed);
        let mut s = SocketFaultSchedule::new();
        let window = profile.window.max(1);
        for round in 0..profile.repeats.max(1) as u64 {
            let base = round * window;
            if profile.short_prob > 0.0 && rng.chance(profile.short_prob) {
                for _ in 0..profile.shorts {
                    let at = base + rng.below(window);
                    let cap = 1 + rng.below(4) as usize;
                    s = if rng.chance(0.5) {
                        s.short_read(at, cap)
                    } else {
                        s.short_write(at, cap)
                    };
                }
            }
            if profile.stall_prob > 0.0 && rng.chance(profile.stall_prob) {
                let at = base + rng.below(window);
                s = if rng.chance(0.5) {
                    s.stall_read(at, profile.stall_ms)
                } else {
                    s.stall_write(at, profile.stall_ms)
                };
            }
            if profile.reset_prob > 0.0 && rng.chance(profile.reset_prob) {
                let dir = if rng.chance(0.5) {
                    SocketDir::Read
                } else {
                    SocketDir::Write
                };
                s = s.reset_at(dir, base + rng.below(window));
                // The connection dies here; later rounds can never fire.
                break;
            }
        }
        s
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[SocketFault] {
        &self.faults
    }

    /// The faults for one direction, sorted by byte offset (stable — ties
    /// keep insertion order).
    pub fn for_dir(&self, dir: SocketDir) -> Vec<SocketFault> {
        let mut v: Vec<SocketFault> = self
            .faults
            .iter()
            .filter(|f| f.dir == dir)
            .copied()
            .collect();
        v.sort_by_key(|f| f.at_byte);
        v
    }

    /// FNV-1a digest over the schedule contents; equal schedules hash
    /// equal, so determinism tests can pin a seed's plan with one number.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for f in &self.faults {
            mix(match f.dir {
                SocketDir::Read => 0,
                SocketDir::Write => 1,
            });
            mix(f.at_byte);
            match f.kind {
                SocketFaultKind::ShortOp { cap } => {
                    mix(2);
                    mix(cap as u64);
                }
                SocketFaultKind::Stall { for_ms } => {
                    mix(3);
                    mix(for_ms);
                }
                SocketFaultKind::Reset => mix(4),
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DiskDone, DiskOp, DiskReq, NetSend};
    use crate::params::{DiskParams, NetParams, MIB};
    use crate::{Disk, Network};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink {
        done: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }
    impl Component<Ev> for Sink {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::DiskDone(DiskDone { tag, .. }) => {
                    self.done.borrow_mut().push((ctx.now(), tag));
                }
                Ev::User(_) => {
                    self.done.borrow_mut().push((ctx.now(), 0));
                }
                _ => {}
            }
        }
    }

    fn disk_req(pos: u64, reply_to: CompId, tag: u64) -> DiskReq {
        DiskReq {
            op: DiskOp::Read,
            pos,
            len: MIB,
            reply_to,
            tag,
        }
    }

    #[test]
    fn failed_disk_swallows_requests_until_repair() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let plan = FaultSchedule::new()
            .fail_disk(SimTime::from_secs(1), 0)
            .repair_disk(SimTime::from_secs(5), 0);
        let mut inj = FaultInjector::new(plan);
        inj.register_disk(0, disk);
        inj.install(&mut eng);
        // One request before the failure (completes), one during (lost),
        // one after repair (completes).
        eng.schedule(SimTime::ZERO, disk, Ev::Disk(disk_req(0, sink, 1)));
        eng.schedule(
            SimTime::from_secs(2),
            disk,
            Ev::Disk(disk_req(1 << 30, sink, 2)),
        );
        eng.schedule(
            SimTime::from_secs(6),
            disk,
            Ev::Disk(disk_req(2 << 30, sink, 3)),
        );
        eng.run();
        let tags: Vec<u64> = done.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 3]);
        let d = eng.component::<Disk>(disk);
        assert!(!d.is_failed());
        assert_eq!(d.dropped_requests(), 1);
    }

    #[test]
    fn disk_failure_voids_in_flight_request() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        // 64 MiB at 26 MB/s ≈ 2.5 s service; fail at 1 s, mid-service.
        let plan = FaultSchedule::new().fail_disk(SimTime::from_secs(1), 0);
        let mut inj = FaultInjector::new(plan);
        inj.register_disk(0, disk);
        inj.install(&mut eng);
        eng.schedule(
            SimTime::ZERO,
            disk,
            Ev::Disk(DiskReq {
                op: DiskOp::Read,
                pos: 0,
                len: 64 * MIB,
                reply_to: sink,
                tag: 9,
            }),
        );
        eng.run();
        assert!(done.borrow().is_empty(), "voided request must not complete");
        assert_eq!(eng.component::<Disk>(disk).dropped_requests(), 1);
    }

    #[test]
    fn stalled_disk_delays_service() {
        let service = |eng: &mut Engine<Ev>, stall: Option<SimTime>| {
            let done = Rc::new(RefCell::new(vec![]));
            let sink = eng.add(Sink { done: done.clone() });
            let disk = eng.add(Disk::new("d0", DiskParams::default()));
            if let Some(for_) = stall {
                let plan = FaultSchedule::new().stall_disk(SimTime::ZERO, 0, for_);
                let mut inj = FaultInjector::new(plan);
                inj.register_disk(0, disk);
                inj.install(eng);
            }
            eng.schedule(SimTime::ZERO, disk, Ev::Disk(disk_req(0, sink, 1)));
            eng.run();
            let t = done.borrow()[0].0;
            t
        };
        let clean = service(&mut Engine::new(0), None);
        let stalled = service(&mut Engine::new(0), Some(SimTime::from_secs(3)));
        let extra = stalled.saturating_sub(clean).as_secs_f64();
        assert!((extra - 3.0).abs() < 0.01, "stall added {extra} s");
    }

    #[test]
    fn net_rules_drop_and_expire() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        let net = eng.add(Network::new("net", 2, vec![], NetParams::default()));
        let plan =
            FaultSchedule::new().drop_messages(SimTime::ZERO, Some(0), None, SimTime::from_secs(2));
        let mut inj = FaultInjector::new(plan);
        inj.register_net(net);
        inj.install(&mut eng);
        let send = |eng: &mut Engine<Ev>, at: SimTime, src: u32| {
            eng.schedule(
                at,
                net,
                Ev::Net(NetSend {
                    src_node: src,
                    dst_node: 1,
                    bytes: 1024,
                    dst: sink,
                    payload: Box::new(42u32),
                }),
            );
        };
        send(&mut eng, SimTime::from_secs(1), 0); // dropped (rule active)
        send(&mut eng, SimTime::from_secs(1), 1); // delivered (src filter)
        send(&mut eng, SimTime::from_secs(3), 0); // delivered (rule expired)
        eng.run();
        assert_eq!(done.borrow().len(), 2);
        assert_eq!(eng.component::<Network>(net).dropped(), 1);
    }

    #[test]
    fn net_delay_slows_matched_messages() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        let net = eng.add(Network::new("net", 2, vec![], NetParams::default()));
        let plan = FaultSchedule::new().delay_messages(
            SimTime::ZERO,
            None,
            Some(1),
            SimTime::from_secs(2),
            SimTime::from_secs(100),
        );
        let mut inj = FaultInjector::new(plan);
        inj.register_net(net);
        inj.install(&mut eng);
        eng.schedule(
            SimTime::from_secs(1),
            net,
            Ev::Net(NetSend {
                src_node: 0,
                dst_node: 1,
                bytes: 1024,
                dst: sink,
                payload: Box::new(42u32),
            }),
        );
        eng.run();
        let t = done.borrow()[0].0.as_secs_f64();
        assert!(t > 3.0 && t < 3.1, "delayed delivery at {t}");
        assert_eq!(eng.component::<Network>(net).delayed(), 1);
    }

    #[test]
    fn crash_disables_and_revive_resets() {
        struct Echo {
            got: Rc<RefCell<Vec<SimTime>>>,
            resets: Rc<RefCell<u32>>,
        }
        impl Component<Ev> for Echo {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                match ev {
                    Ev::Fault(FaultCmd::Reset) => *self.resets.borrow_mut() += 1,
                    _ => self.got.borrow_mut().push(ctx.now()),
                }
            }
        }
        let mut eng: Engine<Ev> = Engine::new(0);
        let got = Rc::new(RefCell::new(vec![]));
        let resets = Rc::new(RefCell::new(0));
        let echo = eng.add(Echo {
            got: got.clone(),
            resets: resets.clone(),
        });
        let plan = FaultSchedule::new()
            .crash_server(SimTime::from_secs(1), 7)
            .revive_server(SimTime::from_secs(3), 7);
        let mut inj = FaultInjector::new(plan);
        inj.register_server(7, vec![echo]);
        inj.install(&mut eng);
        for s in [0u64, 2, 4] {
            eng.schedule(SimTime::from_secs(s), echo, Ev::Timer(s));
        }
        eng.run();
        // t=2 lands in the crash window and is dropped by the engine.
        let times: Vec<u64> = got
            .borrow()
            .iter()
            .map(|t| t.as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(times, vec![0, 4]);
        assert_eq!(*resets.borrow(), 1);
        assert_eq!(eng.events_dropped(), 1);
    }

    #[test]
    fn socket_schedule_builder_sorts_per_direction() {
        let s = SocketFaultSchedule::new()
            .short_read(100, 2)
            .short_read(10, 1)
            .stall_write(50, 5)
            .reset_at(SocketDir::Write, 20);
        assert_eq!(s.faults().len(), 4);
        let reads = s.for_dir(SocketDir::Read);
        assert_eq!(
            reads.iter().map(|f| f.at_byte).collect::<Vec<_>>(),
            vec![10, 100]
        );
        let writes = s.for_dir(SocketDir::Write);
        assert_eq!(
            writes.iter().map(|f| f.at_byte).collect::<Vec<_>>(),
            vec![20, 50]
        );
    }

    #[test]
    fn socket_schedule_repeats_draw_per_window() {
        let p = SocketChaosProfile::short_ops(1.0, 2, 100).with_repeats(3);
        let s = SocketFaultSchedule::seeded(9, &p);
        // Two shorts per round, three rounds, each inside its own window.
        assert_eq!(s.faults().len(), 6);
        for (i, f) in s.faults().iter().enumerate() {
            let round = (i / 2) as u64;
            assert!(
                f.at_byte >= round * 100 && f.at_byte < (round + 1) * 100,
                "fault {i} at {} escaped round {round}'s window",
                f.at_byte
            );
        }
        // A reset kills the connection, so no later round ever draws.
        let p = SocketChaosProfile::resets(1.0, 100).with_repeats(5);
        let s = SocketFaultSchedule::seeded(9, &p);
        assert_eq!(s.faults().len(), 1);
        assert!(s.faults()[0].at_byte < 100);
    }

    #[test]
    fn socket_schedule_seeded_is_deterministic() {
        let p = SocketChaosProfile {
            reset_prob: 0.7,
            short_prob: 0.7,
            shorts: 3,
            stall_prob: 0.7,
            stall_ms: 2,
            window: 512,
            repeats: 1,
        };
        for seed in [0u64, 42, 1003, u64::MAX] {
            let a = SocketFaultSchedule::seeded(seed, &p);
            let b = SocketFaultSchedule::seeded(seed, &p);
            assert_eq!(a, b);
            assert_eq!(a.digest(), b.digest());
        }
        // Different seeds should (at these probabilities) disagree for at
        // least one of a handful of draws.
        let base = SocketFaultSchedule::seeded(1, &p).digest();
        assert!(
            (2..20).any(|s| SocketFaultSchedule::seeded(s, &p).digest() != base),
            "every seed produced the same schedule"
        );
    }

    #[test]
    fn socket_schedule_zero_prob_is_empty() {
        let p = SocketChaosProfile::default();
        assert_eq!(
            SocketFaultSchedule::seeded(9, &p),
            SocketFaultSchedule::new()
        );
    }

    #[test]
    fn socket_short_cap_is_clamped_to_one() {
        let s = SocketFaultSchedule::new().short_read(0, 0);
        match s.faults()[0].kind {
            SocketFaultKind::ShortOp { cap } => assert_eq!(cap, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
