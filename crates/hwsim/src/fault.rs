//! Deterministic fault injection.
//!
//! A [`FaultSchedule`] is a declarative list of `(time, fault)` pairs built
//! up-front; a [`FaultInjector`] component replays it inside the engine's
//! event queue. Because every fault is applied by an ordinary event at a
//! precise simulation time, two runs with the same schedule and engine seed
//! produce bit-identical traces — there is no out-of-band mutation.
//!
//! Fault classes:
//!
//! * **Server crash/revive** — every component registered for the server is
//!   atomically disabled in the engine (its pending and future events are
//!   dropped, exactly like a powered-off node); revival re-enables them and
//!   sends [`FaultCmd::Reset`] so daemons discard pre-crash state.
//! * **Disk stall/fail/repair** — delivered to the node's [`crate::Disk`]
//!   as [`FaultCmd`]s: a stall freezes the head for a duration, a failure
//!   swallows requests without completions until repaired.
//! * **Network drop/delay** — installs a [`NetFaultRule`] on the
//!   [`crate::Network`], matching messages by `(src, dst)` until a
//!   deadline.

use std::collections::HashMap;

use parblast_simcore::{CompId, Component, Ctx, Engine, SimTime};

use crate::event::{Ev, FaultCmd, NetFaultMode, NetFaultRule};

/// One injectable fault.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Disable every component registered for `server` (see
    /// [`FaultInjector::register_server`]).
    ServerCrash {
        /// Server identifier used at registration.
        server: usize,
    },
    /// Re-enable `server`'s components and send each a [`FaultCmd::Reset`].
    ServerRevive {
        /// Server identifier used at registration.
        server: usize,
    },
    /// Freeze `node`'s disk head for `for_`.
    DiskStall {
        /// Node whose disk stalls.
        node: u32,
        /// Stall duration.
        for_: SimTime,
    },
    /// Hard-fail `node`'s disk: requests vanish until repaired.
    DiskFail {
        /// Node whose disk fails.
        node: u32,
    },
    /// Repair `node`'s disk.
    DiskRepair {
        /// Node whose disk recovers.
        node: u32,
    },
    /// Drop every matching `src → dst` message until `until`.
    NetDrop {
        /// Source filter (`None` = any).
        src: Option<u32>,
        /// Destination filter (`None` = any).
        dst: Option<u32>,
        /// Rule expiry time.
        until: SimTime,
    },
    /// Silently flip bits in one stripe of `file` on `server`'s local disk
    /// (delivered to the server's storage daemon as
    /// [`FaultCmd::CorruptStripe`]). The daemon keeps serving the stripe —
    /// only checksum verification can notice.
    CorruptStripe {
        /// Server identifier used at registration.
        server: usize,
        /// Daemon-local file identifier.
        file: u64,
        /// Stripe index within the daemon's local portion of the file.
        stripe: u64,
    },
    /// Delay every matching `src → dst` message by `delay` until `until`.
    NetDelay {
        /// Source filter (`None` = any).
        src: Option<u32>,
        /// Destination filter (`None` = any).
        dst: Option<u32>,
        /// Extra latency added to matched messages.
        delay: SimTime,
        /// Rule expiry time.
        until: SimTime,
    },
}

/// A fault bound to its injection time.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Simulation time at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub fault: Fault,
}

/// Declarative, time-ordered fault plan (builder style).
///
/// ```
/// use parblast_hwsim::FaultSchedule;
/// use parblast_simcore::SimTime;
///
/// let plan = FaultSchedule::new()
///     .crash_server(SimTime::from_secs(30), 2)
///     .revive_server(SimTime::from_secs(90), 2)
///     .fail_disk(SimTime::from_secs(10), 5);
/// assert_eq!(plan.events().len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Append an arbitrary fault event.
    pub fn push(mut self, at: SimTime, fault: Fault) -> Self {
        self.events.push(FaultEvent { at, fault });
        self
    }

    /// Crash `server` at `at`.
    pub fn crash_server(self, at: SimTime, server: usize) -> Self {
        self.push(at, Fault::ServerCrash { server })
    }

    /// Revive `server` at `at`.
    pub fn revive_server(self, at: SimTime, server: usize) -> Self {
        self.push(at, Fault::ServerRevive { server })
    }

    /// Stall `node`'s disk for `for_` starting at `at`.
    pub fn stall_disk(self, at: SimTime, node: u32, for_: SimTime) -> Self {
        self.push(at, Fault::DiskStall { node, for_ })
    }

    /// Hard-fail `node`'s disk at `at`.
    pub fn fail_disk(self, at: SimTime, node: u32) -> Self {
        self.push(at, Fault::DiskFail { node })
    }

    /// Repair `node`'s disk at `at`.
    pub fn repair_disk(self, at: SimTime, node: u32) -> Self {
        self.push(at, Fault::DiskRepair { node })
    }

    /// Silently corrupt `stripe` of `file` on `server` at `at`.
    pub fn corrupt_stripe(self, at: SimTime, server: usize, file: u64, stripe: u64) -> Self {
        self.push(
            at,
            Fault::CorruptStripe {
                server,
                file,
                stripe,
            },
        )
    }

    /// Drop `src → dst` messages from `at` until `until`.
    pub fn drop_messages(
        self,
        at: SimTime,
        src: Option<u32>,
        dst: Option<u32>,
        until: SimTime,
    ) -> Self {
        self.push(at, Fault::NetDrop { src, dst, until })
    }

    /// Delay `src → dst` messages by `delay` from `at` until `until`.
    pub fn delay_messages(
        self,
        at: SimTime,
        src: Option<u32>,
        dst: Option<u32>,
        delay: SimTime,
        until: SimTime,
    ) -> Self {
        self.push(
            at,
            Fault::NetDelay {
                src,
                dst,
                delay,
                until,
            },
        )
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// No faults scheduled?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Component that replays a [`FaultSchedule`].
///
/// Build it, register the targets (servers, disks, the network), then
/// [`install`](FaultInjector::install) it into the engine. Targets are
/// registered by the simulation builder, which knows the component ids;
/// the schedule itself stays purely declarative.
pub struct FaultInjector {
    /// Events sorted by time (stable, so same-time faults keep insertion
    /// order).
    schedule: Vec<FaultEvent>,
    next: usize,
    servers: HashMap<usize, Vec<CompId>>,
    disks: HashMap<u32, CompId>,
    net: Option<CompId>,
    injected: u64,
    name: String,
}

impl FaultInjector {
    /// New injector for `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        let mut events = schedule.events;
        events.sort_by_key(|e| e.at);
        FaultInjector {
            schedule: events,
            next: 0,
            servers: HashMap::new(),
            disks: HashMap::new(),
            net: None,
            injected: 0,
            name: "fault-injector".into(),
        }
    }

    /// Register the components that make up data server `server` (its iod
    /// or CEFT daemon, load monitor, …). Crashing the server disables all
    /// of them; reviving re-enables and resets them.
    pub fn register_server(&mut self, server: usize, comps: Vec<CompId>) {
        self.servers.entry(server).or_default().extend(comps);
    }

    /// Register `node`'s disk component.
    pub fn register_disk(&mut self, node: u32, disk: CompId) {
        self.disks.insert(node, disk);
    }

    /// Register the network component.
    pub fn register_net(&mut self, net: CompId) {
        self.net = Some(net);
    }

    /// Faults applied so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Add the injector to `eng` and arm its first timer. Returns the
    /// injector's component id (useful for inspection after the run).
    pub fn install(self, eng: &mut Engine<Ev>) -> CompId {
        let first = self.schedule.first().map(|e| e.at);
        let id = eng.add(self);
        if let Some(at) = first {
            eng.schedule(at, id, Ev::Timer(0));
        }
        id
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, Ev>, fault: Fault) {
        self.injected += 1;
        match fault {
            Fault::ServerCrash { server } => {
                for &comp in self.servers.get(&server).into_iter().flatten() {
                    ctx.set_component_enabled(comp, false);
                }
            }
            Fault::ServerRevive { server } => {
                let comps = self.servers.get(&server).cloned().unwrap_or_default();
                for comp in comps {
                    ctx.set_component_enabled(comp, true);
                    ctx.send(comp, Ev::Fault(FaultCmd::Reset));
                }
            }
            Fault::DiskStall { node, for_ } => {
                if let Some(&disk) = self.disks.get(&node) {
                    ctx.send(disk, Ev::Fault(FaultCmd::DiskStall { for_ }));
                }
            }
            Fault::DiskFail { node } => {
                if let Some(&disk) = self.disks.get(&node) {
                    ctx.send(disk, Ev::Fault(FaultCmd::DiskFail));
                }
            }
            Fault::DiskRepair { node } => {
                if let Some(&disk) = self.disks.get(&node) {
                    ctx.send(disk, Ev::Fault(FaultCmd::DiskRepair));
                }
            }
            Fault::CorruptStripe {
                server,
                file,
                stripe,
            } => {
                // Delivered to every component of the server; non-storage
                // components (load monitors, …) ignore the command.
                for &comp in self.servers.get(&server).into_iter().flatten() {
                    ctx.send(comp, Ev::Fault(FaultCmd::CorruptStripe { file, stripe }));
                }
            }
            Fault::NetDrop { src, dst, until } => {
                if let Some(net) = self.net {
                    ctx.send(
                        net,
                        Ev::Fault(FaultCmd::NetRule(NetFaultRule {
                            src,
                            dst,
                            until,
                            mode: NetFaultMode::Drop,
                        })),
                    );
                }
            }
            Fault::NetDelay {
                src,
                dst,
                delay,
                until,
            } => {
                if let Some(net) = self.net {
                    ctx.send(
                        net,
                        Ev::Fault(FaultCmd::NetRule(NetFaultRule {
                            src,
                            dst,
                            until,
                            mode: NetFaultMode::Delay(delay),
                        })),
                    );
                }
            }
        }
    }
}

impl Component<Ev> for FaultInjector {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, _ev: Ev) {
        // Apply every fault due now, then re-arm for the next one.
        while self.next < self.schedule.len() && self.schedule[self.next].at <= ctx.now() {
            let fault = self.schedule[self.next].fault.clone();
            self.next += 1;
            self.apply(ctx, fault);
        }
        if let Some(e) = self.schedule.get(self.next) {
            let wait = e.at.saturating_sub(ctx.now());
            ctx.wake_in(wait, Ev::Timer(0));
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DiskDone, DiskOp, DiskReq, NetSend};
    use crate::params::{DiskParams, NetParams, MIB};
    use crate::{Disk, Network};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink {
        done: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }
    impl Component<Ev> for Sink {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::DiskDone(DiskDone { tag, .. }) => {
                    self.done.borrow_mut().push((ctx.now(), tag));
                }
                Ev::User(_) => {
                    self.done.borrow_mut().push((ctx.now(), 0));
                }
                _ => {}
            }
        }
    }

    fn disk_req(pos: u64, reply_to: CompId, tag: u64) -> DiskReq {
        DiskReq {
            op: DiskOp::Read,
            pos,
            len: MIB,
            reply_to,
            tag,
        }
    }

    #[test]
    fn failed_disk_swallows_requests_until_repair() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let plan = FaultSchedule::new()
            .fail_disk(SimTime::from_secs(1), 0)
            .repair_disk(SimTime::from_secs(5), 0);
        let mut inj = FaultInjector::new(plan);
        inj.register_disk(0, disk);
        inj.install(&mut eng);
        // One request before the failure (completes), one during (lost),
        // one after repair (completes).
        eng.schedule(SimTime::ZERO, disk, Ev::Disk(disk_req(0, sink, 1)));
        eng.schedule(
            SimTime::from_secs(2),
            disk,
            Ev::Disk(disk_req(1 << 30, sink, 2)),
        );
        eng.schedule(
            SimTime::from_secs(6),
            disk,
            Ev::Disk(disk_req(2 << 30, sink, 3)),
        );
        eng.run();
        let tags: Vec<u64> = done.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 3]);
        let d = eng.component::<Disk>(disk);
        assert!(!d.is_failed());
        assert_eq!(d.dropped_requests(), 1);
    }

    #[test]
    fn disk_failure_voids_in_flight_request() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        // 64 MiB at 26 MB/s ≈ 2.5 s service; fail at 1 s, mid-service.
        let plan = FaultSchedule::new().fail_disk(SimTime::from_secs(1), 0);
        let mut inj = FaultInjector::new(plan);
        inj.register_disk(0, disk);
        inj.install(&mut eng);
        eng.schedule(
            SimTime::ZERO,
            disk,
            Ev::Disk(DiskReq {
                op: DiskOp::Read,
                pos: 0,
                len: 64 * MIB,
                reply_to: sink,
                tag: 9,
            }),
        );
        eng.run();
        assert!(done.borrow().is_empty(), "voided request must not complete");
        assert_eq!(eng.component::<Disk>(disk).dropped_requests(), 1);
    }

    #[test]
    fn stalled_disk_delays_service() {
        let service = |eng: &mut Engine<Ev>, stall: Option<SimTime>| {
            let done = Rc::new(RefCell::new(vec![]));
            let sink = eng.add(Sink { done: done.clone() });
            let disk = eng.add(Disk::new("d0", DiskParams::default()));
            if let Some(for_) = stall {
                let plan = FaultSchedule::new().stall_disk(SimTime::ZERO, 0, for_);
                let mut inj = FaultInjector::new(plan);
                inj.register_disk(0, disk);
                inj.install(eng);
            }
            eng.schedule(SimTime::ZERO, disk, Ev::Disk(disk_req(0, sink, 1)));
            eng.run();
            let t = done.borrow()[0].0;
            t
        };
        let clean = service(&mut Engine::new(0), None);
        let stalled = service(&mut Engine::new(0), Some(SimTime::from_secs(3)));
        let extra = stalled.saturating_sub(clean).as_secs_f64();
        assert!((extra - 3.0).abs() < 0.01, "stall added {extra} s");
    }

    #[test]
    fn net_rules_drop_and_expire() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        let net = eng.add(Network::new("net", 2, vec![], NetParams::default()));
        let plan =
            FaultSchedule::new().drop_messages(SimTime::ZERO, Some(0), None, SimTime::from_secs(2));
        let mut inj = FaultInjector::new(plan);
        inj.register_net(net);
        inj.install(&mut eng);
        let send = |eng: &mut Engine<Ev>, at: SimTime, src: u32| {
            eng.schedule(
                at,
                net,
                Ev::Net(NetSend {
                    src_node: src,
                    dst_node: 1,
                    bytes: 1024,
                    dst: sink,
                    payload: Box::new(42u32),
                }),
            );
        };
        send(&mut eng, SimTime::from_secs(1), 0); // dropped (rule active)
        send(&mut eng, SimTime::from_secs(1), 1); // delivered (src filter)
        send(&mut eng, SimTime::from_secs(3), 0); // delivered (rule expired)
        eng.run();
        assert_eq!(done.borrow().len(), 2);
        assert_eq!(eng.component::<Network>(net).dropped(), 1);
    }

    #[test]
    fn net_delay_slows_matched_messages() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        let net = eng.add(Network::new("net", 2, vec![], NetParams::default()));
        let plan = FaultSchedule::new().delay_messages(
            SimTime::ZERO,
            None,
            Some(1),
            SimTime::from_secs(2),
            SimTime::from_secs(100),
        );
        let mut inj = FaultInjector::new(plan);
        inj.register_net(net);
        inj.install(&mut eng);
        eng.schedule(
            SimTime::from_secs(1),
            net,
            Ev::Net(NetSend {
                src_node: 0,
                dst_node: 1,
                bytes: 1024,
                dst: sink,
                payload: Box::new(42u32),
            }),
        );
        eng.run();
        let t = done.borrow()[0].0.as_secs_f64();
        assert!(t > 3.0 && t < 3.1, "delayed delivery at {t}");
        assert_eq!(eng.component::<Network>(net).delayed(), 1);
    }

    #[test]
    fn crash_disables_and_revive_resets() {
        struct Echo {
            got: Rc<RefCell<Vec<SimTime>>>,
            resets: Rc<RefCell<u32>>,
        }
        impl Component<Ev> for Echo {
            fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                match ev {
                    Ev::Fault(FaultCmd::Reset) => *self.resets.borrow_mut() += 1,
                    _ => self.got.borrow_mut().push(ctx.now()),
                }
            }
        }
        let mut eng: Engine<Ev> = Engine::new(0);
        let got = Rc::new(RefCell::new(vec![]));
        let resets = Rc::new(RefCell::new(0));
        let echo = eng.add(Echo {
            got: got.clone(),
            resets: resets.clone(),
        });
        let plan = FaultSchedule::new()
            .crash_server(SimTime::from_secs(1), 7)
            .revive_server(SimTime::from_secs(3), 7);
        let mut inj = FaultInjector::new(plan);
        inj.register_server(7, vec![echo]);
        inj.install(&mut eng);
        for s in [0u64, 2, 4] {
            eng.schedule(SimTime::from_secs(s), echo, Ev::Timer(s));
        }
        eng.run();
        // t=2 lands in the crash window and is dropped by the engine.
        let times: Vec<u64> = got
            .borrow()
            .iter()
            .map(|t| t.as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(times, vec![0, 4]);
        assert_eq!(*resets.borrow(), 1);
        assert_eq!(eng.events_dropped(), 1);
    }
}
