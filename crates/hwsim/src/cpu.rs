//! Node CPU model: generalized processor sharing over the node's CPUs.
//!
//! Jobs (`CpuMsg::Run`) represent application compute — one BLAST chunk
//! scan, TCP stack work, etc. A job uses at most one CPU; with more jobs
//! than CPUs everybody slows down proportionally, which is how resource
//! contention between the file-system server role and the worker role of a
//! shared node manifests (§4.5 of the paper).

use std::collections::HashMap;

use parblast_simcore::{CompId, Component, Ctx, PsJobId, PsResource, SimTime};

use crate::event::{CpuDone, CpuMsg, Ev};

/// Simulated node CPU set.
pub struct Cpu {
    ps: PsResource,
    pending: HashMap<PsJobId, (CompId, u64)>,
    generation: u64,
    start: SimTime,
    injected: f64,
    name: String,
}

impl Cpu {
    /// New CPU resource with `cpus` processors.
    pub fn new(name: impl Into<String>, cpus: f64) -> Self {
        Cpu {
            ps: PsResource::new(SimTime::ZERO, cpus),
            pending: HashMap::new(),
            generation: 0,
            start: SimTime::ZERO,
            injected: 0.0,
            name: name.into(),
        }
    }

    fn reschedule(&mut self, ctx: &mut Ctx<'_, Ev>) {
        self.generation += 1;
        if let Some(at) = self.ps.next_completion(ctx.now()) {
            let generation = self.generation;
            // Never schedule a wake at the current instant: rounding can
            // make next_completion() == now while advance() needs a strictly
            // positive step to retire the job.
            let at = at.max(ctx.now().saturating_add(SimTime::from_nanos(1)));
            ctx.schedule_at(at, ctx.self_id(), Ev::Cpu(CpuMsg::Wake { generation }));
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, Ev>) {
        for id in self.ps.advance(ctx.now()) {
            if let Some((reply_to, tag)) = self.pending.remove(&id) {
                ctx.send(reply_to, Ev::CpuDone(CpuDone { tag }));
            }
        }
    }

    /// Jobs currently running (including injected background work).
    pub fn active(&self) -> usize {
        self.ps.active()
    }

    /// Time-averaged load (jobs) since start.
    pub fn average_load(&self, now: SimTime) -> f64 {
        self.ps.average_load(now)
    }

    /// Total background CPU-seconds injected (e.g. TCP processing).
    pub fn injected_work(&self) -> f64 {
        self.injected
    }

    /// Simulation start time for utilization windows.
    pub fn start_time(&self) -> SimTime {
        self.start
    }
}

impl Component<Ev> for Cpu {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let Ev::Cpu(msg) = ev else {
            debug_assert!(false, "cpu received non-cpu event");
            return;
        };
        match msg {
            CpuMsg::Run {
                work,
                reply_to,
                tag,
            } => {
                self.drain(ctx);
                if work <= 0.0 {
                    ctx.send(reply_to, Ev::CpuDone(CpuDone { tag }));
                } else {
                    let id = self.ps.add(ctx.now(), work);
                    self.pending.insert(id, (reply_to, tag));
                }
                self.reschedule(ctx);
            }
            CpuMsg::Inject { work } => {
                if work > 0.0 {
                    self.drain(ctx);
                    let id = self.ps.add(ctx.now(), work);
                    // Background work: completion is tracked but unreported.
                    self.pending.insert(id, (CompId::NONE, 0));
                    self.injected += work;
                    self.reschedule(ctx);
                }
            }
            CpuMsg::Wake { generation } => {
                if generation != self.generation {
                    return; // stale wake-up
                }
                self.drain(ctx);
                self.reschedule(ctx);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_simcore::Engine;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink {
        done: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }
    impl Component<Ev> for Sink {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            if let Ev::CpuDone(CpuDone { tag }) = ev {
                self.done.borrow_mut().push((ctx.now(), tag));
            }
        }
    }

    #[test]
    fn single_job_takes_its_work_time() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let cpu = eng.add(Cpu::new("cpu0", 2.0));
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        eng.schedule(
            SimTime::ZERO,
            cpu,
            Ev::Cpu(CpuMsg::Run {
                work: 5.0,
                reply_to: sink,
                tag: 7,
            }),
        );
        eng.run();
        let v = done.borrow();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 7);
        assert!((v[0].0.as_secs_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn two_jobs_fit_two_cpus_without_slowdown() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let cpu = eng.add(Cpu::new("cpu0", 2.0));
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        for tag in 0..2 {
            eng.schedule(
                SimTime::ZERO,
                cpu,
                Ev::Cpu(CpuMsg::Run {
                    work: 3.0,
                    reply_to: sink,
                    tag,
                }),
            );
        }
        eng.run();
        for &(t, _) in done.borrow().iter() {
            assert!((t.as_secs_f64() - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn four_jobs_on_two_cpus_halve_speed() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let cpu = eng.add(Cpu::new("cpu0", 2.0));
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        for tag in 0..4 {
            eng.schedule(
                SimTime::ZERO,
                cpu,
                Ev::Cpu(CpuMsg::Run {
                    work: 3.0,
                    reply_to: sink,
                    tag,
                }),
            );
        }
        eng.run();
        for &(t, _) in done.borrow().iter() {
            assert!((t.as_secs_f64() - 6.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn injected_work_slows_foreground_job() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let cpu = eng.add(Cpu::new("cpu0", 1.0));
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        eng.schedule(SimTime::ZERO, cpu, Ev::Cpu(CpuMsg::Inject { work: 2.0 }));
        eng.schedule(
            SimTime::ZERO,
            cpu,
            Ev::Cpu(CpuMsg::Run {
                work: 2.0,
                reply_to: sink,
                tag: 1,
            }),
        );
        eng.run();
        // Both share one CPU at rate 1/2 → foreground finishes at t = 4.
        let v = done.borrow();
        assert!((v[0].0.as_secs_f64() - 4.0).abs() < 1e-6, "t={}", v[0].0);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let cpu = eng.add(Cpu::new("cpu0", 2.0));
        let done = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { done: done.clone() });
        eng.schedule(
            SimTime::from_secs(1),
            cpu,
            Ev::Cpu(CpuMsg::Run {
                work: 0.0,
                reply_to: sink,
                tag: 9,
            }),
        );
        eng.run();
        let v = done.borrow();
        assert_eq!(v[0], (SimTime::from_secs(1), 9));
    }
}
