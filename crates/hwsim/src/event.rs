//! The unified event payload exchanged between all cluster components.
//!
//! Hardware messages (disk, CPU, file system, network) are first-class enum
//! variants; protocol layers built on top (PVFS, CEFT-PVFS, the simulated
//! parallel BLAST) ship their own message structs inside [`Envelope`]s and
//! downcast on receipt. This keeps the hardware crate ignorant of the file
//! systems while still using one event queue.

use std::any::Any;

use parblast_simcore::{CompId, SimTime};

/// Disk operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// Read `len` bytes.
    Read,
    /// Write `len` bytes.
    Write,
}

/// Request to a [`crate::disk::Disk`] component.
#[derive(Debug, Clone)]
pub struct DiskReq {
    /// Operation kind.
    pub op: DiskOp,
    /// Absolute position on the platter address space. Callers must give
    /// distinct files disjoint ranges (see [`crate::localfs::file_pos`]).
    pub pos: u64,
    /// Transfer length in bytes.
    pub len: u64,
    /// Completion recipient.
    pub reply_to: CompId,
    /// Caller correlation token, echoed in [`DiskDone`].
    pub tag: u64,
}

/// Disk completion notice.
#[derive(Debug, Clone)]
pub struct DiskDone {
    /// Echo of the request tag.
    pub tag: u64,
    /// End-to-end latency (queueing + service).
    pub latency: parblast_simcore::SimTime,
}

/// Request to a [`crate::cpu::Cpu`] component.
#[derive(Debug)]
pub enum CpuMsg {
    /// Run `work` CPU-seconds; notify `reply_to` with [`Ev::CpuDone`].
    Run {
        /// CPU-seconds of work (a job uses at most one CPU at a time).
        work: f64,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation token.
        tag: u64,
    },
    /// Add fire-and-forget background work (e.g. TCP processing).
    Inject {
        /// CPU-seconds of work.
        work: f64,
    },
    /// Internal wake-up (stale ones are ignored via the generation counter).
    Wake {
        /// Generation at scheduling time.
        generation: u64,
    },
}

/// CPU completion notice.
#[derive(Debug, Clone)]
pub struct CpuDone {
    /// Echo of the request tag.
    pub tag: u64,
}

/// File-system operation against a node's [`crate::localfs::LocalFs`].
#[derive(Debug)]
pub enum FsMsg {
    /// Buffered (page-cache) read; the FS issues read-ahead-sized disk
    /// requests one at a time, like a faulting `mmap` reader.
    Read {
        /// File identifier (node-local namespace).
        file: u64,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u64,
        /// Memory-mapped access: adds the per-unit fault overhead
        /// (`NodeParams::mmap_fault_s`). `read()`-style callers (PVFS
        /// iods, the stressor) leave this false.
        mmap: bool,
        /// I/O unit override in bytes (0 = the node's read-ahead window).
        /// PVFS iods read in stripe-sized units.
        unit: u64,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation token.
        tag: u64,
    },
    /// Write; `sync` forces every unit to the platter (O_SYNC).
    Write {
        /// File identifier.
        file: u64,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u64,
        /// Synchronous (disk-forced) write?
        sync: bool,
        /// Completion recipient.
        reply_to: CompId,
        /// Correlation token.
        tag: u64,
    },
    /// Drop cached blocks of `file` and reset its length accounting.
    Truncate {
        /// File identifier.
        file: u64,
    },
    /// Internal: a disk unit finished.
    UnitDone {
        /// In-flight request this unit belongs to.
        req: u64,
    },
}

/// File-system completion notice.
#[derive(Debug, Clone)]
pub struct FsDone {
    /// Echo of the request tag.
    pub tag: u64,
    /// End-to-end latency.
    pub latency: parblast_simcore::SimTime,
    /// Bytes that were served from the page cache.
    pub cached_bytes: u64,
}

/// A message submitted to the [`crate::net::Network`] for delivery.
pub struct NetSend {
    /// Sending node index.
    pub src_node: u32,
    /// Receiving node index.
    pub dst_node: u32,
    /// Payload size on the wire.
    pub bytes: u64,
    /// Destination component on the receiving node.
    pub dst: CompId,
    /// Application payload, delivered inside an [`Envelope`].
    pub payload: Box<dyn Any>,
}

impl std::fmt::Debug for NetSend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSend")
            .field("src_node", &self.src_node)
            .field("dst_node", &self.dst_node)
            .field("bytes", &self.bytes)
            .field("dst", &self.dst)
            .finish_non_exhaustive()
    }
}

/// A protocol-level message delivered to a component.
pub struct Envelope {
    /// Node the message originated from (`u32::MAX` for local/self sends).
    pub src_node: u32,
    /// Opaque payload; the receiver downcasts to its protocol type.
    pub payload: Box<dyn Any>,
}

impl Envelope {
    /// Wrap a payload originating locally.
    pub fn local<T: Any>(payload: T) -> Self {
        Envelope {
            src_node: u32::MAX,
            payload: Box::new(payload),
        }
    }

    /// Downcast the payload, panicking with a useful message on mismatch.
    pub fn expect<T: Any>(self) -> T {
        *self
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("envelope payload type mismatch"))
    }
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("src_node", &self.src_node)
            .finish_non_exhaustive()
    }
}

/// Internal disk-scheduler events (addressed to the disk itself).
#[derive(Debug, Clone, Copy)]
pub enum DiskCtl {
    /// The in-service request finished.
    Complete {
        /// Disk service generation at scheduling time; a completion whose
        /// generation no longer matches (the disk failed or was reset in
        /// between) is stale and ignored.
        generation: u64,
    },
    /// Consider dispatching the next queued request.
    Dispatch,
}

/// Fault-injection command, addressed to a [`crate::disk::Disk`], the
/// [`crate::net::Network`], or any protocol component that keeps transient
/// per-request state (see [`FaultCmd::Reset`]). Faults flow through the
/// ordinary event queue so that injection is deterministic and visible in
/// the engine trace.
#[derive(Debug, Clone)]
pub enum FaultCmd {
    /// Disk: freeze the head — nothing new enters service until `for_` has
    /// elapsed. In-flight service finishes normally (a hiccup, not a loss).
    DiskStall {
        /// Stall duration from the moment the command is delivered.
        for_: SimTime,
    },
    /// Disk: hard failure — the in-service request and everything queued is
    /// discarded without completion notices, and later requests are
    /// swallowed too. Callers observe this only as a timeout.
    DiskFail,
    /// Disk: undo [`FaultCmd::DiskFail`]; subsequent requests serve
    /// normally (requests lost while failed stay lost).
    DiskRepair,
    /// Discard all transient per-request state. Sent to every component of
    /// a server when it is revived after a crash, so a restarted daemon
    /// does not resume half-finished work from before the crash.
    Reset,
    /// Network: install a drop/delay rule.
    NetRule(NetFaultRule),
    /// Network: remove every installed rule.
    NetClear,
    /// Storage daemon: silently corrupt one stripe of a stored file (a
    /// latent media error). The daemon keeps serving the stripe; only a
    /// checksum verification at read or scrub time can notice.
    CorruptStripe {
        /// Daemon-local file identifier.
        file: u64,
        /// Stripe index within the daemon's local portion of the file.
        stripe: u64,
    },
}

/// What a matching [`NetFaultRule`] does to a message.
#[derive(Debug, Clone, Copy)]
pub enum NetFaultMode {
    /// Silently discard the message (no NIC occupancy, no delivery).
    Drop,
    /// Deliver, but add this much extra wire latency.
    Delay(SimTime),
}

/// A network fault rule: matches messages by source/destination node until
/// a deadline and applies [`NetFaultMode`] to them.
#[derive(Debug, Clone, Copy)]
pub struct NetFaultRule {
    /// Match messages from this node (`None` = any source).
    pub src: Option<u32>,
    /// Match messages to this node (`None` = any destination).
    pub dst: Option<u32>,
    /// The rule stops matching at this simulation time.
    pub until: SimTime,
    /// Action applied to matched messages.
    pub mode: NetFaultMode,
}

impl NetFaultRule {
    /// Does this rule apply to a `src → dst` message at time `now`?
    pub fn matches(&self, now: SimTime, src: u32, dst: u32) -> bool {
        now < self.until && self.src.is_none_or(|s| s == src) && self.dst.is_none_or(|d| d == dst)
    }
}

/// The cluster-wide event type.
#[derive(Debug)]
pub enum Ev {
    /// Disk request (addressed to a `Disk`).
    Disk(DiskReq),
    /// Disk-internal scheduler step.
    DiskCtl(DiskCtl),
    /// Disk completion (addressed to the requester).
    DiskDone(DiskDone),
    /// CPU request (addressed to a `Cpu`).
    Cpu(CpuMsg),
    /// CPU completion (addressed to the requester).
    CpuDone(CpuDone),
    /// File-system request (addressed to a `LocalFs`).
    Fs(FsMsg),
    /// File-system completion (addressed to the requester).
    FsDone(FsDone),
    /// Network send (addressed to the `Network`).
    Net(NetSend),
    /// Internal network pipeline step.
    NetStage {
        /// Stage token.
        token: u64,
    },
    /// Generic timer with a caller-defined tag.
    Timer(u64),
    /// Fault-injection command (see [`FaultCmd`]).
    Fault(FaultCmd),
    /// Protocol-level message.
    User(Envelope),
}
