//! The Figure 8 disk stressor.
//!
//! Direct transcription of the paper's pseudo-code:
//!
//! ```text
//! M = allocate(1 MBytes);
//! Create a file named F;
//! While(1)
//!   If (size(F) > 2 GB)  Truncate F to zero byte;
//!   Else                 Synchronously append the data in M to the end of F;
//! ```
//!
//! The synchronous append guarantees a disk access per iteration; the CPUs
//! stay ~95 % idle (the paper verified this), so the stressor contends for
//! the disk only.

use parblast_simcore::{CompId, Component, Ctx, SimTime};

use crate::event::{Ev, FsDone, FsMsg};
use crate::params::{GIB, MIB};

/// Configuration for a [`DiskStressor`].
#[derive(Debug, Clone)]
pub struct StressorConfig {
    /// Node-local file id the stressor appends to.
    pub file: u64,
    /// Append size (paper: 1 MB).
    pub write_size: u64,
    /// Truncate threshold (paper: 2 GB).
    pub file_limit: u64,
    /// When to start stressing.
    pub start: SimTime,
    /// When to stop (run forever if `SimTime::MAX`).
    pub stop: SimTime,
}

impl Default for StressorConfig {
    fn default() -> Self {
        StressorConfig {
            file: u64::MAX - 1,
            write_size: MIB,
            file_limit: 2 * GIB,
            start: SimTime::ZERO,
            stop: SimTime::MAX,
        }
    }
}

/// Figure 8 workload component: one synchronous appender.
pub struct DiskStressor {
    fs: CompId,
    cfg: StressorConfig,
    offset: u64,
    appends: u64,
    truncates: u64,
    started: bool,
    name: String,
}

impl DiskStressor {
    /// New stressor writing through the given `LocalFs`.
    pub fn new(name: impl Into<String>, fs: CompId, cfg: StressorConfig) -> Self {
        DiskStressor {
            fs,
            cfg,
            offset: 0,
            appends: 0,
            truncates: 0,
            started: false,
            name: name.into(),
        }
    }

    /// Appends completed so far.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Truncations performed so far.
    pub fn truncates(&self) -> u64 {
        self.truncates
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if ctx.now() >= self.cfg.stop {
            return;
        }
        if self.offset + self.cfg.write_size > self.cfg.file_limit {
            ctx.send(
                self.fs,
                Ev::Fs(FsMsg::Truncate {
                    file: self.cfg.file,
                }),
            );
            self.offset = 0;
            self.truncates += 1;
        }
        ctx.send(
            self.fs,
            Ev::Fs(FsMsg::Write {
                file: self.cfg.file,
                offset: self.offset,
                len: self.cfg.write_size,
                sync: true,
                reply_to: ctx.self_id(),
                tag: 0,
            }),
        );
        self.offset += self.cfg.write_size;
    }
}

impl Component<Ev> for DiskStressor {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Timer(_) if !self.started => {
                self.started = true;
                self.issue(ctx);
            }
            Ev::FsDone(FsDone { .. }) => {
                self.appends += 1;
                self.issue(ctx);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Schedule a stressor's kick-off event.
pub fn start_stressor(eng: &mut parblast_simcore::Engine<Ev>, stressor: CompId, at: SimTime) {
    eng.schedule(at, stressor, Ev::Timer(0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use crate::localfs::LocalFs;
    use crate::params::{DiskParams, HwParams};
    use parblast_simcore::Engine;

    fn build() -> (Engine<Ev>, CompId, CompId, CompId) {
        let p = HwParams::default();
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let fs = eng.add(LocalFs::new("fs0", disk, &p.node));
        let st = eng.add(DiskStressor::new("stress", fs, StressorConfig::default()));
        (eng, disk, fs, st)
    }

    #[test]
    fn saturates_the_disk_with_writes() {
        let (mut eng, disk, _fs, st) = build();
        start_stressor(&mut eng, st, SimTime::ZERO);
        eng.run_until(SimTime::from_secs(30));
        let d = eng.component::<Disk>(disk);
        // ~32 MB/s for 30 s ≈ 960 MB written; utilization near 1.
        let (_, written) = d.bytes();
        assert!(written > 900 * MIB, "written = {written}");
        assert!(d.utilization(eng.now()) > 0.95);
    }

    #[test]
    fn truncates_at_2gb() {
        let (mut eng, _disk, _fs, st) = build();
        start_stressor(&mut eng, st, SimTime::ZERO);
        // 2 GiB at 32 MB/s ≈ 64 s; run 80 s to see one truncation.
        eng.run_until(SimTime::from_secs(80));
        let s = eng.component::<DiskStressor>(st);
        assert!(s.truncates() >= 1, "truncates = {}", s.truncates());
        assert!(s.appends() > 2000);
    }

    #[test]
    fn respects_stop_time() {
        let p = HwParams::default();
        let mut eng: Engine<Ev> = Engine::new(1);
        let disk = eng.add(Disk::new("d0", DiskParams::default()));
        let fs = eng.add(LocalFs::new("fs0", disk, &p.node));
        let st = eng.add(DiskStressor::new(
            "stress",
            fs,
            StressorConfig {
                stop: SimTime::from_secs(5),
                ..StressorConfig::default()
            },
        ));
        start_stressor(&mut eng, st, SimTime::ZERO);
        eng.run_until(SimTime::from_secs(60));
        let w1 = eng.component::<Disk>(disk).bytes().1;
        assert!(w1 < 200 * MIB, "w1 = {w1}");
        // Queue must fully drain: the engine goes idle.
        assert_eq!(eng.run(), parblast_simcore::RunOutcome::Drained);
    }
}
