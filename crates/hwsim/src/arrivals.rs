//! Workload arrival processes for the serving layer.
//!
//! The paper runs exactly one query; a serving experiment needs a stream
//! of them. An [`ArrivalProcess`] turns a target rate into a deterministic
//! list of arrival instants using the seeded simulation RNG — the same
//! `(config, seed) → trace` purity contract as the rest of the simulator.

use parblast_simcore::{SimRng, SimTime};

/// How query arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals: exponential inter-arrival times with
    /// mean `1 / rate_qps`. The standard heavy-traffic model for
    /// independent users hitting a service.
    Poisson {
        /// Mean arrival rate, queries per second.
        rate_qps: f64,
    },
    /// Open-loop deterministic pacing: one arrival every `1 / rate_qps`
    /// seconds. Useful for isolating queueing effects from arrival
    /// burstiness.
    Periodic {
        /// Arrival rate, queries per second.
        rate_qps: f64,
    },
}

impl ArrivalProcess {
    /// The process's mean rate, queries per second.
    pub fn rate_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Periodic { rate_qps } => {
                rate_qps
            }
        }
    }

    /// Generate `n` arrival instants starting at `t = 0`, non-decreasing.
    /// Periodic processes ignore the RNG; Poisson processes draw from it,
    /// so the same seed reproduces the same workload.
    pub fn times(&self, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        for i in 0..n {
            match *self {
                ArrivalProcess::Poisson { rate_qps } => {
                    assert!(rate_qps > 0.0, "Poisson rate must be positive");
                    t += rng.exponential(1.0 / rate_qps);
                }
                ArrivalProcess::Periodic { rate_qps } => {
                    assert!(rate_qps > 0.0, "periodic rate must be positive");
                    t = i as f64 / rate_qps;
                }
            }
            out.push(SimTime::from_secs_f64(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_interarrival_close_to_rate() {
        let mut rng = SimRng::new(7);
        let p = ArrivalProcess::Poisson { rate_qps: 50.0 };
        let times = p.times(20_000, &mut rng);
        let span = times.last().unwrap().as_secs_f64();
        let rate = times.len() as f64 / span;
        assert!((rate - 50.0).abs() / 50.0 < 0.05, "measured rate {rate}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let p = ArrivalProcess::Poisson { rate_qps: 10.0 };
        let a = p.times(100, &mut SimRng::new(42));
        let b = p.times(100, &mut SimRng::new(42));
        let c = p.times(100, &mut SimRng::new(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn times_are_non_decreasing() {
        let mut rng = SimRng::new(3);
        for p in [
            ArrivalProcess::Poisson { rate_qps: 5.0 },
            ArrivalProcess::Periodic { rate_qps: 5.0 },
        ] {
            let times = p.times(500, &mut rng);
            for w in times.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn periodic_is_exact() {
        let mut rng = SimRng::new(1);
        let times = ArrivalProcess::Periodic { rate_qps: 4.0 }.times(5, &mut rng);
        assert_eq!(times[0], SimTime::ZERO);
        assert_eq!(times[4], SimTime::from_secs(1));
    }
}
