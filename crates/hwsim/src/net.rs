//! Myrinet/TCP interconnect model.
//!
//! One [`Network`] component carries every message. Each node has a
//! full-duplex NIC modeled as two FCFS serialization stations (transmit and
//! receive) at the Netperf-calibrated TCP goodput; the switch itself is
//! non-blocking. A message occupies the sender's TX station, travels one
//! wire latency, then occupies the receiver's RX station — store-and-forward
//! at message granularity, which pipelines to full bandwidth for streams of
//! messages while charging ≈2×serialization to a lone message.
//!
//! TCP is not free on 2003 hardware: every byte costs CPU at both endpoints
//! (47 % of one CPU at full rate, per the paper's Netperf measurement),
//! injected into the respective node [`crate::cpu::Cpu`]s.

use parblast_simcore::{CompId, Component, Ctx, SimTime, Summary};

use crate::event::{CpuMsg, Envelope, Ev, FaultCmd, NetFaultMode, NetFaultRule, NetSend};
use crate::params::NetParams;

struct Nic {
    tx_free: SimTime,
    rx_free: SimTime,
    tx_bytes: u64,
    rx_bytes: u64,
}

/// The cluster interconnect.
pub struct Network {
    params: NetParams,
    nics: Vec<Nic>,
    cpus: Vec<CompId>,
    msgs: u64,
    /// Fault-injected drop/delay rules, first match wins.
    rules: Vec<NetFaultRule>,
    dropped: u64,
    delayed: u64,
    delivery_latency: Summary,
    name: String,
}

impl Network {
    /// New network for `nodes` nodes; `cpus[i]` receives the TCP CPU tax of
    /// node `i` (pass an empty slice to disable the tax).
    pub fn new(
        name: impl Into<String>,
        nodes: usize,
        cpus: Vec<CompId>,
        params: NetParams,
    ) -> Self {
        Network {
            params,
            nics: (0..nodes)
                .map(|_| Nic {
                    tx_free: SimTime::ZERO,
                    rx_free: SimTime::ZERO,
                    tx_bytes: 0,
                    rx_bytes: 0,
                })
                .collect(),
            cpus,
            msgs: 0,
            rules: Vec::new(),
            dropped: 0,
            delayed: 0,
            delivery_latency: Summary::new(),
            name: name.into(),
        }
    }

    /// Messages carried.
    pub fn messages(&self) -> u64 {
        self.msgs
    }

    /// Messages discarded by fault-injected drop rules.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages slowed by fault-injected delay rules.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// Bytes through node `i`'s NIC `(tx, rx)`.
    pub fn nic_bytes(&self, i: usize) -> (u64, u64) {
        (self.nics[i].tx_bytes, self.nics[i].rx_bytes)
    }

    /// End-to-end delivery latency summary.
    pub fn latency(&self) -> &Summary {
        &self.delivery_latency
    }

    fn tax(&self, ctx: &mut Ctx<'_, Ev>, node: u32, bytes: u64) {
        if let Some(&cpu) = self.cpus.get(node as usize) {
            let work = self.params.cpu_per_msg + bytes as f64 * self.params.cpu_per_byte;
            ctx.send(cpu, Ev::Cpu(CpuMsg::Inject { work }));
        }
    }
}

impl Component<Ev> for Network {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let NetSend {
            src_node,
            dst_node,
            bytes,
            dst,
            payload,
        } = match ev {
            Ev::Net(send) => send,
            Ev::Fault(FaultCmd::NetRule(rule)) => {
                self.rules.push(rule);
                return;
            }
            Ev::Fault(FaultCmd::NetClear | FaultCmd::Reset) => {
                self.rules.clear();
                return;
            }
            _ => {
                debug_assert!(false, "network received unexpected event");
                return;
            }
        };
        // Fault rules are consulted before any NIC accounting: a dropped
        // message vanishes as if the switch ate the frame.
        let fault_delay = match self
            .rules
            .iter()
            .find(|r| r.matches(ctx.now(), src_node, dst_node))
            .map(|r| r.mode)
        {
            Some(NetFaultMode::Drop) => {
                self.dropped += 1;
                return;
            }
            Some(NetFaultMode::Delay(d)) => {
                self.delayed += 1;
                d
            }
            None => SimTime::ZERO,
        };
        self.msgs += 1;
        // Loopback (src == dst) is NOT free: 2003 localhost TCP still
        // crossed the stack with per-byte copies and CPU cost. It goes
        // through the same tx/rx stations, skipping only the wire latency.
        let ser = SimTime::from_secs_f64(bytes as f64 / self.params.bandwidth);
        let lat = if src_node == dst_node {
            SimTime::from_micros(5)
        } else {
            SimTime::from_secs_f64(self.params.latency_s)
        } + fault_delay;

        let tx = &mut self.nics[src_node as usize];
        let tx_start = tx.tx_free.max(ctx.now());
        let tx_done = tx_start + ser;
        tx.tx_free = tx_done;
        tx.tx_bytes += bytes;

        let arrive = tx_done + lat;
        let rx = &mut self.nics[dst_node as usize];
        let rx_start = rx.rx_free.max(arrive);
        let rx_done = rx_start + ser;
        rx.rx_free = rx_done;
        rx.rx_bytes += bytes;

        self.delivery_latency
            .record(rx_done.saturating_sub(ctx.now()).as_secs_f64());
        self.tax(ctx, src_node, bytes);
        self.tax(ctx, dst_node, bytes);
        ctx.schedule_at(rx_done, dst, Ev::User(Envelope { src_node, payload }));
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MIB;
    use parblast_simcore::Engine;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Hello(u32);

    struct Sink {
        got: Rc<RefCell<Vec<(SimTime, u32, u32)>>>,
    }
    impl Component<Ev> for Sink {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            if let Ev::User(env) = ev {
                let src = env.src_node;
                let h: Hello = env.expect();
                self.got.borrow_mut().push((ctx.now(), src, h.0));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send(
        eng: &mut Engine<Ev>,
        net: CompId,
        at: SimTime,
        src: u32,
        dst_node: u32,
        dst: CompId,
        bytes: u64,
        tag: u32,
    ) {
        eng.schedule(
            at,
            net,
            Ev::Net(NetSend {
                src_node: src,
                dst_node,
                bytes,
                dst,
                payload: Box::new(Hello(tag)),
            }),
        );
    }

    #[test]
    fn single_message_latency() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let got = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { got: got.clone() });
        let net = eng.add(Network::new("net", 2, vec![], NetParams::default()));
        send(&mut eng, net, SimTime::ZERO, 0, 1, sink, MIB, 7);
        eng.run();
        let v = got.borrow();
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].1, v[0].2), (0, 7));
        let p = NetParams::default();
        let expected = 2.0 * MIB as f64 / p.bandwidth + p.latency_s;
        assert!((v[0].0.as_secs_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn streamed_messages_reach_full_bandwidth() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let got = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { got: got.clone() });
        let net = eng.add(Network::new("net", 2, vec![], NetParams::default()));
        let n = 256u64;
        for i in 0..n {
            send(&mut eng, net, SimTime::ZERO, 0, 1, sink, MIB, i as u32);
        }
        eng.run();
        let t = got.borrow().last().unwrap().0.as_secs_f64();
        let bw = n as f64 * MIB as f64 / t / MIB as f64;
        // Pipelined: close to 112 MiB/s despite 2× per-message serialization.
        assert!(bw > 100.0, "bw = {bw} MiB/s");
    }

    #[test]
    fn loopback_pays_stack_costs() {
        // Localhost TCP in 2003 still serialized through the stack: a
        // loopback transfer costs the same tx+rx serialization, only the
        // wire latency is dropped.
        let mut eng: Engine<Ev> = Engine::new(0);
        let got = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { got: got.clone() });
        let net = eng.add(Network::new("net", 2, vec![], NetParams::default()));
        send(&mut eng, net, SimTime::ZERO, 1, 1, sink, 112 * MIB, 1);
        eng.run();
        let t = got.borrow()[0].0.as_secs_f64();
        // ≈ 2 × 112 MiB / 112 MiB/s = 2 s.
        assert!((t - 2.0).abs() < 0.05, "t = {t}");
        let n = eng.component::<Network>(net);
        assert_eq!(n.nic_bytes(1), (112 * MIB, 112 * MIB));
    }

    #[test]
    fn concurrent_senders_share_receiver_nic() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let got = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { got: got.clone() });
        let net = eng.add(Network::new("net", 3, vec![], NetParams::default()));
        // Nodes 0 and 1 each stream 64 MiB to node 2.
        for i in 0..64u64 {
            send(&mut eng, net, SimTime::ZERO, 0, 2, sink, MIB, i as u32);
            send(
                &mut eng,
                net,
                SimTime::ZERO,
                1,
                2,
                sink,
                MIB,
                100 + i as u32,
            );
        }
        eng.run();
        let t = got.borrow().last().unwrap().0.as_secs_f64();
        let p = NetParams::default();
        let min_t = 128.0 * MIB as f64 / p.bandwidth;
        // Receiver NIC is the bottleneck: finish no earlier than 128 MiB at
        // link rate (small tolerance for the pipelined first message).
        assert!(t > min_t * 0.98, "t = {t}, min = {min_t}");
    }

    #[test]
    fn tcp_tax_lands_on_cpu() {
        use crate::cpu::Cpu;
        let mut eng: Engine<Ev> = Engine::new(0);
        let got = Rc::new(RefCell::new(vec![]));
        let sink = eng.add(Sink { got: got.clone() });
        let cpu0 = eng.add(Cpu::new("cpu0", 2.0));
        let cpu1 = eng.add(Cpu::new("cpu1", 2.0));
        let net = eng.add(Network::new(
            "net",
            2,
            vec![cpu0, cpu1],
            NetParams::default(),
        ));
        send(&mut eng, net, SimTime::ZERO, 0, 1, sink, 112 * MIB, 1);
        eng.run();
        let w0 = eng.component::<Cpu>(cpu0).injected_work();
        let w1 = eng.component::<Cpu>(cpu1).injected_work();
        // 112 MiB at 4.0e-9 s/B ≈ 0.47 s per endpoint.
        assert!((w0 - 0.47).abs() < 0.01, "w0 = {w0}");
        assert!((w1 - 0.47).abs() < 0.01, "w1 = {w1}");
    }
}
