//! # parblast-hwsim
//!
//! Calibrated hardware models of the PrairieFire cluster (CLUSTER 2003):
//! IDE disks with an elevator scheduler, a Myrinet/TCP interconnect, dual
//! Athlon CPUs under processor sharing, a per-node page cache with
//! read-ahead, and the paper's Figure 8 disk stressor.
//!
//! Calibration anchors (paper §4.1):
//!
//! * Bonnie: 26 MB/s sequential read, 32 MB/s sequential write;
//! * Netperf: ≈112 MB/s TCP over Myrinet at 47 % CPU utilization;
//! * 2 CPUs and 2 GB RAM per node.
//!
//! Higher layers (simulated PVFS, CEFT-PVFS, parallel BLAST) talk to these
//! components through the unified [`event::Ev`] type and ship their own
//! protocol messages inside [`event::Envelope`]s.

#![warn(missing_docs)]

pub mod arrivals;
pub mod cache;
pub mod cluster;
pub mod cpu;
pub mod disk;
pub mod event;
pub mod fault;
pub mod localfs;
pub mod net;
pub mod params;
pub mod stressor;

pub use arrivals::ArrivalProcess;
pub use cache::{BlockKey, PageCache};
pub use cluster::{Cluster, NodeIds};
pub use cpu::Cpu;
pub use disk::{Disk, DiskGauge};
pub use event::{
    CpuDone, CpuMsg, DiskCtl, DiskDone, DiskOp, DiskReq, Envelope, Ev, FaultCmd, FsDone, FsMsg,
    NetFaultMode, NetFaultRule, NetSend,
};
pub use fault::{
    Fault, FaultEvent, FaultInjector, FaultSchedule, SocketChaosProfile, SocketDir, SocketFault,
    SocketFaultKind, SocketFaultSchedule,
};
pub use localfs::{file_pos, LocalFs};
pub use net::Network;
pub use params::{DiskParams, HwParams, NetParams, NodeParams, GIB, KIB, MIB};
pub use stressor::{start_stressor, DiskStressor, StressorConfig};
