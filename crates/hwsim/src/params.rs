//! Calibrated hardware parameters.
//!
//! Defaults reproduce the PrairieFire cluster as measured in §4.1 of the
//! paper: dual AMD Athlon MP nodes with 2 GB RAM, a 20 GB IDE (ATA100)
//! disk benchmarked by Bonnie at 32 MB/s write / 26 MB/s read, and a
//! 2 Gbit/s full-duplex Myrinet on which Netperf reports ≈112 MB/s of TCP
//! bandwidth at 47 % CPU utilization.

/// One mebibyte in bytes.
pub const MIB: u64 = 1 << 20;
/// One kibibyte in bytes.
pub const KIB: u64 = 1 << 10;
/// One gibibyte in bytes.
pub const GIB: u64 = 1 << 30;

/// Disk mechanics and transfer rates.
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Average seek time in seconds (charged when the head moves).
    pub seek_s: f64,
    /// Average rotational delay in seconds (half a revolution).
    pub rotational_s: f64,
    /// Sustained media read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Sustained media write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Fixed per-request controller/command overhead in seconds.
    pub overhead_s: f64,
    /// Elevator read-batch limit: bytes a sequential *read* stream may keep
    /// the head before a waiting request from another stream is served.
    /// Synchronous reads (page faults) get small slots.
    pub read_batch_bytes: u64,
    /// Elevator write-batch limit. Write-back clustering in the 2003-era
    /// elevator let a continuously-appending writer monopolize the head for
    /// many megabytes — the root cause of the paper's Figure 9 hot-spot
    /// degradations (calibrated against the 10×/21× factors).
    pub write_batch_bytes: u64,
    /// Anticipation window: after a completion the scheduler waits this
    /// long for a sequential successor before switching streams.
    pub anticipation_s: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            // 20 GB IDE circa 2002: ~8.5 ms seek, 7200 rpm → 4.17 ms half-rev.
            seek_s: 8.5e-3,
            rotational_s: 4.17e-3,
            // Media rates chosen so the *file-system-level* sequential
            // rates land on the paper's Bonnie figures (26 read / 32
            // write MB/s) after per-unit overheads.
            read_bw: 27.5 * MIB as f64,
            write_bw: 32.2 * MIB as f64,
            overhead_s: 0.1e-3,
            read_batch_bytes: 256 * KIB,
            write_batch_bytes: 16 * MIB,
            anticipation_s: 50e-6,
        }
    }
}

/// Network interface / switch characteristics.
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Per-direction link bandwidth, bytes/second (TCP-level goodput).
    pub bandwidth: f64,
    /// One-way wire + stack latency per message, seconds.
    pub latency_s: f64,
    /// CPU seconds consumed per byte of TCP traffic at *each* endpoint.
    /// Calibrated so that saturating the link costs ≈47 % of one CPU:
    /// 0.47 / 112 MiB/s ≈ 4.0e-9 s/B.
    pub cpu_per_byte: f64,
    /// Fixed CPU cost per message at each endpoint, seconds.
    pub cpu_per_msg: f64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            bandwidth: 112.0 * MIB as f64,
            latency_s: 60e-6,
            cpu_per_byte: 0.47 / (112.0 * MIB as f64),
            cpu_per_msg: 15e-6,
        }
    }
}

/// Node-level parameters.
#[derive(Debug, Clone)]
pub struct NodeParams {
    /// Number of CPUs (processor-sharing servers).
    pub cpus: f64,
    /// Page-cache capacity in bytes (2 GB RAM minus application footprint).
    pub cache_bytes: u64,
    /// Read-ahead / page-in unit for buffered and memory-mapped reads.
    pub readahead: u64,
    /// Latency of serving one cached unit (memory copy + fault handling).
    pub cache_hit_s: f64,
    /// Extra per-read-ahead-unit latency of *memory-mapped* reads (page
    /// fault, TLB and copy overhead of 2003 mmap I/O). Only charged when a
    /// request is flagged `mmap`; calibrated so the original mpiBLAST's
    /// I/O fraction lands at the paper's ≈11 %.
    pub mmap_fault_s: f64,
    /// Per-unit continuation gap of `read()`-style accesses (syscall
    /// return, daemon processing) before the next unit is issued. Under
    /// contention this lets the elevator switch away between units, which
    /// is why a stressed PVFS server collapses harder than a stressed
    /// local mmap reader (Figure 9's 21× vs 10×).
    pub read_gap_s: f64,
}

impl Default for NodeParams {
    fn default() -> Self {
        NodeParams {
            cpus: 2.0,
            cache_bytes: 3 * GIB / 2,
            readahead: 128 * KIB,
            cache_hit_s: 30e-6,
            mmap_fault_s: 2.0e-3,
            read_gap_s: 0.15e-3,
        }
    }
}

/// Whole-cluster parameter set.
#[derive(Debug, Clone, Default)]
pub struct HwParams {
    /// Per-node disk model.
    pub disk: DiskParams,
    /// Interconnect model.
    pub net: NetParams,
    /// Per-node CPU/memory model.
    pub node: NodeParams,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_calibration() {
        let p = HwParams::default();
        // Raw media rates sit slightly above Bonnie's FS-level figures.
        assert!((p.disk.read_bw / MIB as f64 - 26.0).abs() < 2.0);
        assert!((p.disk.write_bw / MIB as f64 - 32.0).abs() < 2.0);
        assert!((p.net.bandwidth / MIB as f64 - 112.0).abs() < 1e-9);
        assert!((p.node.cpus - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tcp_cpu_tax_saturates_near_half_cpu() {
        let p = NetParams::default();
        // Saturating the link for 1 s costs ~0.47 CPU-seconds.
        let cost = p.cpu_per_byte * p.bandwidth;
        assert!((cost - 0.47).abs() < 0.01, "cost={cost}");
    }
}
