//! Page-cache model: an LRU set of fixed-size blocks keyed by
//! `(file, block index)`.
//!
//! Implemented as a hash map into an intrusive doubly-linked list stored in
//! a slab, giving O(1) touch/insert/evict without unsafe code.

use std::collections::HashMap;

/// Key of one cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// File identifier.
    pub file: u64,
    /// Block index within the file.
    pub block: u64,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Entry {
    key: BlockKey,
    prev: u32,
    next: u32,
}

/// LRU cache of fixed-size blocks with a byte-capacity budget.
#[derive(Debug)]
pub struct PageCache {
    block_size: u64,
    capacity_blocks: usize,
    map: HashMap<BlockKey, u32>,
    slab: Vec<Entry>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PageCache {
    /// New cache holding up to `capacity_bytes` in `block_size`-sized blocks.
    pub fn new(capacity_bytes: u64, block_size: u64) -> Self {
        assert!(block_size > 0);
        let capacity_blocks = (capacity_bytes / block_size) as usize;
        PageCache {
            block_size,
            capacity_blocks,
            map: HashMap::with_capacity(capacity_blocks.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Cache block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Number of blocks currently resident.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// (hits, misses, evictions) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    fn unlink(&mut self, idx: u32) {
        let (p, n) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next)
        };
        if p != NIL {
            self.slab[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slab[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slab[idx as usize].prev = NIL;
        self.slab[idx as usize].next = self.head;
        if self.head != NIL {
            self.slab[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Is the block resident? Updates recency and hit/miss counters.
    pub fn access(&mut self, key: BlockKey) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Is the block resident? No side effects.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Insert a block (no-op if already resident, but refreshed), evicting
    /// the LRU block when full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: BlockKey) -> Option<BlockKey> {
        if self.capacity_blocks == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity_blocks {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let vkey = self.slab[victim as usize].key;
            self.map.remove(&vkey);
            self.free.push(victim);
            self.evictions += 1;
            evicted = Some(vkey);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.slab[idx as usize] = Entry {
                key,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(Entry {
                key,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Drop every block belonging to `file` (truncate / delete).
    pub fn invalidate_file(&mut self, file: u64) {
        let victims: Vec<BlockKey> = self
            .map
            .keys()
            .filter(|k| k.file == file)
            .copied()
            .collect();
        for k in victims {
            if let Some(idx) = self.map.remove(&k) {
                self.unlink(idx);
                self.free.push(idx);
            }
        }
    }

    /// Drop everything (e.g. to model a cold start between runs).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Iterate over the blocks of `[offset, offset+len)` of `file`.
    pub fn blocks_of(&self, file: u64, offset: u64, len: u64) -> impl Iterator<Item = BlockKey> {
        let bs = self.block_size;
        let first = offset / bs;
        let last = if len == 0 {
            first
        } else {
            (offset + len - 1) / bs + 1
        };
        (first..last).map(move |block| BlockKey { file, block })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(file: u64, block: u64) -> BlockKey {
        BlockKey { file, block }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = PageCache::new(1024, 256);
        assert!(!c.access(key(1, 0)));
        c.insert(key(1, 0));
        assert!(c.access(key(1, 0)));
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = PageCache::new(3 * 256, 256);
        c.insert(key(1, 0));
        c.insert(key(1, 1));
        c.insert(key(1, 2));
        // Touch block 0 so block 1 becomes LRU.
        assert!(c.access(key(1, 0)));
        let evicted = c.insert(key(1, 3)).unwrap();
        assert_eq!(evicted, key(1, 1));
        assert!(c.contains(key(1, 0)));
        assert!(c.contains(key(1, 2)));
        assert!(c.contains(key(1, 3)));
    }

    #[test]
    fn capacity_bounded() {
        let mut c = PageCache::new(10 * 64, 64);
        for b in 0..100 {
            c.insert(key(1, b));
        }
        assert_eq!(c.resident(), 10);
        assert_eq!(c.counters().2, 90);
    }

    #[test]
    fn invalidate_file_only_drops_that_file() {
        let mut c = PageCache::new(100 * 64, 64);
        for b in 0..5 {
            c.insert(key(1, b));
            c.insert(key(2, b));
        }
        c.invalidate_file(1);
        assert_eq!(c.resident(), 5);
        assert!(!c.contains(key(1, 0)));
        assert!(c.contains(key(2, 4)));
        // LRU list stays consistent after invalidation.
        for b in 5..60 {
            c.insert(key(3, b));
        }
        assert!(c.resident() <= 100);
    }

    #[test]
    fn blocks_of_covers_range() {
        let c = PageCache::new(1024, 100);
        let v: Vec<u64> = c.blocks_of(9, 250, 300).map(|k| k.block).collect();
        // Bytes 250..550 → blocks 2..=5.
        assert_eq!(v, vec![2, 3, 4, 5]);
        assert_eq!(c.blocks_of(9, 0, 0).count(), 0);
        assert_eq!(c.blocks_of(9, 0, 1).count(), 1);
        assert_eq!(c.blocks_of(9, 99, 2).count(), 2);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = PageCache::new(2 * 64, 64);
        c.insert(key(1, 0));
        c.insert(key(1, 1));
        c.insert(key(1, 0)); // refresh 0; LRU is now 1
        let evicted = c.insert(key(1, 2)).unwrap();
        assert_eq!(evicted, key(1, 1));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = PageCache::new(0, 64);
        assert_eq!(c.insert(key(1, 0)), None);
        assert!(!c.contains(key(1, 0)));
    }
}
