//! Cluster assembly: builds the per-node component set (disk, local file
//! system, CPUs) plus the shared interconnect, and hands out the component
//! ids that protocol layers (PVFS, CEFT-PVFS, the simulated BLAST) need.

use parblast_simcore::{CompId, Engine};

use crate::cpu::Cpu;
use crate::disk::Disk;
use crate::event::Ev;
use crate::localfs::LocalFs;
use crate::net::Network;
use crate::params::HwParams;

/// Component ids of one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeIds {
    /// Node index (== NIC index on the network).
    pub index: u32,
    /// The node's disk.
    pub disk: CompId,
    /// The node's local file system.
    pub fs: CompId,
    /// The node's CPU set.
    pub cpu: CompId,
}

/// A built cluster: node component ids plus the network.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Per-node components, indexed by node id.
    pub nodes: Vec<NodeIds>,
    /// The interconnect.
    pub net: CompId,
    /// Parameters the cluster was built with.
    pub params: HwParams,
}

impl Cluster {
    /// Build an `n`-node cluster into `eng`.
    pub fn build(eng: &mut Engine<Ev>, n: usize, params: HwParams) -> Cluster {
        let mut nodes = Vec::with_capacity(n);
        let mut cpus = Vec::with_capacity(n);
        for i in 0..n {
            let disk = eng.add(Disk::new(format!("node{i}.disk"), params.disk.clone()));
            let fs = eng.add(LocalFs::new(format!("node{i}.fs"), disk, &params.node));
            let cpu = eng.add(Cpu::new(format!("node{i}.cpu"), params.node.cpus));
            cpus.push(cpu);
            nodes.push(NodeIds {
                index: i as u32,
                disk,
                fs,
                cpu,
            });
        }
        let net = eng.add(Network::new("net", n, cpus, params.net.clone()));
        Cluster { nodes, net, params }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Ev, FsDone, FsMsg, NetSend};
    use parblast_simcore::{Component, Ctx, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn builds_n_nodes() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 8, HwParams::default());
        assert_eq!(c.len(), 8);
        assert_eq!(eng.component_count(), 8 * 3 + 1);
        for (i, n) in c.nodes.iter().enumerate() {
            assert_eq!(n.index as usize, i);
        }
    }

    /// End-to-end smoke test: a client on node 0 reads a file from node 0's
    /// FS, then ships the bytes to node 1.
    struct Client {
        fs: CompId,
        net: CompId,
        dst: CompId,
        log: Rc<RefCell<Vec<&'static str>>>,
    }
    impl Component<Ev> for Client {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Timer(_) => {
                    self.log.borrow_mut().push("read");
                    ctx.send(
                        self.fs,
                        Ev::Fs(FsMsg::Read {
                            file: 1,
                            offset: 0,
                            len: 4 << 20,
                            mmap: false,
                            unit: 0,
                            reply_to: ctx.self_id(),
                            tag: 0,
                        }),
                    );
                }
                Ev::FsDone(FsDone { .. }) => {
                    self.log.borrow_mut().push("send");
                    ctx.send(
                        self.net,
                        Ev::Net(NetSend {
                            src_node: 0,
                            dst_node: 1,
                            bytes: 4 << 20,
                            dst: self.dst,
                            payload: Box::new(42u32),
                        }),
                    );
                }
                _ => {}
            }
        }
    }
    struct Server {
        log: Rc<RefCell<Vec<&'static str>>>,
    }
    impl Component<Ev> for Server {
        fn on_event(&mut self, _ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            if let Ev::User(env) = ev {
                assert_eq!(env.src_node, 0);
                assert_eq!(env.expect::<u32>(), 42);
                self.log.borrow_mut().push("recv");
            }
        }
    }

    #[test]
    fn read_then_ship_crosses_the_stack() {
        let mut eng: Engine<Ev> = Engine::new(0);
        let c = Cluster::build(&mut eng, 2, HwParams::default());
        let log = Rc::new(RefCell::new(vec![]));
        let server = eng.add(Server { log: log.clone() });
        let client = eng.add(Client {
            fs: c.nodes[0].fs,
            net: c.net,
            dst: server,
            log: log.clone(),
        });
        eng.schedule(SimTime::ZERO, client, Ev::Timer(0));
        eng.run();
        assert_eq!(*log.borrow(), vec!["read", "send", "recv"]);
        // Read of 4 MiB at 26 MB/s plus network of 4 MiB: well under 1 s.
        assert!(eng.now() < SimTime::from_secs(1));
        assert!(eng.now() > SimTime::from_millis(100));
    }
}
