//! Scan-sharing over the real thread-pool runner.
//!
//! The real-path counterpart of [`crate::sim`]: batches drain through
//! [`ParallelBlast::run_batch`], so every fragment is pulled through the
//! configured I/O scheme (local copy / striped PVFS / mirrored CEFT-PVFS
//! via `pio`) exactly once per batch and searched with every query in the
//! batch. Results per query are rendered to the same tabular report the
//! single-query path produces — byte-identical to running each query
//! alone, which `tests/determinism.rs` enforces. Each worker thread
//! keeps one reusable `ScanWorkspace` for its whole job, so every query
//! in every batch recycles the same diagonal trackers, subject-unpack
//! buffer, and gapped-DP rows — the packed-scan hot path allocates
//! nothing per subject no matter how many queries a batch carries.

use std::io;
use std::time::Instant;

use parblast_blast::tabular;
use parblast_mpiblast::{ParallelBlast, ScrubTotals};

/// Outcome of serving a query list through scan-sharing batches.
#[derive(Debug)]
pub struct RealServeOutcome {
    /// Rendered tabular report per query, in input order.
    pub per_query: Vec<String>,
    /// Scan-sharing passes executed.
    pub batches: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Seed-scan kernel passes executed across all batches and fragments
    /// (the fused kernel folds up to 8 queries into one pass).
    pub kernel_passes: u64,
    /// Kernel passes the fused kernel avoided versus per-query scanning.
    pub passes_saved: u64,
    /// What the background integrity scrub did, when one was requested
    /// (see [`serve_batched_scrubbed`]).
    pub scrub: Option<ScrubTotals>,
}

/// Serve `queries` in admission order with scan-sharing batches of up to
/// `max_batch`: each batch is searched against the fragment set in one
/// pass. `max_batch == 1` degenerates to sequential per-query serving.
pub fn serve_batched(
    job: &ParallelBlast,
    queries: &[Vec<u8>],
    max_batch: usize,
) -> io::Result<RealServeOutcome> {
    serve_batched_scrubbed(job, queries, max_batch, None)
}

/// [`serve_batched`] with an optional background integrity scrub riding
/// along: `scrub_rate` starts a scrubber over the job's fragment set at
/// the given bytes/second cap (0 = unpaced) for the duration of the run,
/// so silent corruption is found and — on the mirrored scheme — repaired
/// while the server stays up. The outcome carries the scrub totals.
pub fn serve_batched_scrubbed(
    job: &ParallelBlast,
    queries: &[Vec<u8>],
    max_batch: usize,
    scrub_rate: Option<u64>,
) -> io::Result<RealServeOutcome> {
    let t0 = Instant::now();
    let scrubber = scrub_rate.map(|rate| job.scheme.start_scrub(&job.fragments, rate));
    let mut per_query = Vec::with_capacity(queries.len());
    let mut batches = 0u64;
    let mut kernel_passes = 0u64;
    let mut passes_saved = 0u64;
    for chunk in queries.chunks(max_batch.max(1)) {
        let out = job.run_batch(chunk)?;
        batches += 1;
        kernel_passes += out.kernel_passes;
        passes_saved += out.passes_saved;
        for hits in &out.per_query {
            per_query.push(tabular("query", hits));
        }
    }
    Ok(RealServeOutcome {
        per_query,
        batches,
        wall_s: t0.elapsed().as_secs_f64(),
        kernel_passes,
        passes_saved,
        scrub: scrubber.map(|s| s.stop()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_blast::{DbStats, Program, SearchParams};
    use parblast_mpiblast::{IoKind, Parallelization, Scheme, Tracer};
    use parblast_seqdb::blastdb::SeqType;
    use parblast_seqdb::{extract_query, segment_into_fragments, SyntheticConfig, SyntheticNt};
    use std::path::{Path, PathBuf};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("serve_real_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn setup(base: &Path, scheme: &Scheme) -> (Vec<String>, Vec<Vec<u8>>, DbStats) {
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 300_000,
            seed: 11,
            ..Default::default()
        });
        let mut seqs = vec![];
        while let Some(x) = g.next() {
            seqs.push(x);
        }
        let queries: Vec<Vec<u8>> = (0..5)
            .map(|i| extract_query(&seqs[i + 1].1, 400, 0.02, i as u64))
            .collect();
        let db = DbStats {
            residues: g.residues(),
            nseq: g.sequences(),
        };
        let infos =
            segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 4, seqs).unwrap();
        let mut names = vec![];
        for info in infos {
            let bytes = std::fs::read(&info.path).unwrap();
            let name = info
                .path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned();
            scheme.load_fragment(&name, &bytes).unwrap();
            names.push(name);
        }
        (names, queries, db)
    }

    #[test]
    fn batched_serving_reads_less_and_matches_sequential() {
        let base = tmp("match");
        let scheme = Scheme::local_at(&base.join("io"), 2).unwrap();
        let (fragments, queries, db) = setup(&base, &scheme);
        let tracer = Tracer::new();
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 2,
            scheme,
            tracer: tracer.clone(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: true,
            list_io: false,
        };
        let read_bytes = |t: &Tracer| -> u64 {
            t.events()
                .iter()
                .filter(|e| e.kind == IoKind::Read)
                .map(|e| e.bytes)
                .sum()
        };
        let batched = serve_batched(&job, &queries, 5).unwrap();
        let after_batched = read_bytes(&tracer);
        let sequential = serve_batched(&job, &queries, 1).unwrap();
        let after_sequential = read_bytes(&tracer) - after_batched;
        // Identical per-query reports, ~5× fewer database bytes.
        assert_eq!(batched.per_query, sequential.per_query);
        assert_eq!(batched.batches, 1);
        assert_eq!(sequential.batches, 5);
        // Fused kernel: 4 fragments x 1 merged pass vs 4 x 5 per-query.
        assert_eq!(batched.kernel_passes, 4);
        assert_eq!(batched.passes_saved, 16);
        assert_eq!(sequential.kernel_passes, 20);
        assert_eq!(sequential.passes_saved, 0);
        assert!(
            after_batched * 4 <= after_sequential,
            "batched {after_batched} vs sequential {after_sequential}"
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn scrubbed_serving_matches_and_reports_totals() {
        // A background scrub over a clean mirrored store must not change
        // a single output byte, and its totals ride back in the outcome.
        let base = tmp("scrub");
        let scheme = Scheme::ceft_at(&base.join("io"), 2, 64 << 10).unwrap();
        let (fragments, queries, db) = setup(&base, &scheme);
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 2,
            scheme,
            tracer: Tracer::new(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: true,
            list_io: false,
        };
        let plain = serve_batched(&job, &queries, 5).unwrap();
        let scrubbed = serve_batched_scrubbed(&job, &queries, 5, Some(8 << 20)).unwrap();
        assert_eq!(plain.per_query, scrubbed.per_query);
        assert!(plain.scrub.is_none());
        let totals = scrubbed.scrub.expect("scrub totals must be reported");
        assert_eq!(totals.corrupt_found, 0, "clean store: {totals:?}");
        std::fs::remove_dir_all(&base).ok();
    }
}
