//! The scan-sharing batch scheduler.
//!
//! The central observation of the paper (§4.2) is that a BLAST job is
//! dominated by the database scan: every query reads every fragment, in
//! ~10 MB chunks, once. A serving workload therefore amortizes its
//! dominant cost by *sharing scans*: when the cluster frees up, the
//! scheduler takes up to `max_batch` queued queries and searches all of
//! them against each fragment in a single pass — one fragment read serves
//! the whole batch, the same request-aggregation move data sieving and
//! collective I/O make at the MPI-IO layer, applied at the query layer.
//!
//! The scheduler is deliberately simple and deterministic: batches form
//! whenever the executor is idle and the queue non-empty (no timers, no
//! partial-batch holdback — under light load a query rides alone, under
//! heavy load batches fill to `max_batch`). The executor abstraction runs
//! the same loop over the calibrated simulator ([`crate::sim`]) or the
//! real thread-pool runner ([`crate::real`]).

use parblast_simcore::SimTime;

use crate::metrics::{ServeMetrics, ServeReport};
use crate::queue::{AdmissionQueue, Priority, Query};

/// Batch-formation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most queries one scan pass may carry (`B`). 1 disables sharing.
    pub max_batch: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch: 8 }
    }
}

/// Cost of one executed scan-sharing pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchResult {
    /// Wall (or simulated) duration of the pass.
    pub service: SimTime,
    /// Portion spent scanning (I/O), seconds.
    pub scan_s: f64,
    /// Portion spent searching (compute), seconds.
    pub search_s: f64,
    /// Database bytes read by the pass (shared by the whole batch).
    pub bytes_read: u64,
    /// Seed-scan kernel passes the batch actually executed (the fused
    /// multi-query kernel merges up to 8 queries into one pass per
    /// fragment).
    pub kernel_passes: u64,
    /// Kernel passes the fused kernel avoided versus per-query scanning.
    pub passes_saved: u64,
}

/// Something that can search a batch of queries against every fragment in
/// one scan-shared pass.
pub trait BatchExecutor {
    /// Execute `batch` starting at `now`; return the pass cost.
    fn execute(&mut self, batch: &[Query], now: SimTime) -> BatchResult;
}

/// A single-service-loop scan-sharing server: admission queue in front,
/// one batch in flight at a time (the whole cluster is the execution
/// unit, exactly like the paper's one-job-at-a-time mpiBLAST).
#[derive(Debug)]
pub struct ScanSharingServer<E> {
    /// Admission queue (capacity = backpressure bound).
    pub queue: AdmissionQueue,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// The batch executor (simulated or real).
    pub exec: E,
    /// Running metrics.
    pub metrics: ServeMetrics,
}

impl<E: BatchExecutor> ScanSharingServer<E> {
    /// New server with the given queue capacity.
    pub fn new(capacity: usize, policy: BatchPolicy, exec: E) -> Self {
        ScanSharingServer {
            queue: AdmissionQueue::new(capacity),
            policy,
            exec,
            metrics: ServeMetrics::new(),
        }
    }

    /// Serve an open-loop workload: `arrivals` (sorted by arrival time)
    /// are offered to the queue as simulated time passes; the server
    /// drains batches until queue and arrival stream are exhausted.
    pub fn run_open_loop(&mut self, arrivals: &[Query]) -> ServeReport {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "arrivals must be sorted"
        );
        let mut t = SimTime::ZERO;
        let mut next = 0usize;
        loop {
            // Everything that arrived while the previous batch ran (or
            // before the first one) contends for queue space in arrival
            // order; overflow is rejected at arrival, not deferred.
            while next < arrivals.len() && arrivals[next].arrival <= t {
                let _ = self.queue.offer(arrivals[next]);
                next += 1;
            }
            if self.queue.is_empty() {
                match arrivals.get(next) {
                    // Idle until the next arrival.
                    Some(q) => {
                        t = q.arrival;
                        continue;
                    }
                    None => break,
                }
            }
            let batch = self.queue.take_batch(self.policy.max_batch, t);
            if batch.is_empty() {
                // Everything popped had expired; re-check the queue.
                continue;
            }
            // Deadlines are enforced twice: at dequeue (above) and again
            // here with the clock the executor will actually run under.
            // In this simulated loop `t` has not advanced, so this drops
            // nothing — it pins the invariant the networked server relies
            // on (no scan slot is ever spent on an already-dead query).
            let (batch, _stale) = self.queue.expire_before_exec(batch, t);
            if batch.is_empty() {
                continue;
            }
            let res = self.exec.execute(&batch, t);
            let done = t.saturating_add(res.service);
            self.metrics.record_batch(&batch, t, done, &res);
            t = done;
        }
        self.metrics.report(&self.queue, t)
    }

    /// Serve a closed-loop workload: `clients` concurrent clients each
    /// keep exactly one query outstanding (zero think time), re-issuing
    /// the instant their previous result returns, until `total` queries
    /// have been issued. Measures saturation throughput at a fixed
    /// concurrency level.
    pub fn run_closed_loop(&mut self, clients: usize, total: usize) -> ServeReport {
        let clients = clients.max(1);
        let mut issued = 0u64;
        let mut pending: Vec<Query> = Vec::new();
        let issue = |at: SimTime, issued: &mut u64| -> Option<Query> {
            if *issued as usize >= total {
                return None;
            }
            *issued += 1;
            Some(Query {
                id: *issued,
                priority: Priority::Normal,
                arrival: at,
                deadline: None,
                payload: (*issued - 1) as usize,
            })
        };
        for _ in 0..clients.min(total) {
            let q = issue(SimTime::ZERO, &mut issued).expect("initial quota");
            pending.push(q);
        }
        let mut t = SimTime::ZERO;
        while !pending.is_empty() || !self.queue.is_empty() {
            // Completion times are non-decreasing, so pending arrivals are
            // already in time order.
            for q in pending.drain(..) {
                let _ = self.queue.offer(q);
            }
            let batch = self.queue.take_batch(self.policy.max_batch, t);
            if batch.is_empty() {
                break;
            }
            let res = self.exec.execute(&batch, t);
            let done = t.saturating_add(res.service);
            self.metrics.record_batch(&batch, t, done, &res);
            // Each served client immediately issues its next query.
            for _ in 0..batch.len() {
                if let Some(q) = issue(done, &mut issued) {
                    pending.push(q);
                }
            }
            t = done;
        }
        self.metrics.report(&self.queue, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Executor with a fixed cost structure: scan `io_s` once per pass,
    /// search `comp_s` per query in the batch.
    struct Fixed {
        io_s: f64,
        comp_s: f64,
        pass_bytes: u64,
    }

    impl BatchExecutor for Fixed {
        fn execute(&mut self, batch: &[Query], _now: SimTime) -> BatchResult {
            let search = self.comp_s * batch.len() as f64;
            BatchResult {
                service: SimTime::from_secs_f64(self.io_s + search),
                scan_s: self.io_s,
                search_s: search,
                bytes_read: self.pass_bytes,
                kernel_passes: 1,
                passes_saved: batch.len() as u64 - 1,
            }
        }
    }

    fn arrivals(n: usize, spacing_s: f64) -> Vec<Query> {
        (0..n)
            .map(|i| Query::new(i as u64, SimTime::from_secs_f64(i as f64 * spacing_s)))
            .collect()
    }

    #[test]
    fn light_load_serves_singletons() {
        // Service takes 1 s, arrivals every 10 s: no batching happens.
        let exec = Fixed {
            io_s: 0.5,
            comp_s: 0.5,
            pass_bytes: 100,
        };
        let mut srv = ScanSharingServer::new(64, BatchPolicy { max_batch: 8 }, exec);
        let r = srv.run_open_loop(&arrivals(10, 10.0));
        assert_eq!(r.served, 10);
        assert_eq!(r.batches, 10);
        assert!((r.mean_batch - 1.0).abs() < 1e-12);
        assert!((r.io_savings() - 1.0).abs() < 1e-12);
        assert!(r.latency.p99 < 1.1, "{:?}", r.latency);
    }

    #[test]
    fn overload_fills_batches_and_saves_io() {
        // Unbatched capacity is 1 query/s; arrivals at 2/s saturate it.
        let mk = |max_batch| {
            let exec = Fixed {
                io_s: 0.5,
                comp_s: 0.5,
                pass_bytes: 1000,
            };
            let mut srv = ScanSharingServer::new(1000, BatchPolicy { max_batch }, exec);
            srv.run_open_loop(&arrivals(100, 0.5))
        };
        let unbatched = mk(1);
        let batched = mk(8);
        assert_eq!(unbatched.served, 100);
        assert_eq!(batched.served, 100);
        // Scan sharing: far fewer passes, ≥2× fewer bytes, better p95.
        assert!(batched.batches * 2 <= unbatched.batches);
        assert!(batched.bytes_read * 2 <= unbatched.bytes_read);
        assert!(batched.io_savings() >= 2.0, "{}", batched.io_savings());
        assert!(
            batched.latency.p95 < unbatched.latency.p95 / 2.0,
            "batched {:?} vs unbatched {:?}",
            batched.latency,
            unbatched.latency
        );
        assert!(batched.throughput_qps > unbatched.throughput_qps);
    }

    #[test]
    fn bounded_queue_rejects_under_overload() {
        let exec = Fixed {
            io_s: 1.0,
            comp_s: 0.0,
            pass_bytes: 10,
        };
        let mut srv = ScanSharingServer::new(4, BatchPolicy { max_batch: 1 }, exec);
        let r = srv.run_open_loop(&arrivals(50, 0.1));
        assert!(r.rejected > 0, "{r:?}");
        assert_eq!(r.served + r.rejected, 50);
        // Served latency stays bounded by the queue depth.
        assert!(r.latency.p99 <= 6.0, "{:?}", r.latency);
    }

    #[test]
    fn deadlines_drop_stale_queries() {
        let exec = Fixed {
            io_s: 1.0,
            comp_s: 0.0,
            pass_bytes: 10,
        };
        let mut srv = ScanSharingServer::new(100, BatchPolicy { max_batch: 1 }, exec);
        let mut work = arrivals(20, 0.0);
        for q in &mut work {
            // Only ~3 can be served before 3 s.
            q.deadline = Some(SimTime::from_secs(3));
        }
        let r = srv.run_open_loop(&work);
        assert!(r.expired > 0, "{r:?}");
        assert_eq!(r.served + r.expired, 20);
    }

    #[test]
    fn closed_loop_batches_at_the_concurrency_level() {
        let exec = Fixed {
            io_s: 0.5,
            comp_s: 0.5,
            pass_bytes: 100,
        };
        let mut srv = ScanSharingServer::new(64, BatchPolicy { max_batch: 8 }, exec);
        let r = srv.run_closed_loop(4, 40);
        assert_eq!(r.served, 40);
        // After the first batch, all 4 clients re-issue together.
        assert!((r.mean_batch - 4.0).abs() < 0.5, "{}", r.mean_batch);
        assert!(r.io_savings() > 3.0);
    }

    #[test]
    fn open_loop_is_deterministic() {
        let run = || {
            let exec = Fixed {
                io_s: 0.3,
                comp_s: 0.2,
                pass_bytes: 77,
            };
            let mut srv = ScanSharingServer::new(32, BatchPolicy { max_batch: 4 }, exec);
            srv.run_open_loop(&arrivals(60, 0.4))
        };
        assert_eq!(run(), run());
    }
}
