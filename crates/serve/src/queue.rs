//! Admission control: a bounded, priority-aware FIFO of pending queries.
//!
//! The queue is the service's backpressure point. Capacity is fixed at
//! construction; offering a query to a full queue is rejected immediately
//! (the client sees the refusal instead of unbounded latency). Queries
//! carry an optional absolute deadline — a query still waiting when its
//! deadline passes is dropped at batch-formation time rather than wasting
//! a slot in a scan.
//!
//! Scheduling discipline: strict priority across the three classes,
//! first-come-first-served within a class. Starvation across classes is
//! the operator's choice (interactive traffic pre-empting bulk is the
//! point); within a class the FIFO order is a hard invariant, enforced by
//! proptests in `tests/properties.rs`.

use std::collections::VecDeque;

use parblast_simcore::SimTime;

/// Scheduling class of a query. Lower value = served first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic (a user waiting at a browser).
    Interactive = 0,
    /// The default class.
    #[default]
    Normal = 1,
    /// Throughput-oriented background work (batch re-annotation jobs).
    Bulk = 2,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Bulk];
}

/// One admitted unit of work: an opaque query plus its serving metadata.
/// `payload` indexes the caller's query storage (the sim path never
/// dereferences it; the real path uses it to find the query bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Caller-assigned identifier (unique per workload).
    pub id: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// When the query arrived at the service.
    pub arrival: SimTime,
    /// Absolute drop-dead time; `None` waits forever.
    pub deadline: Option<SimTime>,
    /// Index into the caller's query set.
    pub payload: usize,
}

impl Query {
    /// A `Normal`-priority query with no deadline.
    pub fn new(id: u64, arrival: SimTime) -> Self {
        Query {
            id,
            priority: Priority::Normal,
            arrival,
            deadline: None,
            payload: 0,
        }
    }
}

/// Why a query was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity; the client should back off and retry.
    QueueFull {
        /// The configured capacity it hit.
        capacity: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// Bounded multi-class admission queue.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    lanes: [VecDeque<Query>; 3],
    admitted: u64,
    rejected: u64,
    expired: u64,
}

impl AdmissionQueue {
    /// Empty queue holding at most `capacity` queries.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            admitted: 0,
            rejected: 0,
            expired: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queries currently waiting.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }

    /// Total queries admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total queries refused for lack of space (backpressure).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total queries dropped because their deadline passed while queued.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Offer a query for admission. Full queue → `Err(QueueFull)` and the
    /// rejection counter ticks.
    pub fn offer(&mut self, q: Query) -> Result<(), AdmitError> {
        if self.len() >= self.capacity {
            self.rejected += 1;
            return Err(AdmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        self.admitted += 1;
        self.lanes[q.priority as usize].push_back(q);
        Ok(())
    }

    /// Take the next scan-sharing batch: up to `max` queries, strict
    /// priority across classes, FIFO within a class. Queries whose
    /// deadline is `< now` are dropped (counted in [`Self::expired`]) and
    /// never occupy a batch slot.
    pub fn take_batch(&mut self, max: usize, now: SimTime) -> Vec<Query> {
        self.take_batch_with_expired(max, now).0
    }

    /// [`Self::take_batch`], but also returns the queries it dropped on an
    /// expired deadline. A networked server must answer *every* accepted
    /// query, so it needs the expired ones back to send each a typed
    /// response instead of silently losing them.
    pub fn take_batch_with_expired(
        &mut self,
        max: usize,
        now: SimTime,
    ) -> (Vec<Query>, Vec<Query>) {
        let mut batch = Vec::new();
        let mut dropped = Vec::new();
        for lane in &mut self.lanes {
            while batch.len() < max {
                match lane.pop_front() {
                    None => break,
                    Some(q) => match q.deadline {
                        Some(d) if d < now => {
                            self.expired += 1;
                            dropped.push(q);
                        }
                        _ => batch.push(q),
                    },
                }
            }
            if batch.len() >= max {
                break;
            }
        }
        (batch, dropped)
    }

    /// Second deadline gate: re-check an already-dequeued batch against a
    /// fresh clock immediately before execution. Time can pass between
    /// dequeue and the start of the scan pass (a networked server hands
    /// batches to an executor thread), so a query that was live at
    /// dequeue may be stale by execution; running it would waste a whole
    /// scan-sharing slot on an answer nobody is waiting for. Returns the
    /// surviving queries; the stale ones are counted in [`Self::expired`]
    /// and returned separately so a server can still answer them.
    pub fn expire_before_exec(
        &mut self,
        batch: Vec<Query>,
        now: SimTime,
    ) -> (Vec<Query>, Vec<Query>) {
        let (stale, live): (Vec<Query>, Vec<Query>) = batch
            .into_iter()
            .partition(|q| q.deadline.is_some_and(|d| d < now));
        self.expired += stale.len() as u64;
        (live, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64, prio: Priority) -> Query {
        Query {
            id,
            priority: prio,
            arrival: SimTime::ZERO,
            deadline: None,
            payload: 0,
        }
    }

    #[test]
    fn backpressure_rejects_beyond_capacity() {
        let mut aq = AdmissionQueue::new(2);
        assert!(aq.offer(q(1, Priority::Normal)).is_ok());
        assert!(aq.offer(q(2, Priority::Normal)).is_ok());
        assert_eq!(
            aq.offer(q(3, Priority::Normal)),
            Err(AdmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(aq.admitted(), 2);
        assert_eq!(aq.rejected(), 1);
        // Draining frees space again.
        assert_eq!(aq.take_batch(2, SimTime::ZERO).len(), 2);
        assert!(aq.offer(q(3, Priority::Normal)).is_ok());
    }

    #[test]
    fn strict_priority_then_fifo() {
        let mut aq = AdmissionQueue::new(16);
        aq.offer(q(1, Priority::Bulk)).unwrap();
        aq.offer(q(2, Priority::Normal)).unwrap();
        aq.offer(q(3, Priority::Interactive)).unwrap();
        aq.offer(q(4, Priority::Normal)).unwrap();
        let ids: Vec<u64> = aq
            .take_batch(4, SimTime::ZERO)
            .iter()
            .map(|x| x.id)
            .collect();
        assert_eq!(ids, vec![3, 2, 4, 1]);
    }

    #[test]
    fn expired_queries_never_reach_a_batch() {
        let mut aq = AdmissionQueue::new(16);
        let mut early = q(1, Priority::Normal);
        early.deadline = Some(SimTime::from_secs(5));
        aq.offer(early).unwrap();
        aq.offer(q(2, Priority::Normal)).unwrap();
        let batch = aq.take_batch(4, SimTime::from_secs(10));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 2);
        assert_eq!(aq.expired(), 1);
    }

    #[test]
    fn expire_before_exec_drops_stale_counts_and_returns_them() {
        let mut aq = AdmissionQueue::new(8);
        let mut a = q(1, Priority::Normal);
        a.deadline = Some(SimTime::from_secs(5));
        let mut b = q(2, Priority::Normal);
        b.deadline = Some(SimTime::from_secs(20));
        let c = q(3, Priority::Normal); // no deadline: never expires
        aq.offer(a).unwrap();
        aq.offer(b).unwrap();
        aq.offer(c).unwrap();

        // All three are live at dequeue time...
        let (batch, dropped) = aq.take_batch_with_expired(4, SimTime::from_secs(1));
        assert_eq!(batch.len(), 3);
        assert!(dropped.is_empty());
        assert_eq!(aq.expired(), 0);

        // ...but the clock has moved past `a`'s deadline by execution.
        let (live, stale) = aq.expire_before_exec(batch, SimTime::from_secs(10));
        assert_eq!(live.iter().map(|q| q.id).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(stale.iter().map(|q| q.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(aq.expired(), 1);
    }

    #[test]
    fn expired_queries_are_returned_for_response() {
        let mut aq = AdmissionQueue::new(16);
        let mut early = q(1, Priority::Normal);
        early.deadline = Some(SimTime::from_secs(5));
        aq.offer(early).unwrap();
        aq.offer(q(2, Priority::Normal)).unwrap();
        let (batch, dropped) = aq.take_batch_with_expired(4, SimTime::from_secs(10));
        assert_eq!(batch.len(), 1);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].id, 1);
        assert_eq!(aq.expired(), 1);
    }

    #[test]
    fn batch_respects_max() {
        let mut aq = AdmissionQueue::new(64);
        for i in 0..10 {
            aq.offer(q(i, Priority::Normal)).unwrap();
        }
        assert_eq!(aq.take_batch(4, SimTime::ZERO).len(), 4);
        assert_eq!(aq.len(), 6);
    }
}
