//! Simulated batch executor: serving on top of the calibrated cluster.
//!
//! Running the full discrete-event simulator once per batch would make a
//! 10 000-query sweep intractable, and is unnecessary: with a fixed
//! fragment layout the cost of a scan-sharing pass depends only on the
//! batch size. The [`ServiceModel`] therefore *probes* the simulator once
//! per distinct batch size (a genuine [`run_simblast`] run with
//! `queries_per_pass = k`) and caches the resulting pass cost; the
//! serving loop then replays those costs with per-batch lognormal
//! variability from its own seeded RNG stream. Determinism is preserved
//! end to end: `(config, seed) → report` is a pure function.

use std::collections::HashMap;

use parblast_mpiblast::{run_simblast, SimBlastConfig};
use parblast_simcore::{SimRng, SimTime};

use crate::batcher::{BatchExecutor, BatchResult};
use crate::queue::Query;

/// Cost of one scan-shared pass over the whole fragment set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanPassCost {
    /// Pass duration (job makespan), seconds.
    pub service_s: f64,
    /// Scan (I/O) share of the pass, seconds.
    pub scan_s: f64,
    /// Search (compute) share of the pass, seconds.
    pub search_s: f64,
    /// Database bytes read by the pass.
    pub bytes_read: u64,
    /// Seed-scan kernel passes the batch executes across all fragments.
    pub kernel_passes: u64,
    /// Kernel passes avoided versus per-query scanning (nonzero only when
    /// the probed config models the fused multi-query kernel).
    pub passes_saved: u64,
}

/// Pass-cost model probed from the calibrated simulator.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    base: SimBlastConfig,
    cache: HashMap<u32, ScanPassCost>,
}

impl ServiceModel {
    /// Model over `base` (scheme, database size, worker count and seed all
    /// come from it; `queries_per_pass` is overridden per probe).
    pub fn new(base: SimBlastConfig) -> Self {
        ServiceModel {
            base,
            cache: HashMap::new(),
        }
    }

    /// Cost of a pass carrying `k` queries (probed on first use).
    pub fn cost(&mut self, k: u32) -> ScanPassCost {
        let k = k.max(1);
        if let Some(&c) = self.cache.get(&k) {
            return c;
        }
        let mut cfg = self.base.clone();
        cfg.queries_per_pass = k;
        let out = run_simblast(&cfg);
        assert!(out.completed, "service-model probe failed: {:?}", out.error);
        let io: f64 = out.per_worker.iter().map(|w| w.io_s).sum();
        let compute: f64 = out.per_worker.iter().map(|w| w.compute_s).sum();
        let bytes: u64 = out.per_worker.iter().map(|w| w.bytes_read).sum();
        let io_share = if io + compute > 0.0 {
            io / (io + compute)
        } else {
            0.0
        };
        // Pass accounting mirrors the real runner: the fused kernel merges
        // up to 8 queries into one scan pass per fragment.
        let frags = u64::from(cfg.fragments.max(1));
        let per_query_passes = frags * u64::from(k);
        let kernel_passes = if cfg.fused_kernel {
            frags * u64::from(k).div_ceil(8)
        } else {
            per_query_passes
        };
        let c = ScanPassCost {
            service_s: out.makespan_s,
            scan_s: out.makespan_s * io_share,
            search_s: out.makespan_s * (1.0 - io_share),
            bytes_read: bytes,
            kernel_passes,
            passes_saved: per_query_passes - kernel_passes,
        };
        self.cache.insert(k, c);
        c
    }
}

/// [`BatchExecutor`] over a [`ServiceModel`], with optional per-batch
/// lognormal service variability (`jitter_cv = 0` replays the probed cost
/// exactly).
pub struct SimExecutor {
    model: ServiceModel,
    rng: SimRng,
    jitter_cv: f64,
}

impl std::fmt::Debug for SimExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimExecutor")
            .field("model", &self.model)
            .field("jitter_cv", &self.jitter_cv)
            .finish_non_exhaustive()
    }
}

impl SimExecutor {
    /// Executor over `model`; `seed` feeds the jitter stream.
    pub fn new(model: ServiceModel, seed: u64, jitter_cv: f64) -> Self {
        SimExecutor {
            model,
            rng: SimRng::new(seed),
            jitter_cv,
        }
    }
}

impl BatchExecutor for SimExecutor {
    fn execute(&mut self, batch: &[Query], _now: SimTime) -> BatchResult {
        let c = self.model.cost(batch.len() as u32);
        let f = if self.jitter_cv > 0.0 {
            self.rng.lognormal_mean_cv(1.0, self.jitter_cv)
        } else {
            1.0
        };
        BatchResult {
            service: SimTime::from_secs_f64(c.service_s * f),
            scan_s: c.scan_s * f,
            search_s: c.search_s * f,
            bytes_read: c.bytes_read,
            kernel_passes: c.kernel_passes,
            passes_saved: c.passes_saved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_mpiblast::SimScheme;

    fn base() -> SimBlastConfig {
        SimBlastConfig {
            nodes: 3,
            workers: 2,
            fragments: 2,
            db_bytes: 64 << 20,
            scheme: SimScheme::Original,
            master_node: 2,
            warmup_s: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn batched_pass_cheaper_per_query() {
        let mut m = ServiceModel::new(base());
        let c1 = m.cost(1);
        let c4 = m.cost(4);
        // Same bytes either way (one pass), compute scales with k.
        assert_eq!(c1.bytes_read, c4.bytes_read);
        assert!(c4.service_s > c1.service_s);
        // Per-query cost shrinks: scan sharing amortizes the I/O.
        assert!(c4.service_s / 4.0 < c1.service_s, "c1={c1:?} c4={c4:?}");
        // Probes are cached.
        assert_eq!(m.cost(4), c4);
    }

    #[test]
    fn fused_model_amortizes_compute_and_counts_passes() {
        let mut per_query = ServiceModel::new(base());
        let mut fused = ServiceModel::new(SimBlastConfig {
            fused_kernel: true,
            ..base()
        });
        let pq = per_query.cost(8);
        let fu = fused.cost(8);
        // Same scan either way; the fused kernel only cuts compute.
        assert_eq!(pq.bytes_read, fu.bytes_read);
        assert!(fu.service_s < pq.service_s * 0.5, "pq={pq:?} fu={fu:?}");
        // 2 fragments x 8 queries: fused folds each fragment to one pass.
        assert_eq!(pq.kernel_passes, 16);
        assert_eq!(pq.passes_saved, 0);
        assert_eq!(fu.kernel_passes, 2);
        assert_eq!(fu.passes_saved, 14);
    }

    #[test]
    fn zero_jitter_replays_probe_exactly() {
        let mut m = ServiceModel::new(base());
        let c = m.cost(2);
        let mut ex = SimExecutor::new(m, 9, 0.0);
        let q = [Query::new(1, SimTime::ZERO), Query::new(2, SimTime::ZERO)];
        let r = ex.execute(&q, SimTime::ZERO);
        assert_eq!(r.service, SimTime::from_secs_f64(c.service_s));
        assert_eq!(r.bytes_read, c.bytes_read);
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let run = |seed| {
            let mut ex = SimExecutor::new(ServiceModel::new(base()), seed, 0.25);
            let q = [Query::new(1, SimTime::ZERO)];
            (0..5)
                .map(|_| ex.execute(&q, SimTime::ZERO).service)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
