//! Per-query and per-batch serving metrics, built on [`parblast_simcore::stats`].
//!
//! Latency and queue-wait land in microsecond [`LogHistogram`]s (so the
//! p50/p95/p99 extraction spans milliseconds to hours without losing the
//! tail); scan/search split, batch fill, and I/O byte counters accumulate
//! in [`Summary`]s. A [`ServeReport`] freezes everything into the numbers
//! `BENCH_serve.json` and EXPERIMENTS.md quote.

use parblast_simcore::{LogHistogram, Percentiles, SimTime, Summary};

use crate::batcher::BatchResult;
use crate::queue::{AdmissionQueue, Query};

/// Running serving-layer metrics.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    queue_wait_us: LogHistogram,
    latency_us: LogHistogram,
    scan_s: Summary,
    search_s: Summary,
    batch_fill: Summary,
    served: u64,
    batches: u64,
    bytes_read: u64,
    bytes_unbatched: u64,
    deadline_hits: u64,
}

impl ServeMetrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed scan-sharing batch: `start` is when the batch
    /// left the queue, `done` when every query's result was ready.
    pub fn record_batch(
        &mut self,
        batch: &[Query],
        start: SimTime,
        done: SimTime,
        res: &BatchResult,
    ) {
        for q in batch {
            let wait = start.saturating_sub(q.arrival);
            let latency = done.saturating_sub(q.arrival);
            self.queue_wait_us.record(wait.as_nanos() / 1_000);
            self.latency_us.record(latency.as_nanos() / 1_000);
            if q.deadline.is_some_and(|d| done <= d) {
                self.deadline_hits += 1;
            }
        }
        self.served += batch.len() as u64;
        self.batches += 1;
        self.batch_fill.record(batch.len() as f64);
        self.scan_s.record(res.scan_s);
        self.search_s.record(res.search_s);
        self.bytes_read += res.bytes_read;
        // What the same queries would have cost without scan sharing: one
        // full database pass each.
        self.bytes_unbatched += res.bytes_read * batch.len() as u64;
    }

    /// Freeze into a report. `queue` supplies the admission counters,
    /// `end` the instant the last batch completed.
    pub fn report(&self, queue: &AdmissionQueue, end: SimTime) -> ServeReport {
        let us = |p: Percentiles| Percentiles {
            p50: p.p50 / 1e6,
            p95: p.p95 / 1e6,
            p99: p.p99 / 1e6,
        };
        let duration_s = end.as_secs_f64();
        ServeReport {
            served: self.served,
            batches: self.batches,
            rejected: queue.rejected(),
            expired: queue.expired(),
            duration_s,
            throughput_qps: if duration_s > 0.0 {
                self.served as f64 / duration_s
            } else {
                0.0
            },
            wait: us(self.queue_wait_us.percentiles()),
            latency: us(self.latency_us.percentiles()),
            mean_wait_s: self.queue_wait_us.summary().mean() / 1e6,
            mean_latency_s: self.latency_us.summary().mean() / 1e6,
            mean_batch: self.batch_fill.mean(),
            scan_s_mean: self.scan_s.mean(),
            search_s_mean: self.search_s.mean(),
            bytes_read: self.bytes_read,
            bytes_unbatched: self.bytes_unbatched,
            deadline_hits: self.deadline_hits,
        }
    }
}

/// Frozen serving-run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Queries whose results were produced.
    pub served: u64,
    /// Scan-sharing batches executed.
    pub batches: u64,
    /// Queries refused at admission (backpressure).
    pub rejected: u64,
    /// Queries dropped on an expired deadline.
    pub expired: u64,
    /// First arrival → last completion, seconds.
    pub duration_s: f64,
    /// Served queries per second of run.
    pub throughput_qps: f64,
    /// Queue-wait percentiles, seconds.
    pub wait: Percentiles,
    /// End-to-end latency percentiles, seconds.
    pub latency: Percentiles,
    /// Mean queue wait, seconds.
    pub mean_wait_s: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Mean realized batch size.
    pub mean_batch: f64,
    /// Mean per-batch scan (I/O) seconds.
    pub scan_s_mean: f64,
    /// Mean per-batch search (compute) seconds.
    pub search_s_mean: f64,
    /// Total database bytes actually read.
    pub bytes_read: u64,
    /// Bytes the same queries would have read unbatched (one pass each).
    pub bytes_unbatched: u64,
    /// Served queries that met their deadline (only counted for queries
    /// that had one).
    pub deadline_hits: u64,
}

impl ServeReport {
    /// Scan-sharing I/O savings factor (`bytes_unbatched / bytes_read`,
    /// 1.0 when nothing was saved or nothing ran).
    pub fn io_savings(&self) -> f64 {
        if self.bytes_read == 0 {
            1.0
        } else {
            self.bytes_unbatched as f64 / self.bytes_read as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Priority;

    fn query(id: u64, arrival_s: u64) -> Query {
        Query {
            id,
            priority: Priority::Normal,
            arrival: SimTime::from_secs(arrival_s),
            deadline: None,
            payload: 0,
        }
    }

    #[test]
    fn batch_accounting_and_savings() {
        let mut m = ServeMetrics::new();
        let batch = vec![query(1, 0), query(2, 1)];
        let res = BatchResult {
            service: SimTime::from_secs(3),
            scan_s: 1.0,
            search_s: 2.0,
            bytes_read: 100,
        };
        m.record_batch(&batch, SimTime::from_secs(2), SimTime::from_secs(5), &res);
        let r = m.report(&AdmissionQueue::new(4), SimTime::from_secs(5));
        assert_eq!(r.served, 2);
        assert_eq!(r.batches, 1);
        assert_eq!(r.bytes_read, 100);
        assert_eq!(r.bytes_unbatched, 200);
        assert!((r.io_savings() - 2.0).abs() < 1e-12);
        assert!((r.mean_batch - 2.0).abs() < 1e-12);
        // Query 1 waited 2 s and finished at latency 5 s; query 2 waited
        // 1 s with latency 4 s. Means come straight from the histograms.
        assert!((r.mean_wait_s - 1.5).abs() < 1e-9, "{}", r.mean_wait_s);
        assert!(
            (r.mean_latency_s - 4.5).abs() < 1e-9,
            "{}",
            r.mean_latency_s
        );
        assert!(r.latency.p50 > 0.0 && r.latency.p99 <= 5.0 + 1e-9);
        assert!((r.throughput_qps - 0.4).abs() < 1e-12);
    }

    #[test]
    fn deadline_hits_counted_only_for_deadlined_queries() {
        let mut m = ServeMetrics::new();
        let mut a = query(1, 0);
        a.deadline = Some(SimTime::from_secs(10));
        let mut b = query(2, 0);
        b.deadline = Some(SimTime::from_secs(1));
        let c = query(3, 0);
        let res = BatchResult {
            service: SimTime::from_secs(2),
            scan_s: 0.5,
            search_s: 1.5,
            bytes_read: 10,
        };
        m.record_batch(&[a, b, c], SimTime::ZERO, SimTime::from_secs(2), &res);
        let r = m.report(&AdmissionQueue::new(4), SimTime::from_secs(2));
        assert_eq!(r.deadline_hits, 1);
    }
}
