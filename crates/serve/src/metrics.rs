//! Per-query and per-batch serving metrics, built on [`parblast_simcore::stats`].
//!
//! Latency and queue-wait land in microsecond [`LogHistogram`]s (so the
//! p50/p95/p99 extraction spans milliseconds to hours without losing the
//! tail); scan/search split, batch fill, and I/O byte counters accumulate
//! in [`Summary`]s. A [`ServeReport`] freezes everything into the numbers
//! `BENCH_serve.json` and EXPERIMENTS.md quote.
//!
//! The hot event counters (queries served, batches, bytes) live in a
//! shared [`ServeCounters`] of **relaxed atomics** rather than plain
//! fields: a networked daemon keeps `ServeMetrics` behind its shard lock
//! for the histograms, but answers `Stats` frames from a
//! [`ServeCounters::snapshot`] taken through a cloned [`std::sync::Arc`]
//! handle — reporting never contends with admission or batch completion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parblast_simcore::{LogHistogram, Percentiles, SimTime, Summary};

use crate::batcher::BatchResult;
use crate::queue::{AdmissionQueue, Query};

/// Lock-free serving counters: every field is a relaxed [`AtomicU64`],
/// mutated on the batch-completion path and read by [`Self::snapshot`]
/// without any lock.
#[derive(Debug, Default)]
pub struct ServeCounters {
    served: AtomicU64,
    batches: AtomicU64,
    bytes_read: AtomicU64,
    bytes_unbatched: AtomicU64,
    deadline_hits: AtomicU64,
    kernel_passes: AtomicU64,
    passes_saved: AtomicU64,
}

/// A point-in-time copy of [`ServeCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountersSnapshot {
    /// Queries whose results were produced.
    pub served: u64,
    /// Scan-sharing batches executed.
    pub batches: u64,
    /// Database bytes actually read.
    pub bytes_read: u64,
    /// Bytes the same queries would have read unbatched.
    pub bytes_unbatched: u64,
    /// Served queries that met their deadline.
    pub deadline_hits: u64,
    /// Seed-scan kernel passes actually executed (the fused multi-query
    /// kernel runs one merged pass per fragment per ≤8-query chunk).
    pub kernel_passes: u64,
    /// Kernel passes the fused kernel avoided versus per-query scanning.
    pub passes_saved: u64,
}

impl ServeCounters {
    /// Record one completed batch of `n` queries, of which
    /// `deadline_hits` met their deadline; `kernel_passes` is the number
    /// of seed-scan passes the batch actually executed and
    /// `passes_saved` how many the fused kernel avoided versus the
    /// per-query path.
    pub fn record_batch(
        &self,
        n: u64,
        bytes_read: u64,
        deadline_hits: u64,
        kernel_passes: u64,
        passes_saved: u64,
    ) {
        self.served.fetch_add(n, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes_read, Ordering::Relaxed);
        self.bytes_unbatched
            .fetch_add(bytes_read * n, Ordering::Relaxed);
        self.deadline_hits
            .fetch_add(deadline_hits, Ordering::Relaxed);
        self.kernel_passes
            .fetch_add(kernel_passes, Ordering::Relaxed);
        self.passes_saved.fetch_add(passes_saved, Ordering::Relaxed);
    }

    /// Read every counter with relaxed ordering. Safe to call from any
    /// thread at any time; never blocks the recording side.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            served: self.served.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_unbatched: self.bytes_unbatched.load(Ordering::Relaxed),
            deadline_hits: self.deadline_hits.load(Ordering::Relaxed),
            kernel_passes: self.kernel_passes.load(Ordering::Relaxed),
            passes_saved: self.passes_saved.load(Ordering::Relaxed),
        }
    }

    fn restore(snap: CountersSnapshot) -> Self {
        ServeCounters {
            served: AtomicU64::new(snap.served),
            batches: AtomicU64::new(snap.batches),
            bytes_read: AtomicU64::new(snap.bytes_read),
            bytes_unbatched: AtomicU64::new(snap.bytes_unbatched),
            deadline_hits: AtomicU64::new(snap.deadline_hits),
            kernel_passes: AtomicU64::new(snap.kernel_passes),
            passes_saved: AtomicU64::new(snap.passes_saved),
        }
    }
}

/// Running serving-layer metrics.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    queue_wait_us: LogHistogram,
    latency_us: LogHistogram,
    scan_s: Summary,
    search_s: Summary,
    batch_fill: Summary,
    counters: Arc<ServeCounters>,
}

impl Clone for ServeMetrics {
    /// Deep copy: the clone gets its *own* counters (frozen at the
    /// current values), not a handle onto the original's.
    fn clone(&self) -> Self {
        ServeMetrics {
            queue_wait_us: self.queue_wait_us.clone(),
            latency_us: self.latency_us.clone(),
            scan_s: self.scan_s.clone(),
            search_s: self.search_s.clone(),
            batch_fill: self.batch_fill.clone(),
            counters: Arc::new(ServeCounters::restore(self.counters.snapshot())),
        }
    }
}

impl ServeMetrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared handle to the lock-free counters: a daemon stores this once
    /// and serves `Stats` requests from [`ServeCounters::snapshot`]
    /// without touching the lock that guards the histograms.
    pub fn counters(&self) -> Arc<ServeCounters> {
        Arc::clone(&self.counters)
    }

    /// Record one completed scan-sharing batch: `start` is when the batch
    /// left the queue, `done` when every query's result was ready.
    pub fn record_batch(
        &mut self,
        batch: &[Query],
        start: SimTime,
        done: SimTime,
        res: &BatchResult,
    ) {
        let mut deadline_hits = 0u64;
        for q in batch {
            let wait = start.saturating_sub(q.arrival);
            let latency = done.saturating_sub(q.arrival);
            self.queue_wait_us.record(wait.as_nanos() / 1_000);
            self.latency_us.record(latency.as_nanos() / 1_000);
            if q.deadline.is_some_and(|d| done <= d) {
                deadline_hits += 1;
            }
        }
        self.batch_fill.record(batch.len() as f64);
        self.scan_s.record(res.scan_s);
        self.search_s.record(res.search_s);
        // Counter side (served, batches, bytes, unbatched-equivalent
        // bytes — one full pass per query without scan sharing) goes
        // through the relaxed atomics so snapshot readers never wait.
        self.counters.record_batch(
            batch.len() as u64,
            res.bytes_read,
            deadline_hits,
            res.kernel_passes,
            res.passes_saved,
        );
    }

    /// Freeze into a report. `queue` supplies the admission counters,
    /// `end` the instant the last batch completed.
    pub fn report(&self, queue: &AdmissionQueue, end: SimTime) -> ServeReport {
        let us = |p: Percentiles| Percentiles {
            p50: p.p50 / 1e6,
            p95: p.p95 / 1e6,
            p99: p.p99 / 1e6,
        };
        let duration_s = end.as_secs_f64();
        let c = self.counters.snapshot();
        ServeReport {
            served: c.served,
            batches: c.batches,
            rejected: queue.rejected(),
            expired: queue.expired(),
            duration_s,
            throughput_qps: if duration_s > 0.0 {
                c.served as f64 / duration_s
            } else {
                0.0
            },
            wait: us(self.queue_wait_us.percentiles()),
            latency: us(self.latency_us.percentiles()),
            mean_wait_s: self.queue_wait_us.summary().mean() / 1e6,
            mean_latency_s: self.latency_us.summary().mean() / 1e6,
            mean_batch: self.batch_fill.mean(),
            scan_s_mean: self.scan_s.mean(),
            search_s_mean: self.search_s.mean(),
            bytes_read: c.bytes_read,
            bytes_unbatched: c.bytes_unbatched,
            deadline_hits: c.deadline_hits,
            kernel_passes: c.kernel_passes,
            passes_saved: c.passes_saved,
        }
    }
}

/// Frozen serving-run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Queries whose results were produced.
    pub served: u64,
    /// Scan-sharing batches executed.
    pub batches: u64,
    /// Queries refused at admission (backpressure).
    pub rejected: u64,
    /// Queries dropped on an expired deadline.
    pub expired: u64,
    /// First arrival → last completion, seconds.
    pub duration_s: f64,
    /// Served queries per second of run.
    pub throughput_qps: f64,
    /// Queue-wait percentiles, seconds.
    pub wait: Percentiles,
    /// End-to-end latency percentiles, seconds.
    pub latency: Percentiles,
    /// Mean queue wait, seconds.
    pub mean_wait_s: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Mean realized batch size.
    pub mean_batch: f64,
    /// Mean per-batch scan (I/O) seconds.
    pub scan_s_mean: f64,
    /// Mean per-batch search (compute) seconds.
    pub search_s_mean: f64,
    /// Total database bytes actually read.
    pub bytes_read: u64,
    /// Bytes the same queries would have read unbatched (one pass each).
    pub bytes_unbatched: u64,
    /// Served queries that met their deadline (only counted for queries
    /// that had one).
    pub deadline_hits: u64,
    /// Seed-scan kernel passes actually executed.
    pub kernel_passes: u64,
    /// Kernel passes the fused multi-query kernel avoided versus
    /// per-query scanning.
    pub passes_saved: u64,
}

impl ServeReport {
    /// Scan-sharing I/O savings factor (`bytes_unbatched / bytes_read`,
    /// 1.0 when nothing was saved or nothing ran).
    pub fn io_savings(&self) -> f64 {
        if self.bytes_read == 0 {
            1.0
        } else {
            self.bytes_unbatched as f64 / self.bytes_read as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Priority;

    fn query(id: u64, arrival_s: u64) -> Query {
        Query {
            id,
            priority: Priority::Normal,
            arrival: SimTime::from_secs(arrival_s),
            deadline: None,
            payload: 0,
        }
    }

    #[test]
    fn batch_accounting_and_savings() {
        let mut m = ServeMetrics::new();
        let batch = vec![query(1, 0), query(2, 1)];
        let res = BatchResult {
            service: SimTime::from_secs(3),
            scan_s: 1.0,
            search_s: 2.0,
            bytes_read: 100,
            kernel_passes: 1,
            passes_saved: 1,
        };
        m.record_batch(&batch, SimTime::from_secs(2), SimTime::from_secs(5), &res);
        let r = m.report(&AdmissionQueue::new(4), SimTime::from_secs(5));
        assert_eq!(r.served, 2);
        assert_eq!(r.batches, 1);
        assert_eq!(r.bytes_read, 100);
        assert_eq!(r.bytes_unbatched, 200);
        assert_eq!(r.kernel_passes, 1);
        assert_eq!(r.passes_saved, 1);
        assert!((r.io_savings() - 2.0).abs() < 1e-12);
        assert!((r.mean_batch - 2.0).abs() < 1e-12);
        // Query 1 waited 2 s and finished at latency 5 s; query 2 waited
        // 1 s with latency 4 s. Means come straight from the histograms.
        assert!((r.mean_wait_s - 1.5).abs() < 1e-9, "{}", r.mean_wait_s);
        assert!(
            (r.mean_latency_s - 4.5).abs() < 1e-9,
            "{}",
            r.mean_latency_s
        );
        assert!(r.latency.p50 > 0.0 && r.latency.p99 <= 5.0 + 1e-9);
        assert!((r.throughput_qps - 0.4).abs() < 1e-12);
    }

    #[test]
    fn counters_snapshot_reads_without_the_metrics_handle() {
        let mut m = ServeMetrics::new();
        // A daemon grabs the counter handle once...
        let counters = m.counters();
        assert_eq!(counters.snapshot(), CountersSnapshot::default());
        let res = BatchResult {
            service: SimTime::from_secs(1),
            scan_s: 0.5,
            search_s: 0.5,
            bytes_read: 40,
            kernel_passes: 1,
            passes_saved: 1,
        };
        m.record_batch(
            &[query(1, 0), query(2, 0)],
            SimTime::ZERO,
            SimTime::from_secs(1),
            &res,
        );
        // ...and every later snapshot observes recorded batches with no
        // access to (or locking of) the ServeMetrics itself.
        let snap = counters.snapshot();
        assert_eq!(snap.served, 2);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.bytes_read, 40);
        assert_eq!(snap.bytes_unbatched, 80);
        // Clones freeze their own copy rather than sharing the atomics.
        let clone = m.clone();
        m.record_batch(
            &[query(3, 2)],
            SimTime::from_secs(2),
            SimTime::from_secs(3),
            &res,
        );
        assert_eq!(counters.snapshot().served, 3);
        assert_eq!(clone.counters().snapshot().served, 2);
    }

    #[test]
    fn deadline_hits_counted_only_for_deadlined_queries() {
        let mut m = ServeMetrics::new();
        let mut a = query(1, 0);
        a.deadline = Some(SimTime::from_secs(10));
        let mut b = query(2, 0);
        b.deadline = Some(SimTime::from_secs(1));
        let c = query(3, 0);
        let res = BatchResult {
            service: SimTime::from_secs(2),
            scan_s: 0.5,
            search_s: 1.5,
            bytes_read: 10,
            kernel_passes: 1,
            passes_saved: 2,
        };
        m.record_batch(&[a, b, c], SimTime::ZERO, SimTime::from_secs(2), &res);
        let r = m.report(&AdmissionQueue::new(4), SimTime::from_secs(2));
        assert_eq!(r.deadline_hits, 1);
    }
}
