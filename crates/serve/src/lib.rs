//! # parblast-serve
//!
//! The multi-query serving layer: what turns the paper's one-query batch
//! job into a service that can sit in front of heavy traffic.
//!
//! The paper's central measurement (§4.2) is that a BLAST run is
//! dominated by the database scan — every query reads every fragment once,
//! in ~10 MB chunks. A service receiving many concurrent queries can
//! therefore amortize its dominant cost: group queued queries and search
//! the whole group against each fragment in a *single pass*, so one
//! fragment read serves the batch. Per-query I/O cost becomes per-batch
//! cost — request aggregation in the spirit of MPI-IO data sieving and
//! PVFS list I/O, applied at the query layer.
//!
//! ```text
//!              ┌────────────────────────────────────────────────┐
//!   arrivals   │  AdmissionQueue       ScanSharingServer        │
//!  ──────────▶ │  (capacity,      ──▶  take_batch(B) ──▶ exec   │──▶ results
//!   open loop  │   deadlines,          one scan pass serves     │
//!   (Poisson)  │   3 priorities)       the whole batch          │
//!   or closed  │        │                   │                   │
//!              │     rejected           ServeMetrics            │
//!              │  (backpressure)   wait/latency p50,p95,p99,    │
//!              │                   scan/search split, bytes     │
//!              └────────────────────────────────────────────────┘
//! ```
//!
//! * [`queue`] — bounded admission queue: backpressure, per-query
//!   deadlines, strict priority with FIFO inside each class.
//! * [`batcher`] — the scan-sharing batch scheduler and its open-loop /
//!   closed-loop serving drivers, generic over a [`BatchExecutor`].
//! * [`sim`] — executor over the calibrated cluster simulator: probes
//!   [`parblast_mpiblast::run_simblast`] once per batch size and replays
//!   the cost deterministically (Poisson arrivals come from
//!   [`parblast_hwsim::ArrivalProcess`]).
//! * [`real`] — executor over the real thread-pool runner /
//!   `pio`-backed I/O schemes via [`parblast_mpiblast::ParallelBlast::run_batch`].
//! * [`metrics`] — per-query/per-batch accounting on
//!   [`parblast_simcore::stats`]: queue wait, scan/search split, latency
//!   percentiles, throughput, and I/O bytes saved versus unbatched.

#![warn(missing_docs)]

pub mod batcher;
pub mod metrics;
pub mod queue;
pub mod real;
pub mod sim;

pub use batcher::{BatchExecutor, BatchPolicy, BatchResult, ScanSharingServer};
pub use metrics::{CountersSnapshot, ServeCounters, ServeMetrics, ServeReport};
pub use queue::{AdmissionQueue, AdmitError, Priority, Query};
pub use real::{serve_batched, serve_batched_scrubbed, RealServeOutcome};
pub use sim::{ScanPassCost, ServiceModel, SimExecutor};
